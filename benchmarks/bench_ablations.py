"""Ablations A1-A4 (extensions beyond the paper's figures)."""

from repro.analysis import pct_gain
from repro.experiments import ablations


def test_a1_checksum_inheritance(experiment):
    def extras(result):
        inherit = result.value("throughput_mbps", config="NCache inherit")
        recompute = result.value("throughput_mbps",
                                 config="NCache recompute")
        return {"inherit_vs_recompute_pct":
                round(pct_gain(inherit, recompute), 1)}

    result = experiment(ablations.run_checksum, extras)
    inherit = result.value("throughput_mbps", config="NCache inherit")
    recompute = result.value("throughput_mbps", config="NCache recompute")
    offload = result.value("throughput_mbps", config="NCache (offload on)")
    original_sw = result.value("throughput_mbps",
                               config="original (sw checksum)")
    assert inherit > recompute          # §1's claimed benefit is real
    assert inherit > original_sw
    assert abs(inherit - offload) / offload < 0.10  # ~as good as hardware


def test_a2_fs_cache_size(experiment):
    result = experiment(ablations.run_fs_cache_size)
    throughputs = result.column("throughput_mbps")
    # The NCache store absorbs FS-cache misses: shrinking the FS cache
    # from 128 MB to 16 MB costs little (< 25%).
    assert min(throughputs[1:]) > 0.75 * max(throughputs)
    # FS hit ratio must genuinely fall as the cache shrinks, proving the
    # flatness comes from the L2, not from a lack of pressure.
    ratios = result.column("fs_hit_ratio")
    assert ratios[0] < ratios[-1]


def test_a3_remap(experiment):
    result = experiment(ablations.run_remap)
    on = result.rows_where(config="remap on")[0]
    off = result.rows_where(config="remap off")[0]
    assert on["remaps"] > 0
    assert off["remaps"] == 0
    # Both stay correct and comparable in throughput.
    assert abs(on["ops_per_sec"] - off["ops_per_sec"]) / \
        on["ops_per_sec"] < 0.25


def test_a5_memcpy_cost(experiment):
    result = experiment(ablations.run_memcpy_cost)
    gains = result.column("gain_pct")
    costs = result.column("memcpy_ns_per_byte")
    # The NCache advantage must grow monotonically with memcpy expense.
    assert all(a < b for a, b in zip(gains, gains[1:])), (costs, gains)
    assert gains[0] < 60       # cheap memory: modest benefit
    assert gains[-1] > 120     # expensive memory: copies dominate


def test_a6_daemon_count(experiment):
    result = experiment(ablations.run_daemon_count)
    by_count = {row["n_daemons"]: row["throughput_mbps"]
                for row in result.rows}
    # Starved pipeline at 2 daemons; saturation by 16.
    assert by_count[2] < by_count[8]
    assert by_count[16] >= 0.9 * by_count[32]


def test_a7_loss_recovery(experiment):
    result = experiment(ablations.run_loss)
    for loss in (0.0, 0.5, 2.0):
        orig = result.value("throughput_mbps", mode="original",
                            loss_pct=loss)
        ncache = result.value("throughput_mbps", mode="NCache",
                              loss_pct=loss)
        assert ncache > orig  # the advantage survives loss
    # Loss hurts: 2% loss costs NCache visible throughput.
    clean = result.value("throughput_mbps", mode="NCache", loss_pct=0.0)
    lossy = result.value("throughput_mbps", mode="NCache", loss_pct=2.0)
    assert lossy < clean
    assert result.value("retransmissions", mode="NCache", loss_pct=2.0) > 0


def test_a8_network_ready_disk(experiment):
    result = experiment(ablations.run_network_ready_disk)
    nc_conv = result.value("throughput_mbps", server="NCache",
                           disk_format="conventional")
    nc_ready = result.value("throughput_mbps", server="NCache",
                            disk_format="network-ready")
    assert nc_ready > nc_conv  # §6's idea pays where storage is the
    # bottleneck...
    cpu_conv = result.value("storage_cpu_pct", server="NCache",
                            disk_format="conventional")
    cpu_ready = result.value("storage_cpu_pct", server="NCache",
                             disk_format="network-ready")
    assert cpu_ready < cpu_conv  # ...by removing the storage-side copies


def test_a4_capacity(experiment):
    result = experiment(ablations.run_capacity)
    by_frac = {row["capacity_frac"]: row["throughput_mbps"]
               for row in result.rows}
    # Monotone-ish degradation, graceful thanks to Zipf popularity.
    assert by_frac[1.0] >= by_frac[0.5] >= by_frac[0.25]
    assert by_frac[0.25] > 0.15 * by_frac[1.0]
