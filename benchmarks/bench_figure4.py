"""Figure 4: NFS all-miss throughput and CPU utilization."""

from repro.analysis import ratio
from repro.experiments import figure4


def test_figure4_all_miss(experiment):
    def extras(result):
        out = {}
        for kb in (16, 32):
            orig = result.value("throughput_mbps", mode="original",
                                request_kb=kb)
            ncache = result.value("throughput_mbps", mode="NCache",
                                  request_kb=kb)
            out[f"ncache_vs_original_{kb}kb"] = round(ratio(ncache, orig), 3)
        out["paper"] = "+29% to +36% for >=16KB; storage CPU saturates"
        return out

    result = experiment(figure4.run, extras)

    # Shape assertions (paper §5.4).
    for kb in (16, 32):
        orig = result.value("throughput_mbps", mode="original",
                            request_kb=kb)
        ncache = result.value("throughput_mbps", mode="NCache",
                              request_kb=kb)
        base = result.value("throughput_mbps", mode="baseline",
                            request_kb=kb)
        assert 1.15 <= ncache / orig <= 1.60          # paper 1.29-1.36
        assert abs(ncache - base) / base < 0.10       # NCache ~ baseline
        # Bottleneck shift: original is server-bound, NCache storage-bound.
        assert result.value("server_cpu_pct", mode="original",
                            request_kb=kb) > \
            result.value("storage_cpu_pct", mode="original", request_kb=kb)
        assert result.value("storage_cpu_pct", mode="NCache",
                            request_kb=kb) > \
            result.value("server_cpu_pct", mode="NCache", request_kb=kb) - 20
    # Throughput grows with request size for every mode.
    for mode in ("original", "baseline", "NCache"):
        series = [result.value("throughput_mbps", mode=mode, request_kb=kb)
                  for kb in (4, 8, 16, 32)]
        assert series == sorted(series)
