"""Figure 5: NFS all-hit — 1-NIC CPU and 2-NIC throughput."""

from repro.analysis import pct_gain
from repro.experiments import figure5


def test_figure5_all_hit(experiment):
    def extras(result):
        orig = result.value("throughput_mbps", mode="original", nics=2,
                            request_kb=32)
        ncache = result.value("throughput_mbps", mode="NCache", nics=2,
                              request_kb=32)
        base = result.value("throughput_mbps", mode="baseline", nics=2,
                            request_kb=32)
        return {
            "ncache_gain_32kb_pct": round(pct_gain(ncache, orig), 1),
            "baseline_gain_32kb_pct": round(pct_gain(base, orig), 1),
            "paper": "NCache +92%, baseline up to +143% at 32KB/2NICs",
        }

    result = experiment(figure5.run, extras)

    orig = result.value("throughput_mbps", mode="original", nics=2,
                        request_kb=32)
    ncache = result.value("throughput_mbps", mode="NCache", nics=2,
                          request_kb=32)
    base = result.value("throughput_mbps", mode="baseline", nics=2,
                        request_kb=32)
    assert 60 <= pct_gain(ncache, orig) <= 120   # paper: 92
    assert 110 <= pct_gain(base, orig) <= 170    # paper: 143
    # (a) with one NIC, NCache/baseline CPU falls below original's.
    for kb in (16, 32):
        orig_cpu = result.value("server_cpu_pct", mode="original", nics=1,
                                request_kb=kb)
        nc_cpu = result.value("server_cpu_pct", mode="NCache", nics=1,
                              request_kb=kb)
        assert orig_cpu > 95
        assert nc_cpu < orig_cpu
    # Original saturates: throughput flat from 16KB on (within 20%).
    o16 = result.value("throughput_mbps", mode="original", nics=2,
                       request_kb=16)
    assert (orig - o16) / o16 < 0.25
    # NCache keeps growing through 32KB.
    n16 = result.value("throughput_mbps", mode="NCache", nics=2,
                       request_kb=16)
    assert ncache > n16 * 1.2
