"""Figure 6: kHTTPd — SPECweb99-like sweep (a) and all-hit sizes (b)."""

from repro.analysis import pct_gain
from repro.experiments import figure6


def test_figure6a_working_set_sweep(experiment):
    def extras(result):
        out = {}
        for ws in (250, 500, 750):
            orig = result.value("throughput_mbps", mode="original",
                                working_set_mb=ws)
            ncache = result.value("throughput_mbps", mode="NCache",
                                  working_set_mb=ws)
            out[f"ncache_gain_{ws}mb_pct"] = round(pct_gain(ncache, orig), 1)
        out["paper"] = ("+10-20% over original; NCache drops hardest "
                        "500->750MB (cache-metadata overhead)")
        return out

    result = experiment(figure6.run_working_set, extras)

    gains = {}
    for ws in (250, 500, 650, 750, 900):
        orig = result.value("throughput_mbps", mode="original",
                            working_set_mb=ws)
        ncache = result.value("throughput_mbps", mode="NCache",
                              working_set_mb=ws)
        base = result.value("throughput_mbps", mode="baseline",
                            working_set_mb=ws)
        gains[ws] = pct_gain(ncache, orig)
        assert base > orig  # baseline always wins
    # Cache-fitting working sets: NCache comfortably ahead.
    assert gains[250] > 5 and gains[500] > 5
    # The crossover: NCache's advantage collapses once its (smaller)
    # effective capacity is exceeded.
    assert min(gains[750], gains[900]) < gains[250]
    assert min(gains[750], gains[900]) < gains[500]


def test_figure6b_request_size_sweep(experiment):
    def extras(result):
        out = {}
        for kb in (16, 128):
            orig = result.value("throughput_mbps", mode="original",
                                request_kb=kb)
            ncache = result.value("throughput_mbps", mode="NCache",
                                  request_kb=kb)
            out[f"ncache_gain_{kb}kb_pct"] = round(pct_gain(ncache, orig), 1)
        out["paper"] = "+8% at 16KB growing to +47% at 128KB"
        return out

    result = experiment(figure6.run_allhit, extras)

    gains = []
    for kb in (16, 32, 64, 128):
        orig = result.value("throughput_mbps", mode="original",
                            request_kb=kb)
        ncache = result.value("throughput_mbps", mode="NCache",
                              request_kb=kb)
        base = result.value("throughput_mbps", mode="baseline",
                            request_kb=kb)
        assert orig < ncache < base
        gains.append(pct_gain(ncache, orig))
    # Improvement grows monotonically with request size (paper: 8->47%).
    assert all(a < b for a, b in zip(gains, gains[1:]))
    assert 2 <= gains[0] <= 15
    assert gains[-1] >= 20
