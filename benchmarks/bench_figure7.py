"""Figure 7: SPECsfs-like ops/s vs regular-data percentage."""

from repro.analysis import pct_gain
from repro.experiments import figure7


def test_figure7_specsfs(experiment):
    def extras(result):
        out = {}
        for pct in (30, 75):
            orig = result.value("ops_per_sec", mode="original",
                                pct_regular=pct)
            ncache = result.value("ops_per_sec", mode="NCache",
                                  pct_regular=pct)
            out[f"ncache_gain_{pct}pct"] = round(pct_gain(ncache, orig), 1)
        out["paper"] = "+16.3% at 30% regular, +18.6% at 75%"
        return out

    result = experiment(figure7.run, extras)

    gains = {}
    for pct in (30, 45, 60, 75):
        orig = result.value("ops_per_sec", mode="original", pct_regular=pct)
        ncache = result.value("ops_per_sec", mode="NCache", pct_regular=pct)
        gains[pct] = pct_gain(ncache, orig)
        assert ncache > orig  # NCache consistently ahead
    # Moderate gains (the mix is metadata/small-request heavy): the paper
    # reports 16-19%; accept a sensible band around it.
    assert 5 <= gains[30] <= 30
    assert 5 <= gains[75] <= 35
    # Gain at 75% regular exceeds gain at 30% (paper: 18.6 > 16.3).
    assert gains[75] > gains[30] - 3
