"""Table 1: kernel-modification / transparency audit."""

from repro.experiments import table1


def test_table1_transparency_audit(experiment):
    result = experiment(table1.run)
    clean = [row for row in result.rows
             if row["modules_importing_ncache"] == "none (verified)"]
    # Daemon, buffer cache, initiator, network stack: all NCache-free.
    assert len(clean) == 4
