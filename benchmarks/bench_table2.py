"""Table 2: data copying operations per request."""

from repro.experiments import table2


def test_table2_copy_counts(experiment):
    result = experiment(table2.run)
    nfs = result.rows_where(server="NFS server", mode="original")[0]
    assert (nfs["read_hit"], nfs["read_miss"],
            nfs["write_overwritten"], nfs["write_flushed"]) == (2, 3, 1, 2)
    web = result.rows_where(server="kHTTPd", mode="original")[0]
    assert (web["read_hit"], web["read_miss"]) == (1, 2)
    for mode in ("NCache", "baseline"):
        row = result.rows_where(server="NFS server", mode=mode)[0]
        assert row["read_hit"] == row["read_miss"] == 0
