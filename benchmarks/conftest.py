"""Benchmark harness helpers.

Each benchmark regenerates one of the paper's tables/figures.  The full
sweep runs once per benchmark (``pedantic`` with one round — these are
system simulations, not microkernels), its rendered table is written to
``benchmarks/results/<name>.txt``, and headline paper-vs-measured numbers
are attached to the benchmark record as ``extra_info``.

Set ``NCACHE_BENCH_FULL=1`` to run the paper-scale (slow) configurations
instead of the quick ones.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def full_mode() -> bool:
    return os.environ.get("NCACHE_BENCH_FULL", "0") == "1"


def save_result(result) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{result.name}.txt"
    path.write_text(result.render() + "\n")
    return path


def run_experiment(benchmark, run_fn, extra_from_result=None):
    """Run one experiment under pytest-benchmark and persist its table."""
    quick = not full_mode()
    result = benchmark.pedantic(run_fn, args=(quick,), rounds=1,
                                iterations=1)
    save_result(result)
    benchmark.extra_info["experiment"] = result.name
    benchmark.extra_info["notes"] = result.notes
    if extra_from_result is not None:
        benchmark.extra_info.update(extra_from_result(result))
    return result


@pytest.fixture
def experiment(benchmark):
    def runner(run_fn, extra_from_result=None):
        return run_experiment(benchmark, run_fn, extra_from_result)

    return runner
