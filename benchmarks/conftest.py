"""Benchmark harness helpers.

Each benchmark regenerates one of the paper's tables/figures.  The full
sweep runs once per benchmark (``pedantic`` with one round — these are
system simulations, not microkernels), its rendered table is written to
``benchmarks/results/<name>.txt``, and headline paper-vs-measured numbers
are attached to the benchmark record as ``extra_info`` together with the
run configuration (mode, worker count, workload seeds) so a saved
``.benchmarks`` record is only compared against a like-for-like run.

Set ``NCACHE_BENCH_FULL=1`` to run the paper-scale (slow) configurations
instead of the quick ones.  ``--workers N`` (or ``NCACHE_BENCH_WORKERS``)
fans each sweep's grid points over a process pool; simulated results are
identical for every worker count (DESIGN.md §7).
"""

from __future__ import annotations

import inspect
import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--workers", type=int,
        default=int(os.environ.get("NCACHE_BENCH_WORKERS", "1")),
        help="process-pool size for experiment grid points "
             "(env NCACHE_BENCH_WORKERS)")


def full_mode() -> bool:
    return os.environ.get("NCACHE_BENCH_FULL", "0") == "1"


def save_result(result) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{result.name}.txt"
    path.write_text(result.render() + "\n")
    return path


def run_experiment(benchmark, run_fn, workers, extra_from_result=None):
    """Run one experiment under pytest-benchmark and persist its table."""
    quick = not full_mode()
    # Closed-form experiments (table1, single ablations) take only
    # ``quick``; sweep runners also accept ``workers``.
    takes_workers = "workers" in inspect.signature(run_fn).parameters
    args = (quick, workers) if takes_workers else (quick,)
    result = benchmark.pedantic(run_fn, args=args, rounds=1, iterations=1)
    save_result(result)
    benchmark.extra_info["experiment"] = result.name
    benchmark.extra_info["notes"] = result.notes
    benchmark.extra_info["mode"] = "quick" if quick else "full"
    benchmark.extra_info["workers"] = workers if takes_workers else 1
    from repro.perf import peak_rss_kb
    from repro.perf.harness import workload_seeds
    benchmark.extra_info["seeds"] = workload_seeds()
    benchmark.extra_info["peak_rss_kb"] = peak_rss_kb()
    if extra_from_result is not None:
        benchmark.extra_info.update(extra_from_result(result))
    return result


@pytest.fixture
def experiment(benchmark, request):
    workers = request.config.getoption("--workers")

    def runner(run_fn, extra_from_result=None):
        return run_experiment(benchmark, run_fn, workers, extra_from_result)

    return runner
