#!/usr/bin/env python3
"""NFS file-server scenario: the paper's §1 motivating deployment.

An NFS server backed by an iSCSI storage server relays file data between
storage and clients.  This example runs the two micro-benchmarks the paper
evaluates it with — the all-miss sequential scan and the all-hit hot set —
across all three server configurations, and prints where the bottleneck
sits in each case (the crux of Figures 4 and 5).

Run:  python examples/nfs_fileserver.py
"""

from repro.servers import ServerMode, TestbedSpec
from repro.servers.testbed import run_until_complete
from repro.workloads import AllHitReadWorkload, SequentialReadWorkload

REQUEST_SIZE = 32 * 1024


def bottleneck(server_cpu: float, storage_cpu: float,
               link_util: float) -> str:
    candidates = [("server CPU", server_cpu), ("storage CPU", storage_cpu),
                  ("network link", link_util)]
    name, value = max(candidates, key=lambda kv: kv[1])
    return f"{name} ({value * 100:.0f}%)"


def run_all_miss(mode: ServerMode) -> None:
    testbed = TestbedSpec.nfs(mode, n_daemons=24,
                              flush_interval_s=None).build()
    workload = SequentialReadWorkload(testbed, REQUEST_SIZE,
                                      file_size=256 << 20,
                                      streams_per_client=12)
    testbed.setup()
    workload.start()
    testbed.warmup_then_measure(0.3, 0.5)
    link = testbed.meters.utilization("server_nic0_tx")
    print(f"  {mode.label:10s} {testbed.meters.throughput.mb_per_second():7.1f} MB/s"
          f"   bottleneck: "
          f"{bottleneck(testbed.server_cpu_utilization(), testbed.storage_cpu_utilization(), link)}")


def run_all_hit(mode: ServerMode, n_nics: int) -> None:
    testbed = TestbedSpec.nfs(mode, n_server_nics=n_nics, n_daemons=8,
                              flush_interval_s=None).build()
    workload = AllHitReadWorkload(testbed, REQUEST_SIZE,
                                  streams_per_client=6)
    testbed.setup()
    run_until_complete(testbed.sim, workload.prewarm())
    workload.start()
    testbed.warmup_then_measure(0.1, 0.3)
    link = testbed.meters.utilization("server_nic0_tx")
    print(f"  {mode.label:10s} {testbed.meters.throughput.mb_per_second():7.1f} MB/s"
          f"   bottleneck: "
          f"{bottleneck(testbed.server_cpu_utilization(), testbed.storage_cpu_utilization(), link)}")


def main() -> None:
    print(f"All-miss sequential scan, {REQUEST_SIZE // 1024} KB requests "
          f"(Figure 4 conditions):")
    for mode in (ServerMode.ORIGINAL, ServerMode.BASELINE,
                 ServerMode.NCACHE):
        run_all_miss(mode)
    print("\n  -> original is server-CPU bound; NCache shifts the "
          "bottleneck to the storage server.\n")

    print("All-hit hot set, one NIC (Figure 5a conditions):")
    for mode in (ServerMode.ORIGINAL, ServerMode.BASELINE,
                 ServerMode.NCACHE):
        run_all_hit(mode, n_nics=1)
    print("\nAll-hit hot set, two NICs (Figure 5b conditions):")
    for mode in (ServerMode.ORIGINAL, ServerMode.BASELINE,
                 ServerMode.NCACHE):
        run_all_hit(mode, n_nics=2)
    print("\n  -> with the link bottleneck removed, eliminating copies "
          "turns directly into throughput (paper: +92% for NCache).")


if __name__ == "__main__":
    main()
