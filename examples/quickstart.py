#!/usr/bin/env python3
"""Quickstart: build the paper's testbed, run one request down each path.

Builds an NFS-over-iSCSI testbed in each of the three server modes
(original / ideal zero-copy baseline / NCache), traces single requests
through the full stack, and prints the copy counts of the paper's Table 2
plus a tiny throughput comparison — all in a few seconds of wall time.

Run:  python examples/quickstart.py
"""

from repro.copymodel import RequestTrace
from repro.net.buffer import VirtualPayload
from repro.nfs import read_reply_data
from repro.servers import ServerMode, TestbedSpec
from repro.servers.testbed import run_until_complete
from repro.sim.process import start
from repro.workloads import AllHitReadWorkload


def trace_one_mode(mode: ServerMode) -> dict:
    """Trace read-miss/read-hit/write requests through a fresh testbed."""
    testbed = TestbedSpec.nfs(mode, ncache_strict=True, n_daemons=8,
                              flush_interval_s=None).build()
    testbed.image.create_file("demo.bin", 16 << 20)
    fh = testbed.file_handle("demo.bin")
    inode = testbed.image.lookup("demo.bin")
    client = testbed.clients[0]
    report = {}

    def scenario():
        miss = RequestTrace("read-miss")
        dgram = yield from client.read(fh, 0, 32768, trace=miss)
        data_ok = read_reply_data(dgram).materialize() == \
            testbed.image.file_payload(inode, 0, 32768).materialize()
        hit = RequestTrace("read-hit")
        yield from client.read(fh, 0, 32768, trace=hit)
        write = RequestTrace("write")
        yield from client.write(fh, 65536, VirtualPayload(1, 0, 8192),
                                trace=write)
        report.update({
            "read_miss_copies": miss.physical_copies(where="server"),
            "read_hit_copies": hit.physical_copies(where="server"),
            "write_copies": write.physical_copies(where="server"),
            "logical_copies_on_hit": hit.logical_copies(),
            "payload_correct": data_ok
            if mode is not ServerMode.BASELINE else "n/a (junk by design)",
        })

    testbed.setup()
    run_until_complete(testbed.sim, start(testbed.sim, scenario()))
    return report


def throughput_one_mode(mode: ServerMode) -> float:
    """A small cached-read throughput shootout (32 KB requests, 2 NICs)."""
    testbed = TestbedSpec.nfs(mode, n_server_nics=2, n_daemons=8,
                              flush_interval_s=None).build()
    workload = AllHitReadWorkload(testbed, 32768, streams_per_client=6)
    testbed.setup()
    run_until_complete(testbed.sim, workload.prewarm())
    workload.start()
    testbed.warmup_then_measure(0.1, 0.25)
    return testbed.meters.throughput.mb_per_second()


def main() -> None:
    print("NCache quickstart: per-request copy counts (paper Table 2)")
    print("-" * 64)
    header = f"{'mode':10s} {'miss':>5s} {'hit':>5s} {'write':>6s} " \
             f"{'logical':>8s}  bytes-correct"
    print(header)
    for mode in (ServerMode.ORIGINAL, ServerMode.BASELINE,
                 ServerMode.NCACHE):
        r = trace_one_mode(mode)
        print(f"{mode.label:10s} {r['read_miss_copies']:5d} "
              f"{r['read_hit_copies']:5d} {r['write_copies']:6d} "
              f"{r['logical_copies_on_hit']:8d}  {r['payload_correct']}")
    print()
    print("Cached 32 KB reads, two gigabit NICs (paper Figure 5b):")
    results = {mode: throughput_one_mode(mode)
               for mode in (ServerMode.ORIGINAL, ServerMode.BASELINE,
                            ServerMode.NCACHE)}
    orig = results[ServerMode.ORIGINAL]
    for mode, mbps in results.items():
        gain = (mbps / orig - 1) * 100
        print(f"  {mode.label:10s} {mbps:7.1f} MB/s  ({gain:+5.1f}% "
              f"vs original)")
    print()
    print("Paper: NCache +92%, ideal baseline up to +143% at this point.")


if __name__ == "__main__":
    main()
