#!/usr/bin/env python3
"""Replaying NFS traces — the Active Trace Player workflow ([20], §5.3).

The paper drives its micro-benchmarks with synthetic traces through an
NFS trace player.  This example builds three traces (sequential scan,
hot/cold skew, mixed read/write/metadata), replays each against an
original-mode and an NCache-mode server, and reports completion time and
server CPU consumed — the trace player's native figure of merit.

Run:  python examples/trace_replay.py
"""

from repro.servers import ServerMode, TestbedSpec
from repro.servers.testbed import run_until_complete
from repro.workloads import (
    TracePlayer,
    hot_cold_trace,
    mixed_trace,
    sequential_read_trace,
)

KB = 1024
MB = 1 << 20


def build_traces() -> dict:
    hot = [f"hot/{i}" for i in range(4)]
    cold = [f"cold/{i}" for i in range(64)]
    return {
        "sequential scan (8 MB, 32 KB reads)":
            sequential_read_trace("bigfile", 8 * MB, 32 * KB),
        "hot/cold 90/10 (600 reads)":
            hot_cold_trace(600, hot, cold, hot_fraction=0.9,
                           request_size=16 * KB, file_size=1 * MB),
        "mixed 70r/30w + metadata (400 ops)":
            mixed_trace(400, [f"mix/{i}" for i in range(16)],
                        read_fraction=0.7, request_size=8 * KB,
                        file_size=512 * KB, metadata_fraction=0.25),
    }


def replay(mode: ServerMode, trace) -> tuple:
    testbed = TestbedSpec.nfs(mode, n_daemons=8,
                              flush_interval_s=0.1).build()
    player = TracePlayer(testbed, trace, concurrency=8)
    testbed.setup()
    started = testbed.sim.now
    cpu0 = testbed.server_host.cpu.busy_time()
    run_until_complete(testbed.sim, player.start())
    elapsed = testbed.sim.now - started
    cpu = testbed.server_host.cpu.busy_time() - cpu0
    return elapsed, cpu, player.completed


def main() -> None:
    for name, trace in build_traces().items():
        print(f"{name}:")
        for mode in (ServerMode.ORIGINAL, ServerMode.NCACHE):
            elapsed, cpu, completed = replay(mode, list(trace))
            print(f"  {mode.label:10s} {completed:5d} ops in "
                  f"{elapsed * 1e3:8.1f} ms simulated, server CPU "
                  f"{cpu * 1e3:7.1f} ms")
        print()
    print("NCache's win shows up as lower server-CPU milliseconds per "
          "trace;\nelapsed time converges where the disk or link, not the "
          "CPU, is the bottleneck.")


if __name__ == "__main__":
    main()
