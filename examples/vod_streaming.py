#!/usr/bin/env python3
"""Video-on-Demand streaming — the paper's §3.5 generalization.

"The idea of NCache is applicable to all pass-through servers whose major
task is to channel data between external parties ... Other examples of
pass-through server include Video-On-Demand server."  This example builds
a VoD-flavoured deployment on the kHTTPd substrate: a small catalog of
large video objects, many concurrent viewers each pulling a stream, a hot
catalog that fits in memory.  The figure of merit is how many concurrent
streams the server CPU sustains at a given per-stream bit rate.

Run:  python examples/vod_streaming.py
"""

from repro.servers import ServerMode, TestbedSpec
from repro.servers.testbed import run_until_complete
from repro.sim.process import start
from repro.sim.rng import substream

#: Each "video" is served as a sequence of 256 KB segments (HLS-style).
SEGMENT_BYTES = 256 * 1024
VIDEOS = 6
SEGMENTS_PER_VIDEO = 24  # 6 MB per title: a hot trailer catalog
STREAM_BIT_RATE = 8e6    # 8 Mbit/s per viewer


def build(mode: ServerMode, viewers: int) -> tuple:
    testbed = TestbedSpec.web(
        mode, connections_per_client=(viewers + 1) // 2).build()
    paths = []
    for v in range(VIDEOS):
        for s in range(SEGMENTS_PER_VIDEO):
            path = f"vod/{v:02d}/{s:03d}.ts"
            testbed.image.create_file(path, SEGMENT_BYTES)
            paths.append(path)
    testbed.setup()
    return testbed, paths


def viewer(testbed, client, paths, rng, pacing_s, initial_delay_s=0.0):
    """One viewer: walk a title's segments at the stream bit rate."""
    if initial_delay_s > 0:
        yield testbed.sim.timeout(initial_delay_s)
    video = rng.randrange(VIDEOS)
    segment = 0
    while True:
        path = paths[video * SEGMENTS_PER_VIDEO
                     + segment % SEGMENTS_PER_VIDEO]
        issued = testbed.sim.now
        response, _ = yield from client.get(path)
        testbed.meters.throughput.record(response.content_length)
        testbed.meters.latency.record(testbed.sim.now - issued)
        segment += 1
        # Paced streaming: fetch the next segment when playback needs it.
        remaining = pacing_s - (testbed.sim.now - issued)
        if remaining > 0:
            yield testbed.sim.timeout(remaining)


def run_point(mode: ServerMode, viewers: int) -> tuple:
    testbed, paths = build(mode, viewers)
    pacing_s = SEGMENT_BYTES * 8 / STREAM_BIT_RATE
    rng = substream(17, "vod", viewers)
    # Prewarm the catalog once.
    warm_client = testbed.http_clients[0]

    def prewarm():
        for path in paths:
            yield from warm_client.get(path)

    run_until_complete(testbed.sim, start(testbed.sim, prewarm()))
    for i in range(viewers):
        client = testbed.http_clients[i % len(testbed.http_clients)]
        # Stagger stream starts across one pacing interval so segment
        # fetches do not arrive as a synchronized herd.
        start(testbed.sim, viewer(testbed, client, paths,
                                  substream(17, "viewer", i), pacing_s,
                                  initial_delay_s=pacing_s * i / viewers))
    testbed.warmup_then_measure(0.3, 0.7)
    # A stream "stalls" when fetching a segment eats a sizable fraction
    # of its playback duration on average.
    stalled = testbed.meters.latency.mean > 0.25 * pacing_s
    return (testbed.meters.throughput.mb_per_second(),
            testbed.server_cpu_utilization(), stalled)


def main() -> None:
    print(f"VoD catalog: {VIDEOS} titles x {SEGMENTS_PER_VIDEO} segments "
          f"of {SEGMENT_BYTES // 1024} KB; {STREAM_BIT_RATE / 1e6:.0f} "
          f"Mbit/s per stream")
    print("-" * 68)
    demand_per_viewer = STREAM_BIT_RATE / 8 / (1 << 20)
    print(f"{'viewers':>8s} {'demand':>9s} | {'original':>26s} | "
          f"{'NCache':>26s}")
    for viewers in (40, 80, 120, 160):
        demand = viewers * demand_per_viewer
        cells = []
        for mode in (ServerMode.ORIGINAL, ServerMode.NCACHE):
            mbps, cpu, stalled = run_point(mode, viewers)
            short = demand - mbps > 0.05 * demand
            flag = " SHORT" if (stalled or short) else ""
            cells.append(
                f"{mbps:6.1f} MB/s cpu {cpu * 100:3.0f}%{flag:6s}")
        print(f"{viewers:>8d} {demand:7.1f}M | {cells[0]:>26s} | "
              f"{cells[1]:>26s}")
    print()
    print("SHORT = delivered >5% below the streams' aggregate demand.")
    print("The pass-through pattern generalizes: NCache sustains more "
          "concurrent\nstreams before the server CPU saturates and "
          "playback falls behind.")


if __name__ == "__main__":
    main()
