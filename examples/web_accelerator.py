#!/usr/bin/env python3
"""kHTTPd static-web accelerator scenario (§4.3 / Figure 6).

A static web server backed by networked storage is the paper's second
pass-through server.  This example sweeps a Zipf-popular working set
across the cache-capacity boundary and shows the double-edged sword of
NCache's memory layout: big wins while the working set fits, and a
sharper fall-off than the original once the chunk descriptors start
eating into effective capacity.

Run:  python examples/web_accelerator.py
"""

from repro.experiments.common import scaled_memory_config, warm_caches
from repro.servers import MB, ServerMode, TestbedSpec
from repro.workloads import SpecWebWorkload

#: Shrink the paper's 896 MB geometry 4x so the sweep runs in seconds.
SCALE = 4
WORKING_SETS_MB = (250, 500, 750, 900)


def run_point(mode: ServerMode, working_set_mb: int) -> float:
    testbed = TestbedSpec.web(mode, connections_per_client=6,
                              **scaled_memory_config(SCALE)).build()
    workload = SpecWebWorkload(
        testbed, working_set_bytes=working_set_mb * MB // SCALE)
    testbed.setup()
    warm_caches(testbed, workload.paths)
    workload.start()
    testbed.warmup_then_measure(0.15, 0.35)
    return testbed.meters.throughput.mb_per_second()


def main() -> None:
    print("kHTTPd, Zipf-popular static pages, working-set sweep")
    print(f"(paper-geometry working sets; memory scaled {SCALE}x down)")
    print("-" * 60)
    print(f"{'working set':>12s} {'original':>10s} {'NCache':>10s} "
          f"{'gain':>8s}")
    for ws in WORKING_SETS_MB:
        orig = run_point(ServerMode.ORIGINAL, ws)
        ncache = run_point(ServerMode.NCACHE, ws)
        gain = (ncache / orig - 1) * 100
        print(f"{ws:>9d} MB {orig:9.1f}M {ncache:9.1f}M {gain:+7.1f}%")
    print()
    print("Paper Figure 6(a): +10-20% while the set fits; the NCache curve")
    print("drops hardest past ~750 MB because chunk descriptors shrink its")
    print("effective cache capacity.")


if __name__ == "__main__":
    main()
