"""repro — reproduction of "Network-Centric Buffer Cache Organization"
(Peng, Sharma, Chiueh; ICDCS 2005).

A discrete-event, byte-accurate simulation of the paper's entire testbed
— NFS-over-iSCSI and kHTTPd pass-through servers in three configurations
(original / ideal zero-copy baseline / NCache) — plus the NCache module
itself: logical copying, the LBN+FHO network-centric cache, packet
substitution and FHO→LBN remapping.

Typical entry points:

>>> from repro.servers import TestbedSpec, ServerMode
>>> from repro.servers import NfsTestbed, TestbedConfig
>>> from repro.workloads import AllHitReadWorkload
>>> from repro import experiments   # one module per paper table/figure
>>> from repro import obs           # tracing + metrics registry

See README.md for the tour, DESIGN.md for the architecture and
EXPERIMENTS.md for paper-vs-measured results.
"""

# Convenience re-exports (not in __all__, which lists subpackages only).
from .servers import ServerMode

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "check",
    "copymodel",
    "core",
    "experiments",
    "fs",
    "http",
    "iscsi",
    "net",
    "nfs",
    "obs",
    "rpc",
    "servers",
    "sim",
    "workloads",
]
