"""Result containers, ratios, table rendering, paper-claims registry."""

from .paper import PaperClaim, claims, evaluate_all, render_report
from .tables import ExperimentResult, pct_gain, ratio

__all__ = [
    "ExperimentResult",
    "PaperClaim",
    "claims",
    "evaluate_all",
    "pct_gain",
    "ratio",
    "render_report",
]
