"""The paper's quantitative claims as a checkable registry.

Every headline number of the evaluation section is encoded as a
:class:`PaperClaim` with an acceptance band (the bands mirror what the
benchmark suite asserts).  ``evaluate_all(quick=True)`` reruns the
relevant experiments and reports pass/fail per claim — a one-call
reproduction audit:

>>> from repro.analysis.paper import evaluate_all
>>> report = evaluate_all()          # a few minutes
>>> all(claim.passed for claim in report)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from .tables import ExperimentResult, pct_gain


@dataclass
class PaperClaim:
    """One quantitative claim and its acceptance band."""

    claim_id: str
    section: str
    statement: str
    paper_value: str
    low: float
    high: float
    #: extracts the measured scalar from the experiment result
    measure: Callable[[ExperimentResult], float] = field(repr=False,
                                                         default=None)
    experiment: str = ""
    measured: Optional[float] = None

    @property
    def passed(self) -> Optional[bool]:
        if self.measured is None:
            return None
        return self.low <= self.measured <= self.high

    def check(self, result: ExperimentResult) -> "PaperClaim":
        self.measured = self.measure(result)
        return self


def _gain(metric: str, mode_new: str = "NCache", mode_old: str = "original",
          **filters) -> Callable[[ExperimentResult], float]:
    def extract(result: ExperimentResult) -> float:
        new = result.value(metric, mode=mode_new, **filters)
        old = result.value(metric, mode=mode_old, **filters)
        return pct_gain(new, old)

    return extract


def claims() -> List[PaperClaim]:
    """The registry, keyed by experiment module name."""
    return [
        PaperClaim(
            "fig4-ncache-16k", "5.4",
            "all-miss: NCache over original at 16 KB",
            "+29% to +36%", 15.0, 60.0,
            _gain("throughput_mbps", request_kb=16), "figure4"),
        PaperClaim(
            "fig4-ncache-32k", "5.4",
            "all-miss: NCache over original at 32 KB",
            "+29% to +36%", 15.0, 60.0,
            _gain("throughput_mbps", request_kb=32), "figure4"),
        PaperClaim(
            "fig5-ncache-32k", "5.4",
            "all-hit, 2 NICs: NCache over original at 32 KB",
            "+92%", 60.0, 120.0,
            _gain("throughput_mbps", request_kb=32, nics=2), "figure5"),
        PaperClaim(
            "fig5-baseline-32k", "5.4",
            "all-hit, 2 NICs: baseline over original at 32 KB",
            "up to +143%", 110.0, 170.0,
            _gain("throughput_mbps", mode_new="baseline", request_kb=32,
                  nics=2), "figure5"),
        PaperClaim(
            "fig6b-16k", "5.5",
            "kHTTPd all-hit: NCache over original at 16 KB",
            "+8%", 2.0, 15.0,
            _gain("throughput_mbps", request_kb=16), "figure6b"),
        PaperClaim(
            "fig6b-128k", "5.5",
            "kHTTPd all-hit: NCache over original at 128 KB",
            "+47%", 20.0, 60.0,
            _gain("throughput_mbps", request_kb=128), "figure6b"),
        PaperClaim(
            "fig6a-500mb", "5.5",
            "kHTTPd SPECweb99: NCache over original, 500 MB working set",
            "+10% to +20%", 5.0, 35.0,
            _gain("throughput_mbps", working_set_mb=500), "figure6a"),
        PaperClaim(
            "fig7-30pct", "5.4",
            "SPECsfs: NCache over original at 30% regular requests",
            "+16.3%", 5.0, 30.0,
            _gain("ops_per_sec", pct_regular=30), "figure7"),
        PaperClaim(
            "fig7-75pct", "5.4",
            "SPECsfs: NCache over original at 75% regular requests",
            "+18.6%", 5.0, 35.0,
            _gain("ops_per_sec", pct_regular=75), "figure7"),
    ]


def evaluate_all(quick: bool = True) -> List[PaperClaim]:
    """Rerun the experiments behind every claim and check the bands."""
    from ..experiments import figure4, figure5, figure6, figure7

    results = {
        "figure4": figure4.run(quick),
        "figure5": figure5.run(quick),
        "figure6a": figure6.run_working_set(quick),
        "figure6b": figure6.run_allhit(quick),
        "figure7": figure7.run(quick),
    }
    return [claim.check(results[claim.experiment]) for claim in claims()]


def render_report(checked: List[PaperClaim]) -> str:
    """Plain-text pass/fail report over checked claims."""
    lines = ["paper claim                                   paper        "
             "measured   verdict",
             "-" * 78]
    for claim in checked:
        measured = (f"{claim.measured:+.1f}%"
                    if claim.measured is not None else "n/a")
        verdict = {True: "PASS", False: "FAIL", None: "-"}[claim.passed]
        lines.append(f"{claim.statement[:44]:44s} {claim.paper_value:>12s} "
                     f"{measured:>10s}   {verdict}")
    return "\n".join(lines)


def main() -> int:
    """``python -m repro.analysis.paper`` — the one-call audit."""
    checked = evaluate_all(quick=True)
    print(render_report(checked))
    return 0 if all(c.passed for c in checked) else 1


if __name__ == "__main__":
    raise SystemExit(main())
