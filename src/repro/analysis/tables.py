"""Experiment result containers and ASCII table rendering."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass
class ExperimentResult:
    """Rows of measurements plus enough metadata to render/report them."""

    name: str
    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: per-data-point metrics snapshots (testbed.metrics_snapshot()),
    #: keyed by a point label such as ``"ncache/16384"``.
    reports: Dict[str, Any] = field(default_factory=dict)

    def add_row(self, **values: Any) -> None:
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def attach_report(self, key: str, report: Dict[str, Any]) -> None:
        """Attach one data point's machine-readable metrics snapshot."""
        self.reports[key] = report

    def to_json(self, indent: int = 2) -> str:
        """The whole result — rows, notes and metrics reports — as JSON."""
        return json.dumps({
            "name": self.name,
            "title": self.title,
            "columns": self.columns,
            "rows": self.rows,
            "notes": self.notes,
            "reports": self.reports,
        }, indent=indent, default=str)

    def rows_where(self, **filters: Any) -> List[Dict[str, Any]]:
        out = []
        for row in self.rows:
            if all(row.get(k) == v for k, v in filters.items()):
                out.append(row)
        return out

    def value(self, column: str, **filters: Any) -> Any:
        """The single value of ``column`` among rows matching filters."""
        matches = self.rows_where(**filters)
        if len(matches) != 1:
            raise KeyError(
                f"{len(matches)} rows match {filters!r} in {self.name}")
        return matches[0][column]

    def column(self, column: str, **filters: Any) -> List[Any]:
        return [row[column] for row in self.rows_where(**filters)]

    # -- rendering ----------------------------------------------------------

    @staticmethod
    def _fmt(value: Any) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 100:
                return f"{value:.0f}"
            if abs(value) >= 1:
                return f"{value:.2f}"
            return f"{value:.3f}"
        return str(value)

    def render(self) -> str:
        widths = {c: len(c) for c in self.columns}
        cells: List[List[str]] = []
        for row in self.rows:
            line = [self._fmt(row.get(c, "")) for c in self.columns]
            cells.append(line)
            for c, text in zip(self.columns, line):
                widths[c] = max(widths[c], len(text))
        sep = "-+-".join("-" * widths[c] for c in self.columns)
        header = " | ".join(c.ljust(widths[c]) for c in self.columns)
        lines = [f"== {self.title} ==", header, sep]
        for line in cells:
            lines.append(" | ".join(
                text.rjust(widths[c]) if _numeric(text) else
                text.ljust(widths[c])
                for c, text in zip(self.columns, line)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown table (for EXPERIMENTS.md etc.)."""
        lines = [f"### {self.title}", "",
                 "| " + " | ".join(self.columns) + " |",
                 "|" + "|".join("---" for _ in self.columns) + "|"]
        for row in self.rows:
            lines.append("| " + " | ".join(
                self._fmt(row.get(c, "")) for c in self.columns) + " |")
        for note in self.notes:
            lines.append("")
            lines.append(f"*{note}*")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _numeric(text: str) -> bool:
    try:
        float(text)
        return True
    except ValueError:
        return False


def ratio(new: float, old: float) -> float:
    """Improvement factor new/old (guards the zero case)."""
    return new / old if old else float("inf")


def pct_gain(new: float, old: float) -> float:
    """Percentage improvement of new over old."""
    return (ratio(new, old) - 1.0) * 100.0
