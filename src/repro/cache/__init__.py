"""repro.cache — the unified eviction kernel (DESIGN.md §9).

One replacement engine behind both of the repo's caches: the
network-centric chunk store (:class:`~repro.core.store.NCacheStore`) and
the file-system page cache (:class:`~repro.fs.buffer_cache.BufferCache`).
The paper fixes replacement at "classic LRU over fixed-size chunks"
(§3.4); this package reproduces that exactly as the default policy while
making the policy a first-class, benchmarkable dimension
(``experiments/policy_ablation.py``).

Public surface:

* :class:`~repro.cache.kernel.CacheKernel` — budgeted entry table with
  monotonic handles, pin/dirty-aware victim selection, ghost-hit
  estimation and ``cache.<name>.*`` metrics;
* :class:`~repro.cache.sharded.ShardedKernel` — N independently budgeted
  kernels behind a deterministic key hash;
* :mod:`~repro.cache.policy` — the :class:`~repro.cache.policy.Policy`
  interface and the ``lru`` / ``clock`` / ``slru`` / ``arc``
  implementations;
* :mod:`~repro.cache.arbiter` — the memory-budget arbiter
  (:class:`~repro.cache.arbiter.MemoryArbiter` leases, the
  :class:`~repro.cache.arbiter.StaticSplit` paper squeeze and the
  :class:`~repro.cache.arbiter.GhostGradient` feedback controller,
  DESIGN.md §12).
"""

from .arbiter import (ArbiterSpec, BudgetLease, GhostGradient,
                      MemoryArbiter, StaticSplit, make_arbiter)
from .kernel import BudgetWindow, CacheKernel, CacheStallError
from .policy import POLICIES, Policy, make_policy
from .sharded import ShardedKernel

__all__ = [
    "ArbiterSpec",
    "BudgetLease",
    "BudgetWindow",
    "CacheKernel",
    "CacheStallError",
    "GhostGradient",
    "MemoryArbiter",
    "POLICIES",
    "Policy",
    "ShardedKernel",
    "StaticSplit",
    "make_arbiter",
    "make_policy",
]
