"""repro.cache — the unified eviction kernel (DESIGN.md §9).

One replacement engine behind both of the repo's caches: the
network-centric chunk store (:class:`~repro.core.store.NCacheStore`) and
the file-system page cache (:class:`~repro.fs.buffer_cache.BufferCache`).
The paper fixes replacement at "classic LRU over fixed-size chunks"
(§3.4); this package reproduces that exactly as the default policy while
making the policy a first-class, benchmarkable dimension
(``experiments/policy_ablation.py``).

Public surface:

* :class:`~repro.cache.kernel.CacheKernel` — budgeted entry table with
  monotonic handles, pin/dirty-aware victim selection, ghost-hit
  estimation and ``cache.<name>.*`` metrics;
* :class:`~repro.cache.sharded.ShardedKernel` — N independently budgeted
  kernels behind a deterministic key hash;
* :mod:`~repro.cache.policy` — the :class:`~repro.cache.policy.Policy`
  interface and the ``lru`` / ``clock`` / ``slru`` / ``arc``
  implementations.
"""

from .kernel import CacheKernel, CacheStallError
from .policy import POLICIES, Policy, make_policy
from .sharded import ShardedKernel

__all__ = [
    "CacheKernel",
    "CacheStallError",
    "POLICIES",
    "Policy",
    "ShardedKernel",
    "make_policy",
]
