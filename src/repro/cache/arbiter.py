"""The memory-budget arbiter: one owner for the machine's cache bytes.

The paper sizes NCache *statically*: the FS buffer cache is squeezed
under NCache's pinned buffer pool once, at configuration time
(§3.4/§4.1), and the split never moves again.  Every ingredient needed
to do better already exists in this tree — each
:class:`~repro.cache.kernel.CacheKernel` keeps a bounded ghost list
feeding a ``cache.<name>.ghost_hit`` estimator, and the kernel exposes
``resize``/``steal``/``grant`` — so this module lifts ARC-style ghost
adaptation from the *intra*-cache level (``repro.cache.policy``'s ARC)
to the *inter*-cache level, the dynamic cache/backend split NetCAS
applies to networked storage.

Ownership model
---------------

A :class:`MemoryArbiter` owns ``total_bytes`` — the machine's entire
cache budget.  Each cache registers a :class:`BudgetLease` carrying its
initial budget, an eviction floor, its ``resize`` entry point and a
writeback routine for the dirty victims a shrink produces.  The
registered budgets must sum exactly to the total (leases partition the
machine; there is no unowned slack).  After registration, *all* budget
movement flows through the arbiter — direct ``resize``/``steal``/
``grant`` calls outside ``repro.cache`` (and the two cache adapters)
are rejected by the ``budget-lease`` lint rule.

Two arbiters implement the policy seam:

* :class:`StaticSplit` — the paper's configuration-time squeeze.  It
  schedules **zero** simulator events and never calls ``resize``; a
  testbed built with it is byte-identical to the pre-arbiter tree
  (locked by ``tests/test_static_split_identity.py``).
* :class:`GhostGradient` — a periodic feedback controller.  Every
  ``tick_s`` of simulated time it advances a per-lease
  :class:`~repro.cache.kernel.BudgetWindow`, computes each cache's
  marginal value of memory from its windowed ghost-hit density, and
  moves a bounded step of bytes from the lowest-value cache to the
  highest-value one.

Controller math and stability
-----------------------------

A ghost hit is a miss that the cache would have served had it been
somewhat larger — ghost lists are bounded by the live entry count, so
windowed ghost hits estimate the misses recoverable by roughly doubling
the cache.  Dividing by the lease's current budget yields a *density*:
misses saved per extra byte granted.  Entry size cancels (a bigger
entry means fewer ghosts per byte but more bytes saved per ghost), so
densities are comparable across caches with different entry footprints:

    demand_i = ghost_hits_i / budget_i * discount_i

Two corrections exist for the stacked-cache mirage — under NCache the
FS buffer cache holds key-only placeholder pages whose data still lives
in the chunk store, so most bcache ghost hits would not have saved a
*backend* read:

* **Ghost admission** (the precise one, used by the testbed): the
  kernel's ``set_ghost_admit`` predicate classifies victims at eviction
  time.  Under an adaptive arbiter the testbed admits metadata and
  dirty pages to bcache's ghost list but not clean placeholders — a
  placeholder's payload is already resident in the chunk store, so
  re-missing it costs no backend read, whereas metadata never enters
  the chunk store at all and a dirty page's payload only reaches it
  once the eviction's writeback remaps.  What remains is bcache's
  standalone value.
* **Downstream discount** (the coarse one, for stacks whose victims
  cannot be classified at eviction time): a lease may declare the lease
  *downstream* of it, and its demand is multiplied by the downstream's
  windowed miss rate.  The two compose multiplicatively, but wiring
  both double-discounts — a filtered ghost list already excludes the
  downstream-covered classes, so the testbed leaves ``downstream``
  unset.

Movement is damped three ways, which is the stability argument
(DESIGN.md §12): a move happens only when the winner's demand exceeds
the loser's by a multiplicative ``hysteresis`` factor *and* the winner
saw at least ``min_signal`` ghost hits this window (quiet caches cannot
attract bytes on noise); each move is at most ``step_fraction`` of the
total budget, so the split needs many consecutive wins to travel far
and one bad window cannot thrash it; and no lease shrinks below its
``floor_bytes``, so pinned/dirty working sets always fit and eviction
stalls are unreachable in practice (a stall during a shrink is caught
and simply ends that move early).  Budget is conserved exactly: bytes
leave one lease and arrive at another in the same tick, and the lease
budgets sum to ``total_bytes`` after every move.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional

from ..sim.stats import CounterSet
from .kernel import BudgetWindow, CacheStallError, KernelMetrics

ARBITER_KINDS = ("static", "ghost")


@dataclass(frozen=True)
class ArbiterSpec:
    """Declarative arbiter configuration (frozen, hashable, picklable).

    Carried on :class:`~repro.servers.config.TestbedConfig` /
    :class:`~repro.servers.spec.TestbedSpec` so fleet specs and the
    parallel harness can ship it across process boundaries.  The
    controller fields are ignored by ``kind="static"``.
    """

    kind: str = "static"
    #: controller period in *simulated* seconds.
    tick_s: float = 0.01
    #: per-move ceiling, as a fraction of the total budget.
    step_fraction: float = 0.05
    #: multiplicative demand gap required before bytes move.
    hysteresis: float = 1.5
    #: minimum windowed ghost hits before a cache may attract bytes.
    min_signal: int = 8
    #: default per-lease eviction floor, as a fraction of the lease's
    #: *initial* budget (overridable per lease at registration).
    floor_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.kind not in ARBITER_KINDS:
            raise ValueError(f"unknown arbiter kind {self.kind!r}; "
                             f"expected one of {ARBITER_KINDS}")
        if self.tick_s <= 0:
            raise ValueError("tick_s must be positive")
        if not 0 < self.step_fraction <= 0.5:
            raise ValueError("step_fraction must be in (0, 0.5]")
        if self.hysteresis < 1.0:
            raise ValueError("hysteresis must be >= 1.0")
        if self.min_signal < 1:
            raise ValueError("min_signal must be >= 1")
        if not 0 <= self.floor_fraction < 1.0:
            raise ValueError("floor_fraction must be in [0, 1)")

    @property
    def adaptive(self) -> bool:
        return self.kind != "static"


class BudgetLease:
    """One cache's registration with the arbiter.

    The lease records the cache's current budget (the arbiter's view is
    authoritative — the cache's ``capacity_bytes`` mirrors it), its
    floor, and the three callables the controller needs: ``resize``
    (returns the dirty victims of a shrink), ``writeback`` (a simulation
    generator flushing one dirty victim) and the kernel's metric family
    for the ghost/hit/miss window.
    """

    __slots__ = ("name", "budget_bytes", "floor_bytes", "resize",
                 "writeback", "metrics", "window", "downstream", "gauge")

    def __init__(self, name: str, budget_bytes: int, floor_bytes: int,
                 resize: Callable[[int], List[Any]],
                 writeback: Optional[Callable[[Any], Generator]],
                 metrics: KernelMetrics,
                 downstream: Optional[str]) -> None:
        self.name = name
        self.budget_bytes = budget_bytes
        self.floor_bytes = floor_bytes
        self.resize = resize
        self.writeback = writeback
        self.metrics = metrics
        self.window = BudgetWindow(metrics)
        self.downstream = downstream
        self.gauge = None  # installed by the arbiter at registration


class MemoryArbiter:
    """Owner of the total cache budget; base of both arbiter kinds."""

    def __init__(self, spec: ArbiterSpec, total_bytes: int,
                 counters: Optional[CounterSet] = None,
                 trace=None) -> None:
        if total_bytes <= 0:
            raise ValueError("total_bytes must be positive")
        self.spec = spec
        self.total_bytes = total_bytes
        self.counters = counters if counters is not None else CounterSet()
        self.trace = trace
        self._leases: List[BudgetLease] = []
        self._by_name: Dict[str, BudgetLease] = {}
        self._started = False

    # -- registration -------------------------------------------------------

    def register(self, name: str, budget_bytes: int,
                 resize: Callable[[int], List[Any]],
                 metrics: KernelMetrics, *,
                 writeback: Optional[Callable[[Any], Generator]] = None,
                 floor_bytes: Optional[int] = None,
                 downstream: Optional[str] = None) -> BudgetLease:
        """Lease ``budget_bytes`` of the total to cache ``name``.

        Registration order is the controller's iteration order, so it
        must be deterministic (the testbed registers bcache first, then
        ncache).  ``downstream`` names another lease whose miss rate
        discounts this cache's demand; it must be registered before
        :meth:`start` (forward references are allowed at registration
        time).
        """
        if self._started:
            raise RuntimeError("arbiter already started")
        if name in self._by_name:
            raise ValueError(f"lease {name!r} already registered")
        if budget_bytes < 0:
            raise ValueError("budget_bytes must be >= 0")
        if sum(l.budget_bytes for l in self._leases) + budget_bytes \
                > self.total_bytes:
            raise ValueError(
                f"lease {name!r} ({budget_bytes}B) overcommits the "
                f"arbiter total ({self.total_bytes}B)")
        if floor_bytes is None:
            floor_bytes = int(budget_bytes * self.spec.floor_fraction)
        floor_bytes = min(floor_bytes, budget_bytes)
        lease = BudgetLease(name, budget_bytes, floor_bytes, resize,
                            writeback, metrics, downstream)
        lease.gauge = self.counters.registry.gauge(
            f"arbiter.budget.{name}", unit="bytes")
        lease.gauge.set(budget_bytes)
        self._leases.append(lease)
        self._by_name[name] = lease
        return lease

    def lease(self, name: str) -> BudgetLease:
        return self._by_name[name]

    @property
    def leases(self) -> List[BudgetLease]:
        return list(self._leases)

    def _seal(self) -> None:
        """Validate the finished registration set."""
        leased = sum(l.budget_bytes for l in self._leases)
        if leased != self.total_bytes:
            raise ValueError(
                f"leases cover {leased}B of a {self.total_bytes}B total; "
                f"the arbiter must own every byte")
        for lease in self._leases:
            if lease.downstream is not None \
                    and lease.downstream not in self._by_name:
                raise ValueError(
                    f"lease {lease.name!r} names unknown downstream "
                    f"lease {lease.downstream!r}")

    # -- lifecycle ----------------------------------------------------------

    def start(self, sim) -> None:
        """Validate the partition and (for adaptive kinds) begin
        ticking on ``sim``."""
        self._seal()
        self._started = True


class StaticSplit(MemoryArbiter):
    """The paper's static squeeze as a degenerate arbiter.

    Budgets are fixed at registration and never move; :meth:`start`
    schedules nothing, so a StaticSplit testbed dispatches exactly the
    same events as the pre-arbiter tree.
    """


class GhostGradient(MemoryArbiter):
    """Ghost-hit-gradient feedback controller; see the module doc."""

    def start(self, sim) -> None:
        super().start(sim)
        if len(self._leases) < 2:
            return  # nothing to trade against
        from ..sim.process import start as start_process
        start_process(sim, self._run(sim), name="arbiter")

    def _run(self, sim) -> Generator:
        spec = self.spec
        while True:
            yield sim.timeout(spec.tick_s)
            yield from self._tick(sim)

    # -- one controller period ---------------------------------------------

    def _demands(self):
        """Windowed demand per lease (registration order) + raw windows."""
        windows = {lease.name: lease.window.advance()
                   for lease in self._leases}
        demands = []
        for lease in self._leases:
            ghost, _, _ = windows[lease.name]
            discount = 1.0
            if lease.downstream is not None:
                _, d_hit, d_miss = windows[lease.downstream]
                traffic = d_hit + d_miss
                discount = d_miss / traffic if traffic else 0.0
            demands.append(ghost / max(1, lease.budget_bytes) * discount)
        return demands, windows

    def _pick(self, demands: List[float], windows):
        """(recipient, donor) for this tick, or (None, None).

        First-maximum / first-minimum on strict comparison keeps ties
        deterministic under the fixed registration order.
        """
        recipient = donor = None
        r_demand = d_demand = 0.0
        for lease, demand in zip(self._leases, demands):
            if recipient is None or demand > r_demand:
                recipient, r_demand = lease, demand
            headroom = lease.budget_bytes - lease.floor_bytes
            if headroom > 0 and (donor is None or demand < d_demand):
                donor, d_demand = lease, demand
        if recipient is None or donor is None or recipient is donor:
            return None, None
        ghost, _, _ = windows[recipient.name]
        if ghost < self.spec.min_signal:
            return None, None
        if r_demand <= self.spec.hysteresis * d_demand:
            return None, None
        return recipient, donor

    def _tick(self, sim) -> Generator:
        demands, windows = self._demands()
        trace_on = self.trace is not None and self.trace.enabled
        if trace_on:
            self.trace.emit(
                "arbiter.tick", cat="arbiter",
                budgets={l.name: l.budget_bytes for l in self._leases},
                demands=[round(d * 1e9, 3) for d in demands])
        recipient, donor = self._pick(demands, windows)
        if recipient is None:
            return
        step = min(int(self.spec.step_fraction * self.total_bytes),
                   donor.budget_bytes - donor.floor_bytes)
        if step <= 0:
            return
        try:
            victims = donor.resize(donor.budget_bytes - step)
        except CacheStallError:
            # Every remaining entry pinned: the budget assignment stuck,
            # the cache sheds the overhang through its own make_room
            # path as pins release.  The move still completes.
            victims = []
            self.counters.add("arbiter.stall_aborts")
        donor.budget_bytes -= step
        recipient.budget_bytes += step
        recipient.resize(recipient.budget_bytes)  # growth: evicts nothing
        donor.gauge.set(donor.budget_bytes)
        recipient.gauge.set(recipient.budget_bytes)
        self.counters.add("arbiter.moves")
        self.counters.add("arbiter.moved_bytes", step)
        if trace_on:
            self.trace.emit("arbiter.move_bytes", cat="arbiter",
                            src=donor.name, dst=recipient.name,
                            nbytes=step,
                            src_budget=donor.budget_bytes,
                            dst_budget=recipient.budget_bytes)
        for item in victims:
            if donor.writeback is None:
                raise RuntimeError(
                    f"lease {donor.name!r} shed dirty victims but "
                    f"registered no writeback routine")
            yield from donor.writeback(item)


def make_arbiter(spec: ArbiterSpec, total_bytes: int,
                 counters: Optional[CounterSet] = None,
                 trace=None) -> MemoryArbiter:
    """Instantiate the arbiter kind named by ``spec``."""
    cls = StaticSplit if spec.kind == "static" else GhostGradient
    return cls(spec, total_bytes, counters=counters, trace=trace)
