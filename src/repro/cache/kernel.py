"""The eviction kernel: one budgeted entry table, any policy.

:class:`CacheKernel` owns what both of the repo's caches used to
hand-roll separately: a byte budget, an entry table keyed by **monotonic
handles** (allocated once, never reused — unlike ``id()``, which the
allocator recycles after GC and which silently corrupted LRU order in
long sweeps), victim selection that skips pinned entries (with optional
clean-first preference, §3.4: "first clean buffers are reclaimed and
then dirty buffers are flushed and reclaimed"), and the
``cache.<name>.*`` metric family.

The kernel stores opaque items; it only requires them to expose
``dirty`` and ``pinned`` attributes (chunks and page-cache entries both
do).  Index bookkeeping (LBN/FHO maps), traces, sanitizer hooks and
reclaim listeners remain with the consumer — the ``on_evict`` callback
runs per victim *before* the next victim is chosen, so listeners observe
exactly the intermediate states the pre-kernel stores produced.

Budget operations (:meth:`resize`, :meth:`steal`, :meth:`grant`) let one
cache squeeze another at runtime — the "NCache pins most of memory and
keeps the FS cache deliberately small" protocol of §3.4/§4.1 expressed
as a kernel-level contract instead of static configuration.  Outside
``repro.cache`` these must be reached through a
:class:`~repro.cache.arbiter.MemoryArbiter` lease (the ``budget-lease``
lint rule enforces the seam).

Two arbiter-facing hooks live here because they need the eviction loop
and the metric family: :meth:`set_ghost_admit` filters which victims may
leave a ghost (so placeholder entries whose data lives in a downstream
cache don't inflate this cache's miss-value signal), and
:class:`BudgetWindow` turns the monotonic kernel counters into per-tick
deltas for the feedback controller.
"""

from __future__ import annotations

from typing import (Any, Callable, Hashable, Iterator, List, NoReturn,
                    Optional, Tuple)

from ..obs.metrics import Counter, MetricsRegistry
from ..obs.trace import TraceBus
from ..sim.stats import CounterSet
from .policy import Policy, make_policy


class CacheStallError(RuntimeError):
    """Raised when eviction must make progress but every entry is pinned
    (or otherwise inadmissible).  A ``RuntimeError`` subclass so existing
    callers that treated the stall as fatal keep working unchanged."""


class KernelMetrics:
    """The ``cache.<name>.*`` metric family, resolved once at startup."""

    __slots__ = ("hit", "miss", "evict_clean", "evict_dirty", "ghost_hit")

    def __init__(self, hit: Counter, miss: Counter, evict_clean: Counter,
                 evict_dirty: Counter, ghost_hit: Counter) -> None:
        self.hit = hit
        self.miss = miss
        self.evict_clean = evict_clean
        self.evict_dirty = evict_dirty
        self.ghost_hit = ghost_hit

    @classmethod
    def declare(cls, registry: MetricsRegistry, name: str) -> "KernelMetrics":
        return cls(
            hit=registry.counter(f"cache.{name}.hit"),
            miss=registry.counter(f"cache.{name}.miss"),
            evict_clean=registry.counter(f"cache.{name}.evict_clean"),
            evict_dirty=registry.counter(f"cache.{name}.evict_dirty"),
            ghost_hit=registry.counter(f"cache.{name}.ghost_hit"),
        )


#: One live cache entry: ``(key, item, nbytes)``.  A plain tuple — the
#: insert path runs once per block entering the cache, and a tuple
#: allocates in C with no ``__init__`` frame.
_Entry = Tuple[Hashable, Any, int]


class CacheKernel:
    """Budgeted entry table with pluggable replacement; see module doc."""

    def __init__(self, name: str, capacity_bytes: int,
                 policy: str = "lru", *,
                 clean_first: bool = False,
                 counters: Optional[CounterSet] = None,
                 trace: Optional[TraceBus] = None,
                 stall_event: Optional[str] = None,
                 trace_cat: str = "cache",
                 handle_start: int = 1,
                 handle_step: int = 1,
                 metrics: Optional[KernelMetrics] = None) -> None:
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.policy: Policy = make_policy(policy)
        self.clean_first = clean_first
        self.counters = counters if counters is not None else CounterSet()
        self.trace = trace
        self.metrics = metrics if metrics is not None \
            else KernelMetrics.declare(self.counters.registry, name)
        self._stall_event = stall_event
        self._trace_cat = trace_cat
        self._entries: dict[int, _Entry] = {}
        self._used = 0
        self._next_handle = handle_start
        self._handle_step = handle_step
        # Hot path: insert/evict run once per block entering or leaving
        # the cache; bind the policy methods once to skip the chains.
        self._policy_insert = self.policy.insert
        self._policy_evicted = self.policy.evicted
        # None = every victim ghost-records (seed behavior, also what
        # ARC's B1/B2 adaptation relies on); the arbiter installs a
        # predicate only when running an adaptive controller.
        self._ghost_admit: Optional[Callable[[Any], bool]] = None

    # -- inspection ---------------------------------------------------------

    @property
    def policy_name(self) -> str:
        return self.policy.name

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used

    def free_bytes_for(self, key: Hashable) -> int:
        """Free budget in the shard responsible for ``key`` (here: all).
        Inlined rather than delegating to :attr:`free_bytes` — it sits on
        the consumers' insert path."""
        return self.capacity_bytes - self._used

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, handle: int) -> bool:
        return handle in self._entries

    def get(self, handle: Optional[int]) -> Any:
        """The live item under ``handle``, or None."""
        if handle is None:
            return None
        entry = self._entries.get(handle)
        return entry[1] if entry is not None else None

    def key_of(self, handle: int) -> Hashable:
        return self._entries[handle][0]

    def size_of(self, handle: int) -> int:
        return self._entries[handle][2]

    def items(self) -> Iterator[Tuple[Hashable, Any]]:
        """``(key, item)`` pairs in the policy's cold-to-hot order."""
        entries = self._entries
        for handle in self.policy.iter_handles():
            key, item, _ = entries[handle]
            yield key, item

    # -- lifecycle ----------------------------------------------------------

    def insert(self, key: Hashable, item: Any, nbytes: int) -> int:
        """Admit ``item`` at MRU position; returns its handle.

        Room discipline stays with the consumer (call :meth:`make_room`
        first); the kernel tolerates transient overshoot so replacement
        flows can install the new entry before reclaiming the stale one.
        """
        handle = self._next_handle
        self._next_handle = handle + self._handle_step
        self._entries[handle] = (key, item, nbytes)
        self._used += nbytes
        self._policy_insert(handle, key)
        return handle

    def touch(self, handle: int) -> None:
        """Record a hit on a live entry (promotes it, counts the hit)."""
        self.policy.touch(handle)
        self.metrics.hit._total += 1

    def record_hit(self) -> None:
        """Count a hit that must not promote (``touch=False`` lookups)."""
        self.metrics.hit._total += 1

    def record_miss(self, key: Hashable) -> None:
        """Count a miss and probe the ghost list for ``key``."""
        self.metrics.miss._total += 1
        if self.policy.ghost_hit(key):
            self.metrics.ghost_hit._total += 1

    def rekey(self, handle: int, new_key: Hashable) -> int:
        """Reassign a live entry's key (FHO→LBN remap) in place.

        The entry's recency position is untouched — exactly the
        pre-kernel remap semantics.  Returns the (unchanged) handle; the
        sharded kernel overrides this to migrate across shards.
        """
        entries = self._entries
        _, item, nbytes = entries[handle]
        entries[handle] = (new_key, item, nbytes)
        return handle

    def remove(self, handle: int) -> Any:
        """Take a live entry out without eviction semantics (no ghost,
        no evict counters); returns the item."""
        _, item, nbytes = self._entries.pop(handle)
        self._used -= nbytes
        self.policy.remove(handle)
        return item

    def clear(self) -> None:
        self._entries.clear()
        self._used = 0
        self.policy.clear()

    # -- eviction -----------------------------------------------------------

    def set_ghost_admit(self,
                        admit: Optional[Callable[[Any], bool]]) -> None:
        """Install a predicate deciding which victims ghost-record.

        Victims failing ``admit`` leave the policy silently (no ghost
        entry, no later ``ghost_hit``); admitted victims behave exactly
        as before.  ``None`` restores the record-everything default.
        Only an adaptive arbiter should install this: ARC's ghost lists
        double as its internal adaptation signal, so filtering them
        changes replacement order for that policy.
        """
        self._ghost_admit = admit

    def _pick_victim(self) -> Optional[int]:
        entries = self._entries
        if self.clean_first:
            for handle in self.policy.iter_victims():
                item = entries[handle][1]
                if not item.dirty and not item.pinned:
                    return handle
        for handle in self.policy.iter_victims():
            if not entries[handle][1].pinned:
                return handle
        return None

    def _stall(self) -> NoReturn:
        if self._stall_event is not None and self.trace is not None \
                and self.trace.enabled:
            self.trace.emit(self._stall_event, cat=self._trace_cat,
                            used_bytes=self._used,
                            capacity_bytes=self.capacity_bytes,
                            entries=len(self._entries))
        raise CacheStallError(
            f"cache {self.name!r} cannot make room: "
            f"no evictable (unpinned) entries")

    def make_room(self, nbytes: int, key: Hashable = None,
                  on_evict: Optional[Callable[[Any], None]] = None
                  ) -> List[Any]:
        """Evict until ``nbytes`` fit; return the dirty victims.

        ``on_evict`` runs per victim *before* the next victim is chosen,
        so consumer-side bookkeeping (indexes, traces, reclaim
        listeners) observes the same intermediate states as the
        pre-kernel eviction loops.  ``key`` routes the request in the
        sharded kernel; it is accepted (and ignored) here so call sites
        are shard-agnostic.
        """
        dirty_victims: List[Any] = []
        entries = self._entries
        policy_evicted = self._policy_evicted
        ghost_admit = self._ghost_admit
        metrics = self.metrics
        while self.capacity_bytes - self._used < nbytes:
            handle = self._pick_victim()
            if handle is None:
                self._stall()
            key_, item, vbytes = entries.pop(handle)
            self._used -= vbytes
            if ghost_admit is None or ghost_admit(item):
                policy_evicted(handle, key_)
            else:
                self.policy.remove(handle)
            if item.dirty:
                metrics.evict_dirty._total += 1
                dirty_victims.append(item)
            else:
                metrics.evict_clean._total += 1
            if on_evict is not None:
                on_evict(item)
        return dirty_victims

    # -- budget operations (the §3.4 squeeze protocol) ----------------------

    def resize(self, new_capacity_bytes: int,
               on_evict: Optional[Callable[[Any], None]] = None
               ) -> List[Any]:
        """Change the budget, evicting down to it if shrunk; returns the
        dirty victims exactly like :meth:`make_room`."""
        self.capacity_bytes = new_capacity_bytes
        dirty_victims: List[Any] = []
        entries = self._entries
        ghost_admit = self._ghost_admit
        metrics = self.metrics
        while self._used > self.capacity_bytes:
            handle = self._pick_victim()
            if handle is None:
                self._stall()
            key_, item, vbytes = entries.pop(handle)
            self._used -= vbytes
            if ghost_admit is None or ghost_admit(item):
                self._policy_evicted(handle, key_)
            else:
                self.policy.remove(handle)
            if item.dirty:
                metrics.evict_dirty._total += 1
                dirty_victims.append(item)
            else:
                metrics.evict_clean._total += 1
            if on_evict is not None:
                on_evict(item)
        return dirty_victims

    def steal(self, nbytes: int,
              on_evict: Optional[Callable[[Any], None]] = None
              ) -> List[Any]:
        """Shrink the budget by ``nbytes`` (the donor side of a squeeze)."""
        return self.resize(self.capacity_bytes - nbytes, on_evict)

    def grant(self, nbytes: int) -> None:
        """Grow the budget by ``nbytes`` (the recipient side)."""
        self.capacity_bytes += nbytes


class BudgetWindow:
    """Per-tick deltas over a kernel's monotonic metric counters.

    The feedback controller wants *windowed* rates — "ghost hits since
    the last tick" — while :class:`KernelMetrics` counters only grow.
    A window snapshots the grand totals and :meth:`advance` returns the
    deltas since the previous call, re-arming the snapshot.  Deltas are
    clamped at zero so a counter swap (e.g. a rebuilt registry after a
    cold restart) degrades to one empty window instead of going
    negative.
    """

    __slots__ = ("_metrics", "_ghost", "_hit", "_miss")

    def __init__(self, metrics: KernelMetrics) -> None:
        self._metrics = metrics
        self._ghost = metrics.ghost_hit._total
        self._hit = metrics.hit._total
        self._miss = metrics.miss._total

    def advance(self) -> Tuple[float, float, float]:
        """``(ghost_hits, hits, misses)`` since the previous call."""
        metrics = self._metrics
        ghost = metrics.ghost_hit._total
        hit = metrics.hit._total
        miss = metrics.miss._total
        deltas = (max(0.0, ghost - self._ghost),
                  max(0.0, hit - self._hit),
                  max(0.0, miss - self._miss))
        self._ghost, self._hit, self._miss = ghost, hit, miss
        return deltas
