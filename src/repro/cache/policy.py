"""Replacement policies for the cache kernel.

A :class:`Policy` owns only *recency bookkeeping* over opaque integer
handles — it never sees items, sizes, pins or dirty bits.  The kernel
allocates handles (monotonic, never reused — see DESIGN.md §9 on why
``id()``-keyed recency structures are unsound), feeds lifecycle events in
(``insert`` / ``touch`` / ``remove`` / ``evicted``), and asks for
candidates back (``iter_victims``).  The kernel — not the policy — skips
pinned entries and applies clean-first preference, so every policy is
automatically pin/dirty-aware.

``iter_victims`` yields handles in *eviction-preference order*.  The
kernel consumes the iterator lazily and stops at the first admissible
victim, so a policy may mutate its own structures while yielding (CLOCK
rotates its hand this way) as long as iteration terminates.

Every policy also keeps a bounded **ghost list** of recently evicted
*keys*: :meth:`Policy.ghost_hit` answers "would a somewhat larger cache
have hit?" without holding the data.  The kernel turns that into the
``cache.<name>.ghost_hit`` metric; ARC additionally uses its ghosts
(B1/B2) to adapt its partition, per the classic algorithm.

All structures are plain ``OrderedDict`` over int handles or keys —
iteration order is insertion order, fully deterministic, never dependent
on ``PYTHONHASHSEED`` (handles are ints; keys hash as tuples of ints).
"""

from __future__ import annotations

from collections import OrderedDict
from itertools import chain
from typing import Dict, Hashable, Iterator, Type

#: Ghost lists never shrink below this many keys, even for tiny caches.
GHOST_FLOOR = 8


class Policy:
    """Recency bookkeeping over opaque handles; see the module docstring."""

    #: registry key; subclasses override.
    name = "base"

    def __init__(self) -> None:
        self._ghost: "OrderedDict[Hashable, None]" = OrderedDict()
        # Hot path: every consumer miss probes the ghost list, so bind
        # the C-level membership test over the (never-replaced) dict.
        # ARC rebinds — it probes two ghost lists (B1/B2) instead.
        self.ghost_hit = self._ghost.__contains__  # type: ignore[method-assign]  # noqa: E501

    # -- lifecycle (kernel -> policy) --------------------------------------

    def insert(self, handle: int, key: Hashable) -> None:
        """A new entry entered the cache at MRU position."""
        raise NotImplementedError

    def touch(self, handle: int) -> None:
        """The entry was hit."""
        raise NotImplementedError

    def remove(self, handle: int) -> None:
        """The entry left the cache *without* being evicted (drop,
        replacement, cross-shard rekey): no ghost is recorded."""
        raise NotImplementedError

    def evicted(self, handle: int, key: Hashable) -> None:
        """The entry was evicted by the kernel: remember its key as a
        ghost so a quick return counts as a ghost hit."""
        self.remove(handle)
        self._remember_ghost(key)

    def clear(self) -> None:
        """Forget all live entries and ghosts."""
        self._ghost.clear()

    # -- queries (policy -> kernel) ----------------------------------------

    def iter_victims(self) -> Iterator[int]:
        """Handles in eviction-preference order (best victim first)."""
        raise NotImplementedError

    def iter_handles(self) -> Iterator[int]:
        """All live handles, least-recently-used first, no side effects.

        For :class:`LruPolicy` this is exactly the classic LRU order the
        paper's store exposed; other policies define their own canonical
        cold-to-hot order.
        """
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    # -- ghost list ---------------------------------------------------------

    def ghost_hit(self, key: Hashable) -> bool:
        """Non-consuming probe: was ``key`` evicted recently?

        The probe must not consume the ghost entry: the kernel calls it
        on every miss, and the subsequent :meth:`insert` of the same key
        (which pops the ghost via :meth:`_note_insert`) may or may not
        follow.
        """
        return key in self._ghost

    def _note_insert(self, key: Hashable) -> None:
        self._ghost.pop(key, None)

    def _remember_ghost(self, key: Hashable) -> None:
        ghost = self._ghost
        ghost.pop(key, None)
        ghost[key] = None
        cap = max(GHOST_FLOOR, len(self))
        while len(ghost) > cap:
            ghost.popitem(last=False)


class LruPolicy(Policy):
    """The paper's replacement (§3.4): touch moves to tail, evict head.

    Byte-for-byte the behavior of the pre-kernel hand-rolled LRUs: one
    OrderedDict, ``move_to_end`` on touch, head-first victims.
    """

    name = "lru"

    def __init__(self) -> None:
        super().__init__()
        self._order: "OrderedDict[int, None]" = OrderedDict()
        # Hot path: a touch is exactly move_to_end, so hand callers the
        # bound C method — an LRU hit then costs what the pre-kernel
        # hand-rolled OrderedDict cost (clear() empties in place, so
        # the binding stays valid for the policy's lifetime).
        self.touch = self._order.move_to_end  # type: ignore[method-assign]

    def insert(self, handle: int, key: Hashable) -> None:
        self._order[handle] = None
        ghost = self._ghost
        if ghost:
            ghost.pop(key, None)

    def touch(self, handle: int) -> None:  # pragma: no cover - see __init__
        self._order.move_to_end(handle)

    def remove(self, handle: int) -> None:
        del self._order[handle]

    def evicted(self, handle: int, key: Hashable) -> None:
        # One call from the kernel's eviction loop instead of three
        # (remove + _remember_ghost); semantics identical to the base.
        del self._order[handle]
        ghost = self._ghost
        ghost.pop(key, None)
        ghost[key] = None
        cap = len(self._order)
        if cap < GHOST_FLOOR:
            cap = GHOST_FLOOR
        while len(ghost) > cap:
            ghost.popitem(last=False)

    def clear(self) -> None:
        super().clear()
        self._order.clear()

    def iter_victims(self) -> Iterator[int]:
        return iter(self._order)

    def iter_handles(self) -> Iterator[int]:
        return iter(self._order)

    def __len__(self) -> int:
        return len(self._order)


class ClockPolicy(Policy):
    """Second-chance FIFO: a hit sets a reference bit; the hand clears
    it and rotates instead of evicting.

    The ring is an OrderedDict whose head is the hand.  ``iter_victims``
    rotates referenced entries to the tail (clearing their bit) and
    yields unreferenced ones; a bounded sweep (two full revolutions)
    guarantees termination even when the kernel rejects every candidate
    as pinned.
    """

    name = "clock"

    def __init__(self) -> None:
        super().__init__()
        self._ring: "OrderedDict[int, bool]" = OrderedDict()

    def insert(self, handle: int, key: Hashable) -> None:
        self._ring[handle] = False
        self._note_insert(key)

    def touch(self, handle: int) -> None:
        self._ring[handle] = True

    def remove(self, handle: int) -> None:
        del self._ring[handle]

    def clear(self) -> None:
        super().clear()
        self._ring.clear()

    def iter_victims(self) -> Iterator[int]:
        ring = self._ring
        budget = 2 * len(ring) + 1
        while ring and budget > 0:
            budget -= 1
            handle = next(iter(ring))
            if ring[handle]:
                ring[handle] = False
                ring.move_to_end(handle)
                continue
            yield handle
            if handle in ring:
                # Kernel skipped this candidate (pinned/dirty): rotate it
                # past the hand so the sweep makes progress.
                ring.move_to_end(handle)

    def iter_handles(self) -> Iterator[int]:
        return iter(self._ring)

    def __len__(self) -> int:
        return len(self._ring)


class SlruPolicy(Policy):
    """Segmented LRU (2Q-style): probation + protected segments.

    New entries land in *probation*; a hit promotes to *protected*
    (capped at :data:`PROTECTED_FRACTION` of the live count, demoting
    protected-LRU back to probation-MRU on overflow).  Victims come from
    probation head first, so one-touch scans wash through probation
    without displacing the protected working set.
    """

    name = "slru"

    #: protected segment's share of the live entry count.
    PROTECTED_FRACTION = 0.8

    def __init__(self) -> None:
        super().__init__()
        self._probation: "OrderedDict[int, None]" = OrderedDict()
        self._protected: "OrderedDict[int, None]" = OrderedDict()

    def insert(self, handle: int, key: Hashable) -> None:
        self._probation[handle] = None
        self._note_insert(key)

    def touch(self, handle: int) -> None:
        if handle in self._protected:
            self._protected.move_to_end(handle)
            return
        del self._probation[handle]
        self._protected[handle] = None
        self._rebalance()

    def _rebalance(self) -> None:
        cap = max(1, int(self.PROTECTED_FRACTION * len(self)))
        while len(self._protected) > cap:
            demoted, _ = self._protected.popitem(last=False)
            self._probation[demoted] = None

    def remove(self, handle: int) -> None:
        if handle in self._probation:
            del self._probation[handle]
        else:
            del self._protected[handle]

    def clear(self) -> None:
        super().clear()
        self._probation.clear()
        self._protected.clear()

    def iter_victims(self) -> Iterator[int]:
        return chain(iter(self._probation), iter(self._protected))

    def iter_handles(self) -> Iterator[int]:
        return chain(iter(self._probation), iter(self._protected))

    def __len__(self) -> int:
        return len(self._probation) + len(self._protected)


class ArcPolicy(Policy):
    """ARC-style adaptive replacement: recency (T1) vs frequency (T2)
    lists plus ghost lists (B1/B2) steering the balance.

    A ghost hit in B1 (recently evicted one-touch entries) grows the
    recency target ``_p``; a hit in B2 shrinks it.  Victims come from T1
    while it exceeds the target, else from T2; the non-preferred list is
    chained after as a fallback so pinned entries can never stall
    eviction while any unpinned entry exists.  Counts (not bytes) drive
    the adaptation — entries here are fixed-size chunks/pages, so the
    two are proportional.
    """

    name = "arc"

    def __init__(self) -> None:
        super().__init__()
        self._t1: "OrderedDict[int, None]" = OrderedDict()
        self._t2: "OrderedDict[int, None]" = OrderedDict()
        self._b1: "OrderedDict[Hashable, None]" = OrderedDict()
        self._b2: "OrderedDict[Hashable, None]" = OrderedDict()
        self._p = 0.0
        # Restore ARC's dual-list probe over the base class's binding.
        self.ghost_hit = self._arc_ghost_hit  # type: ignore[method-assign]

    def insert(self, handle: int, key: Hashable) -> None:
        if key in self._b1:
            self._p = min(float(len(self) + 1),
                          self._p + max(1.0, len(self._b2)
                                        / max(1, len(self._b1))))
            del self._b1[key]
            self._t2[handle] = None
        elif key in self._b2:
            self._p = max(0.0,
                          self._p - max(1.0, len(self._b1)
                                        / max(1, len(self._b2))))
            del self._b2[key]
            self._t2[handle] = None
        else:
            self._t1[handle] = None

    def touch(self, handle: int) -> None:
        if handle in self._t2:
            self._t2.move_to_end(handle)
            return
        del self._t1[handle]
        self._t2[handle] = None

    def remove(self, handle: int) -> None:
        if handle in self._t1:
            del self._t1[handle]
        else:
            del self._t2[handle]

    def evicted(self, handle: int, key: Hashable) -> None:
        if handle in self._t1:
            del self._t1[handle]
            ghost = self._b1
        else:
            del self._t2[handle]
            ghost = self._b2
        ghost.pop(key, None)
        ghost[key] = None
        cap = max(GHOST_FLOOR, len(self))
        for g in (self._b1, self._b2):
            while len(g) > cap:
                g.popitem(last=False)

    def clear(self) -> None:
        super().clear()
        self._t1.clear()
        self._t2.clear()
        self._b1.clear()
        self._b2.clear()
        self._p = 0.0

    def ghost_hit(self, key: Hashable) -> bool:
        return self._arc_ghost_hit(key)

    def _arc_ghost_hit(self, key: Hashable) -> bool:
        return key in self._b1 or key in self._b2

    def iter_victims(self) -> Iterator[int]:
        if len(self._t1) > max(1.0, self._p):
            return chain(iter(self._t1), iter(self._t2))
        return chain(iter(self._t2), iter(self._t1))

    def iter_handles(self) -> Iterator[int]:
        return chain(iter(self._t1), iter(self._t2))

    def __len__(self) -> int:
        return len(self._t1) + len(self._t2)


#: Registry keyed by policy name — the experiment grid sweeps this.
POLICIES: Dict[str, Type[Policy]] = {
    LruPolicy.name: LruPolicy,
    ClockPolicy.name: ClockPolicy,
    SlruPolicy.name: SlruPolicy,
    ArcPolicy.name: ArcPolicy,
}


def make_policy(name: str) -> Policy:
    """A fresh policy instance by registry name."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown cache policy {name!r}; "
            f"known: {', '.join(sorted(POLICIES))}") from None
    return cls()
