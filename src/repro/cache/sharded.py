"""Hash-partitioned cache: N independently budgeted kernels.

Each shard is a full :class:`~repro.cache.kernel.CacheKernel` with its
own policy instance and ``capacity // N`` of the byte budget (shard 0
absorbs the division remainder, so the shard budgets always sum to the
configured capacity).  Keys route by a deterministic multiplicative hash
over the key's own integer hash — both key types
(:class:`~repro.core.keys.LbnKey`, :class:`~repro.core.keys.FhoKey`) are
frozen dataclasses of ints, whose ``hash()`` is seed-independent, so
shard assignment is stable across runs and across
``PYTHONHASHSEED`` values.

Handles encode their shard arithmetically: shard *i* allocates
``i+1, i+1+N, i+1+2N, ...`` (``handle - 1 ≡ i  (mod N)``), so handle →
shard routing is O(1) with no extra table and handles stay globally
unique and monotonic per shard.

With ``shards=1`` the single shard's behavior is bit-identical to an
unsharded kernel (same handle sequence, same policy decisions) — the
determinism lock in ``tests/test_cache_kernel.py``.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterator, List, Optional, Tuple

from ..obs.trace import TraceBus
from ..sim.stats import CounterSet
from .kernel import CacheKernel, KernelMetrics

#: Knuth's multiplicative constant; spreads consecutive LBNs across
#: shards instead of striping runs into one shard.
_HASH_MULT = 0x9E3779B1
_HASH_MASK = 0xFFFFFFFF


def default_shard_hash(key: Hashable) -> int:
    """Deterministic 32-bit mix of a key's (int-based) hash."""
    mixed = (hash(key) * _HASH_MULT) & _HASH_MASK
    return mixed ^ (mixed >> 16)


class ShardedKernel:
    """N :class:`CacheKernel` shards behind one kernel-shaped surface.

    Drop-in for :class:`CacheKernel` at the consumer call sites used in
    this repo; all shards share one ``cache.<name>.*`` metric family so
    hit-ratio reporting aggregates transparently.
    """

    def __init__(self, name: str, capacity_bytes: int,
                 policy: str = "lru", shards: int = 2, *,
                 clean_first: bool = False,
                 counters: Optional[CounterSet] = None,
                 trace: Optional[TraceBus] = None,
                 stall_event: Optional[str] = None,
                 trace_cat: str = "cache",
                 shard_hash: Callable[[Hashable], int] = default_shard_hash
                 ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.name = name
        self.n_shards = shards
        self.counters = counters if counters is not None else CounterSet()
        self.metrics = KernelMetrics.declare(self.counters.registry, name)
        self._shard_hash = shard_hash
        base = capacity_bytes // shards
        remainder = capacity_bytes - base * shards
        self.shards: List[CacheKernel] = [
            CacheKernel(name, base + (remainder if i == 0 else 0),
                        policy,
                        clean_first=clean_first,
                        counters=self.counters, trace=trace,
                        stall_event=stall_event, trace_cat=trace_cat,
                        handle_start=i + 1, handle_step=shards,
                        metrics=self.metrics)
            for i in range(shards)]

    # -- routing ------------------------------------------------------------

    def shard_for_key(self, key: Hashable) -> CacheKernel:
        return self.shards[self._shard_hash(key) % self.n_shards]

    def shard_for_handle(self, handle: int) -> CacheKernel:
        return self.shards[(handle - 1) % self.n_shards]

    # -- inspection ---------------------------------------------------------

    @property
    def policy_name(self) -> str:
        return self.shards[0].policy.name

    @property
    def capacity_bytes(self) -> int:
        return sum(shard.capacity_bytes for shard in self.shards)

    @capacity_bytes.setter
    def capacity_bytes(self, nbytes: int) -> None:
        # Re-divide without evicting: over-budget shards shed entries at
        # their next make_room, matching the plain kernel's assignment
        # semantics (eviction is always a make_room/resize side effect).
        base = nbytes // self.n_shards
        remainder = nbytes - base * self.n_shards
        for i, shard in enumerate(self.shards):
            shard.capacity_bytes = base + (remainder if i == 0 else 0)

    @property
    def used_bytes(self) -> int:
        return sum(shard.used_bytes for shard in self.shards)

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def free_bytes_for(self, key: Hashable) -> int:
        return self.shard_for_key(key).free_bytes

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def __contains__(self, handle: int) -> bool:
        return handle in self.shard_for_handle(handle)

    def get(self, handle: Optional[int]) -> Any:
        if handle is None:
            return None
        return self.shard_for_handle(handle).get(handle)

    def key_of(self, handle: int) -> Hashable:
        return self.shard_for_handle(handle).key_of(handle)

    def size_of(self, handle: int) -> int:
        return self.shard_for_handle(handle).size_of(handle)

    def items(self) -> Iterator[Tuple[Hashable, Any]]:
        """``(key, item)`` pairs, shard 0 first, cold-to-hot per shard."""
        for shard in self.shards:
            yield from shard.items()

    # -- lifecycle ----------------------------------------------------------

    def insert(self, key: Hashable, item: Any, nbytes: int) -> int:
        return self.shard_for_key(key).insert(key, item, nbytes)

    def touch(self, handle: int) -> None:
        self.shard_for_handle(handle).touch(handle)

    def policy_touch(self, handle: int) -> None:
        """Promote without hit accounting — the consumers' hot-path
        binding (they count the hit themselves via :attr:`metrics`)."""
        self.shards[(handle - 1) % self.n_shards].policy.touch(handle)

    def ghost_probe(self, key: Hashable) -> bool:
        """Ghost-list membership in ``key``'s shard, no accounting."""
        return self.shard_for_key(key).policy.ghost_hit(key)

    def record_hit(self) -> None:
        self.metrics.hit._total += 1

    def record_miss(self, key: Hashable) -> None:
        self.shard_for_key(key).record_miss(key)

    def rekey(self, handle: int, new_key: Hashable) -> int:
        """Reassign an entry's key, migrating shards when the new key
        routes elsewhere.

        Cross-shard migration re-admits the entry at the target shard's
        MRU (its relative recency cannot be carried between independent
        policy instances) and may transiently overshoot the target
        shard's budget — the next ``make_room`` there corrects it, the
        same transient-overshoot contract as ``insert``.
        """
        old_shard = self.shard_for_handle(handle)
        new_shard = self.shard_for_key(new_key)
        if new_shard is old_shard:
            return old_shard.rekey(handle, new_key)
        nbytes = old_shard.size_of(handle)
        item = old_shard.remove(handle)
        return new_shard.insert(new_key, item, nbytes)

    def remove(self, handle: int) -> Any:
        return self.shard_for_handle(handle).remove(handle)

    def clear(self) -> None:
        for shard in self.shards:
            shard.clear()

    # -- eviction -----------------------------------------------------------

    def set_ghost_admit(self,
                        admit: Optional[Callable[[Any], bool]]) -> None:
        """Install (or clear) a ghost-admission predicate on every
        shard; see :meth:`CacheKernel.set_ghost_admit`."""
        for shard in self.shards:
            shard.set_ghost_admit(admit)

    def make_room(self, nbytes: int, key: Hashable = None,
                  on_evict: Optional[Callable[[Any], None]] = None
                  ) -> List[Any]:
        """Make room in the shard that will receive ``key``.

        Without a key (legacy call sites that size-only reserve), the
        destination shard is unknowable, so the conservative reading
        applies: evict from the fullest shard — fewest free bytes,
        lowest index on ties — until *every* shard could fit the
        request.
        """
        if key is not None:
            return self.shard_for_key(key).make_room(nbytes, key=key,
                                                     on_evict=on_evict)
        dirty_victims: List[Any] = []
        while True:
            target = min(self.shards, key=lambda s: s.free_bytes)
            if target.free_bytes >= nbytes:
                return dirty_victims
            dirty_victims.extend(target.make_room(nbytes,
                                                  on_evict=on_evict))

    # -- budget operations --------------------------------------------------

    def resize(self, new_capacity_bytes: int,
               on_evict: Optional[Callable[[Any], None]] = None
               ) -> List[Any]:
        """Re-divide a new total budget across shards (shard 0 keeps the
        remainder, as at construction) and evict down to it."""
        base = new_capacity_bytes // self.n_shards
        remainder = new_capacity_bytes - base * self.n_shards
        dirty_victims: List[Any] = []
        for i, shard in enumerate(self.shards):
            dirty_victims.extend(shard.resize(
                base + (remainder if i == 0 else 0), on_evict))
        return dirty_victims

    def steal(self, nbytes: int,
              on_evict: Optional[Callable[[Any], None]] = None
              ) -> List[Any]:
        return self.resize(self.capacity_bytes - nbytes, on_evict)

    def grant(self, nbytes: int) -> None:
        self.resize(self.capacity_bytes + nbytes)
