"""Correctness tooling: ncache-lint + the buffer-lifecycle sanitizer.

The paper's whole argument rests on invariants that ordinary tests do not
see: regular data moves by *logical* copying (key-sized) while only
metadata is physically copied (§3.1/§3.3); sk_buff chains follow a strict
ownership lifecycle (cache-in → substitute/remap → evict, §3.4); and the
simulator is deterministic (all randomness flows through
:mod:`repro.sim.rng`, never wall-clock).  This package enforces them:

* **ncache-lint** (:mod:`repro.check.linter`, ``python -m repro.check``) —
  an AST-based lint framework with repro-specific rules
  (``no-wallclock``, ``no-global-random``, ``copy-discipline``,
  ``trace-naming``, ``engine-discipline``) and per-line suppression via
  ``# check: ignore[rule-id]`` comments;
* **buffer sanitizer** (:mod:`repro.check.sanitizer`) — a runtime
  lifecycle tracker (the simulation analog of ASan/LSan) that tags every
  chunk / network buffer with an ownership state and reports leaks,
  double-substitution, use-after-evict and FS-cache/NCache aliasing.

The sanitizer is enabled for every test by ``tests/conftest.py`` and can
be switched on for any run with ``REPRO_SANITIZE=1``.
"""

from __future__ import annotations

from typing import Any

from .diagnostics import Diagnostic
from .sanitizer import (
    BufferSanitizer,
    ChunkState,
    SanitizerError,
    Violation,
    ViolationKind,
    active,
    disable,
    enable,
    sanitize,
)

__all__ = [
    "Diagnostic",
    "BufferSanitizer",
    "ChunkState",
    "SanitizerError",
    "Violation",
    "ViolationKind",
    "active",
    "disable",
    "enable",
    "sanitize",
    "lint_paths",
    "all_rules",
]


def __getattr__(name: str) -> Any:
    # The linter machinery is only needed by the CLI and its tests; load
    # it lazily so the sanitizer hooks in the hot simulation paths never
    # pay for an ast/tokenize import.
    if name in ("lint_paths", "lint_file", "LintResult"):
        from . import linter

        return getattr(linter, name)
    if name in ("all_rules", "RULES"):
        from . import rules

        return getattr(rules, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
