"""Entry point for ``python -m repro.check``."""

from .cli import main

raise SystemExit(main())
