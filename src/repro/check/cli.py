"""``python -m repro.check`` — lint the tree, print a rule-by-rule report.

Two modes share one CLI:

* the default runs the **per-file rules** (:mod:`repro.check.rules`)
  over each file independently;
* ``--flow`` runs the **interprocedural packs**
  (:mod:`repro.check.flow`) over the whole tree at once — call-graph
  reachability, per-function dataflow, cross-module vocabulary drift.
  Flow mode replaces (not augments) the per-file rules, so
  ``--flow src tests`` can be kept clean even though tests are exempt
  from several per-file rules by design.

Exit codes: 0 when no unsuppressed diagnostics, 1 when the lint found
violations, 2 for usage errors.  ``--format json`` (or the ``--json``
shorthand) emits a machine-readable report (used by CI annotations);
``--format sarif`` emits SARIF 2.1.0 for code-scanning upload;
``--changed`` lints only files that are modified per ``git status``
(used by the pre-commit hook).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from . import flow as flow_mod
from .diagnostics import Diagnostic
from .flow import FlowRule
from .linter import (LintResult, changed_files, iter_python_files,
                     lint_paths)
from .rules import RULES, all_rules
from .sarif import to_sarif


def _default_roots() -> List[Path]:
    """Lint ``src/repro`` relative to the repo root, wherever we run."""
    here = Path.cwd()
    for base in (here, *here.parents):
        candidate = base / "src" / "repro"
        if candidate.is_dir():
            return [candidate]
    # Installed-package fallback: lint the package directory itself.
    return [Path(__file__).resolve().parent.parent]


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``python -m repro.check`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="ncache-lint: enforce the repo's paper invariants "
                    "(copy discipline, determinism, trace naming, engine "
                    "discipline), per file by default or project-wide "
                    "with --flow.")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--flow", action="store_true",
                        help="run the interprocedural flow packs "
                             "(flow-determinism, flow-typestate, "
                             "flow-engine, vocab-drift) instead of the "
                             "per-file rules")
    parser.add_argument("--flow-depth", type=int, default=None,
                        metavar="N",
                        help="flow-engine reachability depth "
                             "(default: 10)")
    parser.add_argument("--call-graph-out", type=Path, default=None,
                        metavar="PATH",
                        help="write the resolved call graph as JSON "
                             "(also serves as the cache for "
                             "--call-graph-cache)")
    parser.add_argument("--call-graph-cache", type=Path, default=None,
                        metavar="PATH",
                        help="reuse call-site resolution from a previous "
                             "--call-graph-out file (content-digest "
                             "keyed; a stale cache is ignored)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default=None,
                        help="report format (default: text)")
    parser.add_argument("--json", action="store_true",
                        help="shorthand for --format json")
    parser.add_argument("--changed", action="store_true",
                        help="lint only files modified per git status")
    parser.add_argument("--rules", type=str, default="",
                        help="comma-separated rule ids to run "
                             "(default: all; disables the stale-ignore "
                             "check)")
    parser.add_argument("--no-stale-ignores", action="store_true",
                        help="skip the unused-suppression check")
    parser.add_argument("--list-rules", action="store_true",
                        help="print every rule and the invariant it "
                             "guards, then exit")
    return parser


def _print_report(result: LintResult) -> None:
    print(f"ncache-lint: checked {result.files_checked} files")
    by_rule = result.by_rule()
    for rule in all_rules():
        diags = by_rule.get(rule.id, [])
        live = sum(1 for d in diags if not d.suppressed)
        quiet = len(diags) - live
        note = f" ({quiet} suppressed)" if quiet else ""
        print(f"  {rule.id:<18} {live} issue(s){note}")
    for diag in result.active:
        print(diag.format())
    if result.ok:
        print("OK: zero unsuppressed diagnostics")
    else:
        print(f"FAIL: {len(result.active)} unsuppressed diagnostic(s)")


def _print_flow_report(files_checked: int, rules: Sequence[FlowRule],
                       diagnostics: List[Diagnostic]) -> None:
    print(f"ncache-lint --flow: analyzed {files_checked} files")
    by_rule: Dict[str, List[Diagnostic]] = {}
    for diag in diagnostics:
        by_rule.setdefault(diag.rule, []).append(diag)
    for rule in rules:
        diags = by_rule.get(rule.id, [])
        live = sum(1 for d in diags if not d.suppressed)
        quiet = len(diags) - live
        note = f" ({quiet} suppressed)" if quiet else ""
        print(f"  {rule.id:<18} {live} issue(s){note}")
    active = [d for d in diagnostics if not d.suppressed]
    for diag in active:
        print(diag.format())
    if not active:
        print("OK: zero unsuppressed diagnostics")
    else:
        print(f"FAIL: {len(active)} unsuppressed diagnostic(s)")


def _emit(fmt: str, files_checked: int, diagnostics: List[Diagnostic],
          rule_table: List[Tuple[str, str, str]]) -> None:
    if fmt == "json":
        active = [d for d in diagnostics if not d.suppressed]
        print(json.dumps({
            "files_checked": files_checked,
            "ok": not active,
            "diagnostics": [d.to_json() for d in diagnostics],
        }, indent=2))
    elif fmt == "sarif":
        print(json.dumps(to_sarif(diagnostics, rule_table), indent=2))


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code (0 = clean)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    fmt = args.format or ("json" if args.json else "text")

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}: {rule.summary}")
            print(f"    guards: {rule.invariant}")
        for frule in flow_mod.all_flow_rules():
            print(f"{frule.id}: {frule.summary} (--flow)")
            print(f"    guards: {frule.invariant}")
        return 0

    flow_ids = {rule.id for rule in flow_mod.all_flow_rules()}
    rule_filter: Optional[List[str]] = None
    if args.rules:
        wanted = [r.strip() for r in args.rules.split(",") if r.strip()]
        known = set(RULES) | flow_ids
        unknown = [r for r in wanted if r not in known]
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(unknown)}")
        if args.flow:
            bad = [r for r in wanted if r not in flow_ids]
            if bad:
                parser.error(f"not flow rule id(s): {', '.join(bad)}")
        else:
            bad = [r for r in wanted if r in flow_ids]
            if bad:
                parser.error(f"flow rule id(s) need --flow: "
                             f"{', '.join(bad)}")
        rule_filter = wanted

    if not args.flow:
        for opt, name in ((args.flow_depth, "--flow-depth"),
                          (args.call_graph_out, "--call-graph-out"),
                          (args.call_graph_cache, "--call-graph-cache")):
            if opt is not None:
                parser.error(f"{name} requires --flow")

    roots = list(args.paths) if args.paths else _default_roots()
    missing = [p for p in roots if not p.exists()]
    if missing:
        parser.error(f"no such path: {missing[0]}")

    only = None
    if args.changed:
        only = changed_files(Path.cwd())
        if only is None:
            print("warning: git unavailable; linting everything",
                  file=sys.stderr)
        elif not only:
            print("ncache-lint: no changed python files")
            return 0

    if args.flow:
        files = iter_python_files(roots)
        if only is not None:
            restrict = {p.resolve() for p in only}
            files = [p for p in files if p.resolve() in restrict]
        cache = args.call_graph_cache or args.call_graph_out
        cache = cache if cache is not None and cache.exists() else None
        analysis = flow_mod.analyze_paths(
            files, rules=rule_filter,
            depth=(args.flow_depth
                   if args.flow_depth is not None
                   else flow_mod.DEFAULT_DEPTH),
            cache_path=cache,
            stale_ignores=not args.no_stale_ignores)
        if args.call_graph_out is not None:
            flow_mod.save_call_graph(analysis.project,
                                     args.call_graph_out)
        rule_table = [(r.id, r.summary, r.invariant)
                      for r in flow_mod.all_flow_rules()]
        if fmt == "text":
            _print_flow_report(len(analysis.project.modules),
                               flow_mod.all_flow_rules(),
                               analysis.diagnostics)
        else:
            _emit(fmt, len(analysis.project.modules),
                  analysis.diagnostics, rule_table)
        return 0 if analysis.ok else 1

    rules = ([RULES[r] for r in rule_filter]
             if rule_filter is not None else None)
    result = lint_paths(roots, rules=rules, only=only,
                        stale_ignores=not args.no_stale_ignores)

    if fmt == "text":
        _print_report(result)
    else:
        rule_table = [(r.id, r.summary, r.invariant) for r in all_rules()]
        _emit(fmt, result.files_checked, result.diagnostics, rule_table)
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
