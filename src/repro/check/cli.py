"""``python -m repro.check`` — lint the tree, print a rule-by-rule report.

Exit codes: 0 when no unsuppressed diagnostics, 1 when the lint found
violations, 2 for usage errors.  ``--json`` emits a machine-readable
report (used by CI annotations); ``--changed`` lints only files that are
modified per ``git status`` (used by the pre-commit hook).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .linter import LintResult, changed_files, lint_paths
from .rules import RULES, all_rules


def _default_roots() -> List[Path]:
    """Lint ``src/repro`` relative to the repo root, wherever we run."""
    here = Path.cwd()
    for base in (here, *here.parents):
        candidate = base / "src" / "repro"
        if candidate.is_dir():
            return [candidate]
    # Installed-package fallback: lint the package directory itself.
    return [Path(__file__).resolve().parent.parent]


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``python -m repro.check`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="ncache-lint: enforce the repo's paper invariants "
                    "(copy discipline, determinism, trace naming, engine "
                    "discipline).")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--json", action="store_true",
                        help="emit a machine-readable JSON report")
    parser.add_argument("--changed", action="store_true",
                        help="lint only files modified per git status")
    parser.add_argument("--rules", type=str, default="",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print every rule and the invariant it "
                             "guards, then exit")
    return parser


def _print_report(result: LintResult) -> None:
    print(f"ncache-lint: checked {result.files_checked} files")
    by_rule = result.by_rule()
    for rule in all_rules():
        diags = by_rule.get(rule.id, [])
        live = sum(1 for d in diags if not d.suppressed)
        quiet = len(diags) - live
        note = f" ({quiet} suppressed)" if quiet else ""
        print(f"  {rule.id:<18} {live} issue(s){note}")
    for diag in result.active:
        print(diag.format())
    if result.ok:
        print("OK: zero unsuppressed diagnostics")
    else:
        print(f"FAIL: {len(result.active)} unsuppressed diagnostic(s)")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code (0 = clean)."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}: {rule.summary}")
            print(f"    guards: {rule.invariant}")
        return 0

    rules = None
    if args.rules:
        wanted = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in wanted if r not in RULES]
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(unknown)}")
        rules = [RULES[r] for r in wanted]

    roots = list(args.paths) if args.paths else _default_roots()
    missing = [p for p in roots if not p.exists()]
    if missing:
        parser.error(f"no such path: {missing[0]}")

    only = None
    if args.changed:
        only = changed_files(Path.cwd())
        if only is None:
            print("warning: git unavailable; linting everything",
                  file=sys.stderr)
        elif not only:
            print("ncache-lint: no changed python files")
            return 0

    result = lint_paths(roots, rules=rules, only=only)

    if args.json:
        print(json.dumps({
            "files_checked": result.files_checked,
            "ok": result.ok,
            "diagnostics": [d.to_json() for d in result.diagnostics],
        }, indent=2))
    else:
        _print_report(result)
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
