"""Lint diagnostics and the ``# check: ignore[...]`` suppression syntax.

A diagnostic pins one rule violation to a file/line/column.  Suppression
is per *line*, per *rule*: a comment of the form ::

    payload.materialize()  # check: ignore[copy-discipline] -- header scan

silences exactly the named rule(s) on that line (comma-separate several
ids; ``*`` silences every rule).  Everything after ``--`` is a free-form
justification; the linter keeps suppressed diagnostics and reports their
count so a suppression is an auditable annotation, never a deletion.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Any, Dict, Set

#: ``# check: ignore[rule-a, rule-b] -- optional reason``
_SUPPRESS_RE = re.compile(
    r"#\s*check:\s*ignore\[([A-Za-z0-9_\-*,\s]+)\]")


@dataclass
class Diagnostic:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False

    def format(self) -> str:
        flag = " (suppressed)" if self.suppressed else ""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"[{self.rule}] {self.message}{flag}")

    def to_json(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
        }


@dataclass
class Suppressions:
    """Per-line rule suppressions parsed from one file's comments."""

    by_line: Dict[int, Set[str]] = field(default_factory=dict)

    def covers(self, rule: str, line: int) -> bool:
        rules = self.by_line.get(line)
        if not rules:
            return False
        return "*" in rules or rule in rules


def parse_suppressions(source: str) -> Suppressions:
    """Extract ``# check: ignore[...]`` comments, mapped to their line."""
    out = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            rules = {part.strip() for part in match.group(1).split(",")
                     if part.strip()}
            line = tok.start[0]
            out.by_line.setdefault(line, set()).update(rules)
    except tokenize.TokenError:
        # A file the tokenizer rejects will already fail ast.parse; the
        # linter reports that as a syntax diagnostic instead.
        pass
    return out
