"""``repro.check.flow`` — project-wide interprocedural analysis.

Where :mod:`repro.check.rules` checks one file at a time, this package
builds a whole-program view (module import graph + call graph, see
:mod:`.project`), runs a small abstract interpreter per function
(:mod:`.dataflow`), and layers four rule packs on top:

========================  ================================================
rule id                   invariant enforced
========================  ================================================
``flow-determinism``      no host-ordered iteration (sets, fs listings,
                          address-keyed aggregation) reaches a
                          sim-visible sink
``flow-typestate``        buffer/chunk handles respect fresh -> pinned ->
                          substituted -> evicted across function
                          boundaries
``flow-engine``           no wallclock / blocking / global-random call is
                          *reachable* from an engine process body
``vocab-drift``           emitted trace/metric name literals and the
                          declared vocabulary are the same set
========================  ================================================

Entry point: :func:`analyze_paths`, wired to ``python -m repro.check
--flow``.  Suppressions use the same per-line comment grammar as the
per-file rules (``# check: ignore[flow-determinism] -- why``).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..diagnostics import Diagnostic
from . import determinism, engine_flow, typestate, vocab_drift
from .engine_flow import DEFAULT_DEPTH
from .project import ModuleInfo, Project, save_call_graph

__all__ = [
    "FlowRule", "FLOW_RULES", "all_flow_rules", "analyze_paths",
    "AnalysisResult", "Project", "save_call_graph", "DEFAULT_DEPTH",
]


@dataclass(frozen=True)
class FlowRule:
    """Descriptor for one flow pack (mirrors the per-file Rule shape)."""

    id: str
    summary: str
    invariant: str
    run: Callable[[Project, Callable[[Diagnostic], None]], None]


FLOW_RULES: Tuple[FlowRule, ...] = (
    FlowRule(
        id="flow-determinism",
        summary="unordered iteration must not reach sim-visible sinks",
        invariant=("simulated results are a pure function of the seeds: "
                   "identical across runs, worker counts and "
                   "PYTHONHASHSEED values"),
        run=determinism.run,
    ),
    FlowRule(
        id="flow-typestate",
        summary="buffer/chunk handles follow the lifecycle state machine",
        invariant=("fresh -> pinned -> substituted -> evicted, each "
                   "transition at most once per handle per path; pinned "
                   "purely-local handles are unpinned before return"),
        run=typestate.run,
    ),
    FlowRule(
        id="flow-engine",
        summary="no host effect reachable from an engine process",
        invariant=("event handlers and the functions they (transitively) "
                   "call never read the wall clock, block the host, or "
                   "draw from global random state"),
        run=engine_flow.run,
    ),
    FlowRule(
        id="vocab-drift",
        summary="emitted names and the declared vocabulary stay in sync",
        invariant=("DECLARED_TRACE_EVENTS / DECLARED_METRICS are exactly "
                   "the literals emitted by repro.* modules (plus "
                   "declared dynamic-name families)"),
        run=vocab_drift.run,
    ),
)


def all_flow_rules() -> Tuple[FlowRule, ...]:
    """Every registered flow pack, in execution order."""
    return FLOW_RULES


def _module_for(project: Project, display: str) -> Optional[ModuleInfo]:
    for info in project.modules.values():
        if info.display == display:
            return info
    return None


@dataclass
class AnalysisResult:
    """What one ``--flow`` run produced."""

    project: Project
    diagnostics: List[Diagnostic]

    @property
    def active(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if not d.suppressed]

    @property
    def ok(self) -> bool:
        return not self.active


def analyze_paths(files: Iterable[Path],
                  rules: Optional[Sequence[str]] = None,
                  depth: int = engine_flow.DEFAULT_DEPTH,
                  cache_path: Optional[Path] = None,
                  stale_ignores: bool = True) -> AnalysisResult:
    """Build the project model and run the flow packs over it.

    ``rules`` filters by rule id (None = all packs; a filtered run also
    disables the stale-suppression check, since it cannot prove a
    suppression unused); ``depth`` bounds the ``flow-engine``
    reachability walk; ``cache_path`` points at a call-graph JSON
    produced by a previous run (content-digest keyed, so a stale cache
    is merely ignored).
    """
    project = Project.build(files, cache_path=cache_path)
    wanted = set(rules) if rules is not None else None
    if wanted is not None:
        stale_ignores = False
    diagnostics: List[Diagnostic] = []
    seen: Dict[Tuple[str, str, int, int, str], None] = {}
    used: Dict[str, List[Tuple[int, str]]] = {}

    def add(diag: Diagnostic) -> None:
        key = (diag.rule, diag.path, diag.line, diag.col, diag.message)
        if key in seen:
            return
        seen[key] = None
        module = _module_for(project, diag.path)
        if module is not None \
                and module.suppressions.covers(diag.rule, diag.line):
            diag.suppressed = True
            used.setdefault(diag.path, []).append((diag.line, diag.rule))
        diagnostics.append(diag)

    for info in project.modules.values():
        if info.syntax_error is not None:
            line, col, message = info.syntax_error
            diagnostics.append(Diagnostic(
                rule="syntax", path=info.display, line=line, col=col,
                message=f"file does not parse: {message}"))

    for rule in FLOW_RULES:
        if wanted is not None and rule.id not in wanted:
            continue
        if rule.id == "flow-engine":
            engine_flow.run(project, add, depth=depth)
        else:
            rule.run(project, add)

    if stale_ignores:
        from ..linter import stale_ignore_diagnostics
        run_ids = [rule.id for rule in FLOW_RULES]
        for info in project.modules.values():
            diagnostics.extend(stale_ignore_diagnostics(
                info.display, info.suppressions, run_ids,
                used.get(info.display, [])))

    diagnostics.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    return AnalysisResult(project=project, diagnostics=diagnostics)
