"""A small forward abstract interpreter for per-function dataflow.

The rule packs need just enough dataflow to track an abstract value per
local variable through straight-line code, branches, and loops.  This
module provides the statement-walking skeleton; a pack subclasses
:class:`FunctionInterp` and supplies the value lattice (``join``) plus
expression evaluation (``eval_call`` and friends).

Soundness posture (DESIGN.md §6.1): branches are *joined* (both arms
analyzed from a copy of the incoming state, results merged), loop bodies
run twice and join (enough for the monotone two-step lattices the packs
use), ``try`` handlers analyze from the join of the states before and
after the body, and nested function definitions are opaque.  There is no
aliasing: two names are two facts.  The packs are therefore neither
sound nor complete in general — they are tuned so that every report is
worth reading, which is the only standard a linter survives.
"""

from __future__ import annotations

import ast
from typing import Dict, Generic, List, Optional, TypeVar

V = TypeVar("V")

#: A function-local abstract environment: variable name -> lattice value.
Env = Dict[str, V]


class FunctionInterp(Generic[V]):
    """Abstract interpreter over one function body.

    Subclasses implement :meth:`join` (the value lattice) and override
    the ``eval_*`` / ``on_*`` hooks to give expressions meaning and to
    report diagnostics.
    """

    def __init__(self, func: ast.AST) -> None:
        self.func = func

    # -- pack interface ----------------------------------------------------

    def join(self, a: V, b: V) -> V:
        raise NotImplementedError

    def initial_env(self) -> Env[V]:
        """Starting environment (parameter bindings go here)."""
        return {}

    def eval_call(self, node: ast.Call, env: Env[V]) -> Optional[V]:
        """Abstract value of a call expression (None = no information)."""
        return None

    def eval_expr_hook(self, node: ast.expr, env: Env[V]) -> Optional[V]:
        """First-chance expression evaluation (None = use the default)."""
        return None

    def on_return(self, node: ast.Return, value: Optional[V],
                  env: Env[V]) -> None:
        """A ``return`` statement was executed under ``env``."""

    def on_func_exit(self, env: Env[V]) -> None:
        """The function body ran to its end (implicit ``return None``)."""

    def on_for(self, node: ast.For, iter_value: Optional[V],
               env: Env[V]) -> None:
        """A ``for`` loop is about to run; ``iter_value`` is abstract."""

    def enter_loop(self, node: ast.For, iter_value: Optional[V]) -> None:
        """The body of ``for`` loop ``node`` is about to be analyzed."""

    def exit_loop(self, node: ast.For) -> None:
        """The body of ``for`` loop ``node`` has been analyzed."""

    def on_assign(self, stmt: ast.Assign, env: Env[V]) -> None:
        """An assignment executed (after targets were bound)."""

    def bind_loop_target(self, target: ast.expr,
                         iter_value: Optional[V], env: Env[V]) -> None:
        """Bind the loop variable(s); default drops any information."""
        for name in _target_names(target):
            env.pop(name, None)

    # -- driver ------------------------------------------------------------

    def run(self) -> None:
        env = self.initial_env()
        assert isinstance(self.func, (ast.FunctionDef, ast.AsyncFunctionDef))
        env = self.exec_body(list(self.func.body), env)
        self.on_func_exit(env)

    def exec_body(self, body: List[ast.stmt], env: Env[V]) -> Env[V]:
        for stmt in body:
            env = self.exec_stmt(stmt, env)
        return env

    def exec_stmt(self, stmt: ast.stmt, env: Env[V]) -> Env[V]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return env  # nested definitions are opaque
        if isinstance(stmt, ast.Assign):
            value = self.eval_expr(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, value, env)
            self.on_assign(stmt, env)
            return env
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self.eval_expr(stmt.value, env), env)
            return env
        if isinstance(stmt, ast.AugAssign):
            value = self.eval_expr(stmt.value, env)
            if isinstance(stmt.target, ast.Name):
                old = env.get(stmt.target.id)
                joined = value if old is None else (
                    old if value is None else self.join(old, value))
                self._set(stmt.target.id, joined, env)
            return env
        if isinstance(stmt, ast.Expr):
            self.eval_expr(stmt.value, env)
            return env
        if isinstance(stmt, ast.Return):
            value = (self.eval_expr(stmt.value, env)
                     if stmt.value is not None else None)
            self.on_return(stmt, value, env)
            return env
        if isinstance(stmt, ast.If):
            self.eval_expr(stmt.test, env)
            then_env = self.exec_body(stmt.body, dict(env))
            else_env = self.exec_body(stmt.orelse, dict(env))
            return self.join_envs(then_env, else_env)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_value = self.eval_expr(stmt.iter, env)
            if isinstance(stmt, ast.For):
                self.on_for(stmt, iter_value, env)
            body_env = dict(env)
            self.bind_loop_target(stmt.target, iter_value, body_env)
            if isinstance(stmt, ast.For):
                self.enter_loop(stmt, iter_value)
            # Two joined passes approximate the loop fixpoint for the
            # packs' shallow lattices.  The loop target is rebound fresh
            # before each pass — each iteration gets a new binding, so
            # facts about it must not leak across iterations.
            once = self.exec_body(stmt.body, dict(body_env))
            second = dict(once)
            self.bind_loop_target(stmt.target, iter_value, second)
            twice = self.exec_body(stmt.body, second)
            if isinstance(stmt, ast.For):
                self.exit_loop(stmt)
            after = self.join_envs(env, self.join_envs(once, twice))
            return self.exec_body(stmt.orelse, after)
        if isinstance(stmt, ast.While):
            self.eval_expr(stmt.test, env)
            once = self.exec_body(stmt.body, dict(env))
            twice = self.exec_body(stmt.body, dict(once))
            after = self.join_envs(env, self.join_envs(once, twice))
            return self.exec_body(stmt.orelse, after)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self.eval_expr(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, value, env)
            return self.exec_body(stmt.body, env)
        if isinstance(stmt, ast.Try):
            body_env = self.exec_body(stmt.body, dict(env))
            merged = self.join_envs(env, body_env)
            out = body_env
            for handler in stmt.handlers:
                handler_env = self.exec_body(handler.body, dict(merged))
                out = self.join_envs(out, handler_env)
            out = self.exec_body(stmt.orelse, out)
            return self.exec_body(stmt.finalbody, out)
        if isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval_expr(child, env)
            return env
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
            return env
        return env

    # -- expressions -------------------------------------------------------

    def eval_expr(self, node: ast.expr, env: Env[V]) -> Optional[V]:
        first = self.eval_expr_hook(node, env)
        if first is not None:
            return first
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Call):
            for arg in node.args:
                self.eval_expr(arg, env)
            for kw in node.keywords:
                self.eval_expr(kw.value, env)
            return self.eval_call(node, env)
        if isinstance(node, ast.IfExp):
            self.eval_expr(node.test, env)
            a = self.eval_expr(node.body, env)
            b = self.eval_expr(node.orelse, env)
            return self._join_opt(a, b)
        if isinstance(node, ast.BoolOp):
            out: Optional[V] = None
            for value in node.values:
                out = self._join_opt(out, self.eval_expr(value, env))
            return out
        if isinstance(node, (ast.Await, ast.Yield, ast.YieldFrom,
                             ast.Starred)):
            inner = getattr(node, "value", None)
            return self.eval_expr(inner, env) if inner is not None else None
        if isinstance(node, ast.NamedExpr):
            value = self.eval_expr(node.value, env)
            self._bind(node.target, value, env)
            return value
        # Everything else: evaluate children for effects, no value.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval_expr(child, env)
        return None

    # -- helpers -----------------------------------------------------------

    def join_envs(self, a: Env[V], b: Env[V]) -> Env[V]:
        out: Env[V] = {}
        for key in a.keys() | b.keys():
            if key in a and key in b:
                out[key] = self.join(a[key], b[key])
            else:
                out[key] = a.get(key, b.get(key))  # type: ignore[assignment]
        return out

    def _join_opt(self, a: Optional[V], b: Optional[V]) -> Optional[V]:
        if a is None:
            return b
        if b is None:
            return a
        return self.join(a, b)

    def _bind(self, target: ast.expr, value: Optional[V],
              env: Env[V]) -> None:
        if isinstance(target, ast.Name):
            self._set(target.id, value, env)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, None, env)
        # Attribute / subscript targets carry no per-variable fact.

    def _set(self, name: str, value: Optional[V], env: Env[V]) -> None:
        if value is None:
            env.pop(name, None)
        else:
            env[name] = value


def _target_names(target: ast.expr) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: List[str] = []
        for elt in target.elts:
            out.extend(_target_names(elt))
        return out
    return []
