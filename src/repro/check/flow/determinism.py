"""``flow-determinism``: unordered iteration reaching sim-visible sinks.

The fleet_scaling / parallel-sweep results are only worker-count
independent because every simulated quantity is a pure function of the
seeds.  One classic way to break that silently is to let *host-ordered*
data — set/frozenset iteration order (``PYTHONHASHSEED``), directory
listing order, ``id()``/``hash()``-keyed aggregation — flow into a
sim-visible sink: engine scheduling, trace emission, histogram
recording, or RNG stream derivation.  The per-file rules cannot see
this; it needs per-function dataflow (which locals hold unordered
collections) plus interprocedural summaries (which project functions
*return* unordered collections).

The lattice is one bit per variable: UNORDERED or untracked.  Ordering
launderers (``sorted``, ``min``/``max`` without an address key) drop the
bit; structure-preserving constructors (``list``, ``tuple``, ``iter``,
``reversed``, ``enumerate``) keep it.  A diagnostic fires when a sink
call executes inside a ``for`` over an unordered value (including a
``yield`` there, which schedules the engine), or an unordered value is
passed to a sink as an argument.
"""

from __future__ import annotations

import ast
from typing import Callable, List, Optional, Set, Tuple

from .. import vocabulary as vocab
from ..diagnostics import Diagnostic
from .dataflow import Env, FunctionInterp
from .project import FunctionInfo, ModuleInfo, Project, dotted_name

#: The single non-bottom lattice value.
UNORDERED = "unordered"

#: Constructors that preserve the order (or lack of order) of their
#: argument: list(set) iterates in hash order.
_PRESERVING = frozenset({"list", "tuple", "iter", "reversed", "enumerate"})

#: Set methods whose result is another set.
_SET_PRODUCING_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference", "copy",
})


def _address_key(node: ast.Call) -> bool:
    """True when the call carries ``key=id`` / ``key=hash``."""
    for kw in node.keywords:
        if kw.arg == "key" and isinstance(kw.value, ast.Name) \
                and kw.value.id in vocab.ADDRESS_KEY_FUNCS:
            return True
    return False


class _Interp(FunctionInterp[str]):
    """Order-bit interpreter for one function."""

    def __init__(self, func: FunctionInfo, module: ModuleInfo,
                 project: Project,
                 returns_unordered: Set[str],
                 report: Optional[Callable[[ast.AST, str], None]]) -> None:
        super().__init__(func.node)
        self.info = func
        self.module = module
        self.project = project
        self.returns_unordered = returns_unordered
        self.report = report
        self.returned_unordered = False
        self._loop_stack: List[ast.For] = []

    # -- lattice -----------------------------------------------------------

    def join(self, a: str, b: str) -> str:
        return UNORDERED

    # -- expression evaluation --------------------------------------------

    def eval_expr_hook(self, node: ast.expr,
                       env: Env[str]) -> Optional[str]:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return UNORDERED
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
            left = self.eval_expr(node.left, env)
            right = self.eval_expr(node.right, env)
            if UNORDERED in (left, right):
                return UNORDERED
            return None
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            # A comprehension over an unordered iterable produces an
            # unordered sequence (and hash-order element evaluation).
            value: Optional[str] = None
            inner = dict(env)
            for gen in node.generators:
                if self.eval_expr(gen.iter, inner) == UNORDERED:
                    value = UNORDERED
                for name in _comp_names(gen.target):
                    inner.pop(name, None)
            self.eval_expr(node.elt, inner)
            return value
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if self._loop_stack and self.report is not None:
                self.report(
                    node,
                    "yield inside iteration over an unordered collection: "
                    "events reach the engine in set/hash order, which "
                    "breaks run-to-run determinism — iterate "
                    "sorted(...) instead")
            return None
        return None

    def eval_call(self, node: ast.Call, env: Env[str]) -> Optional[str]:
        raw = dotted_name(node.func)
        arg_values = [self.eval_expr(a, env) for a in node.args]
        self._check_sink(node, raw, arg_values, env)
        if raw is None:
            return None
        tail = raw.split(".")[-1]
        if raw in ("set", "frozenset"):
            return UNORDERED
        if raw in vocab.UNORDERED_CALLS or tail in ("listdir", "scandir",
                                                    "iglob"):
            return UNORDERED
        if raw in ("sorted", "min", "max"):
            if _address_key(node):
                if self.report is not None:
                    self.report(
                        node,
                        f"{raw}(..., key={_key_name(node)}) orders by "
                        f"object address/hash — an unstable order; key "
                        f"on a deterministic field instead")
                return UNORDERED
            return None  # launders the order bit
        if raw in _PRESERVING and arg_values:
            return arg_values[0] if arg_values[0] == UNORDERED else None
        if "." in raw:
            receiver = raw.rsplit(".", 1)[0]
            if tail in _SET_PRODUCING_METHODS \
                    and env.get(receiver) == UNORDERED:
                return UNORDERED
            if tail == "sort" and _address_key(node):
                # lst.sort(key=id): the list itself becomes address-ordered.
                env[receiver.split(".")[0]] = UNORDERED
                if self.report is not None:
                    self.report(
                        node,
                        f".sort(key={_key_name(node)}) orders by object "
                        f"address/hash — an unstable order")
                return None
        callee = self._callee_for(node, raw)
        if callee is not None and callee in self.returns_unordered:
            return UNORDERED
        return None

    # -- loops and sinks ---------------------------------------------------

    def enter_loop(self, node: ast.For, iter_value: Optional[str]) -> None:
        if iter_value == UNORDERED:
            self._loop_stack.append(node)

    def exit_loop(self, node: ast.For) -> None:
        if self._loop_stack and self._loop_stack[-1] is node:
            self._loop_stack.pop()

    def on_return(self, node: ast.Return, value: Optional[str],
                  env: Env[str]) -> None:
        if value == UNORDERED:
            self.returned_unordered = True

    def _check_sink(self, node: ast.Call, raw: Optional[str],
                    arg_values: List[Optional[str]],
                    env: Env[str]) -> None:
        if self.report is None or raw is None:
            return
        tail = raw.split(".")[-1]
        is_sink = (("." in raw and tail in vocab.ORDER_SINK_METHODS)
                   or tail in vocab.ORDER_SINK_CALLS)
        if not is_sink:
            return
        if self._loop_stack:
            self.report(
                node,
                f"sim-visible sink {tail}() called inside iteration over "
                f"an unordered collection: results depend on set/hash "
                f"order — iterate sorted(...) so every worker count "
                f"replays the same event order")
            return
        kw_values = [self.eval_expr(kw.value, env) for kw in node.keywords]
        if UNORDERED in arg_values or UNORDERED in kw_values:
            self.report(
                node,
                f"unordered collection passed to sim-visible sink "
                f"{tail}(): its serialization order depends on "
                f"PYTHONHASHSEED — sort it first")

    def _callee_for(self, node: ast.Call, raw: str) -> Optional[str]:
        for site in self.info.calls:
            if site.line == node.lineno and site.col == node.col_offset + 1 \
                    and site.raw == raw:
                return site.callee
        return None


def _comp_names(target: ast.expr) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: List[str] = []
        for elt in target.elts:
            out.extend(_comp_names(elt))
        return out
    return []


def _key_name(node: ast.Call) -> str:
    for kw in node.keywords:
        if kw.arg == "key" and isinstance(kw.value, ast.Name):
            return kw.value.id
    return "id"


def run(project: Project, add: Callable[[Diagnostic], None]) -> None:
    """Run the pack: summary fixpoint, then one reporting pass."""
    returns_unordered: Set[str] = set()
    for _ in range(3):  # summaries stabilize in <=3 passes in practice
        changed = False
        for func in project.functions.values():
            if func.qual in returns_unordered:
                continue
            module = project.function_module(func)
            interp = _Interp(func, module, project, returns_unordered,
                             report=None)
            interp.run()
            if interp.returned_unordered:
                returns_unordered.add(func.qual)
                changed = True
        if not changed:
            break

    for func in project.functions.values():
        module = project.function_module(func)
        seen: Set[Tuple[int, int, str]] = set()

        def report(node: ast.AST, message: str,
                   _module: ModuleInfo = module) -> None:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0) + 1
            key = (line, col, message)
            if key in seen:
                return  # joined branch/loop passes re-evaluate expressions
            seen.add(key)
            add(Diagnostic(rule="flow-determinism", path=_module.display,
                           line=line, col=col, message=message))

        _Interp(func, module, project, returns_unordered, report).run()
