"""``flow-engine``: host effects *reachable* from engine processes.

The per-file ``engine-discipline`` rule flags a blocking call written
directly inside a generator body.  That guard is trivially defeated by
one helper function: ``def proc(): yield ...; _flush()`` where
``_flush`` calls ``time.sleep``.  This pack lifts the rule to
reachability over the project call graph: starting from every generator
function (engine processes and hook bodies are generators), walk
resolved call edges up to ``--flow-depth`` frames and report any
wall-clock read, blocking primitive, or global-random call found along
the way — with the full call chain in the message, anchored at the call
site inside the generator so one suppression covers one chain.

Per-category vocabulary allowances apply at the module that *contains*
the offending call (``repro/perf`` may read the host clock; only
``repro/sim/rng.py`` may touch ``random``), so the sanctioned routes
never light up no matter who reaches them.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Set, Tuple

from .. import vocabulary as vocab
from ..diagnostics import Diagnostic
from .project import CallSite, FunctionInfo, Project

#: (category, human label) — categories index the allowance tables.
_WALLCLOCK = "wallclock"
_BLOCKING = "blocking"
_RANDOM = "global-random"

#: Default traversal depth; chains deeper than this are in practice
#: either false edges or code that needs restructuring anyway.
DEFAULT_DEPTH = 10


def _bad_calls(project: Project,
               func: FunctionInfo) -> List[Tuple[str, str, int]]:
    """(category, raw name, line) for host-effect calls in ``func``."""
    module = project.function_module(func)
    out: List[Tuple[str, str, int]] = []
    wallclock_ok = vocab.path_matches(module.posix,
                                      vocab.WALLCLOCK_ALLOWED_PATHS)
    random_ok = vocab.path_matches(module.posix, vocab.RANDOM_ALLOWED_PATHS)
    for site in func.calls:
        raw = site.raw
        if raw in vocab.WALLCLOCK_CALLS:
            if not wallclock_ok:
                out.append((_WALLCLOCK, raw, site.line))
        elif raw in vocab.BLOCKING_CALLS:
            out.append((_BLOCKING, raw, site.line))
        elif (raw.startswith("random.") or raw.startswith("numpy.random.")
              or raw.startswith("np.random.")):
            if not random_ok:
                out.append((_RANDOM, raw, site.line))
    return out


def run(project: Project, add: Callable[[Diagnostic], None],
        depth: int = DEFAULT_DEPTH) -> None:
    """BFS from every generator over the call graph; report reachable
    host effects at the generator's own call site."""
    bad_by_func: Dict[str, List[Tuple[str, str, int]]] = {}
    for qual, func in project.functions.items():
        bad = _bad_calls(project, func)
        if bad:
            bad_by_func[qual] = bad

    for root_qual, root in project.functions.items():
        if not root.generator:
            continue
        root_module = project.function_module(root)
        # BFS with shortest-chain bookkeeping.  ``origin`` is the call
        # site *inside the root* that begins each chain — that is where
        # the diagnostic (and any suppression) lands.
        seen: Set[str] = {root_qual}
        queue: Deque[Tuple[str, CallSite, List[str], int]] = deque()
        for site in root.calls:
            if site.callee is not None and site.callee != root_qual:
                queue.append((site.callee, site, [site.raw], 1))
        reported: Set[Tuple[str, str]] = set()
        while queue:
            qual, origin, chain, d = queue.popleft()
            if qual in seen or d > depth:
                continue
            seen.add(qual)
            for category, raw, line in bad_by_func.get(qual, ()):
                key = (qual, raw)
                if key in reported:
                    continue
                reported.add(key)
                target = project.functions[qual]
                target_module = project.function_module(target)
                path = " -> ".join(chain)
                add(Diagnostic(
                    rule="flow-engine", path=root_module.display,
                    line=origin.line, col=origin.col,
                    message=(
                        f"{category} call {raw}() is reachable from "
                        f"engine process {root.name!r} via {path} "
                        f"({target_module.display}:{line}, depth {d}): "
                        f"model the effect with sim primitives or break "
                        f"the call out of the handler path")))
            func = project.functions[qual]
            for site in func.calls:
                if site.callee is not None and site.callee not in seen:
                    queue.append((site.callee, origin,
                                  chain + [site.raw], d + 1))
