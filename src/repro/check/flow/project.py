"""Project index: modules, functions, imports, and the call graph.

The flow analyses are *whole-program*: they need to know which function a
call site reaches, which module a name was imported from, and which
functions are generator bodies (engine processes).  This module builds
that picture once per run, from ``ast`` alone — linted code is never
imported, so the analyzer works on broken or dependency-missing trees,
exactly like the per-file rules.

Resolution strategy (documented in DESIGN.md §6.1):

* **module-level names** — resolved exactly through the module's own
  ``import`` / ``from .. import`` statements (including relative
  imports) and module-level ``def`` / ``class`` statements;
* **``self.method()``** — resolved to the enclosing class's own method
  when it exists, else by the unique-name rule below;
* **``obj.method()``** — resolved only when exactly one project function
  has that method name (the *unique-name rule*).  Ambiguous method names
  produce no edge: the call graph is deliberately an
  under-approximation, so reachability findings are high-confidence at
  the cost of missing dynamically-dispatched paths.

Every call site also keeps the dotted name *as written* (``time.time``,
``random.shuffle``); the rule packs match those raw names against the
vocabulary's call deny-lists for externals the graph cannot resolve.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..diagnostics import Suppressions, parse_suppressions


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def own_statements(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's body without descending into nested defs."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def is_generator(func: ast.AST) -> bool:
    """True when the function's own body yields (an engine process)."""
    return any(isinstance(node, (ast.Yield, ast.YieldFrom))
               for node in own_statements(func))


@dataclass
class CallSite:
    """One call expression inside a function's own body."""

    raw: str                      # dotted name as written at the call site
    callee: Optional[str]         # resolved project function qual, or None
    line: int
    col: int


@dataclass
class FunctionInfo:
    """One function or method in the project."""

    qual: str                     # "repro.sim.engine.Simulator.run"
    module: str
    name: str
    class_name: Optional[str]
    node: ast.AST                 # FunctionDef / AsyncFunctionDef
    line: int
    params: List[str]
    generator: bool
    calls: List[CallSite] = field(default_factory=list)


@dataclass
class ModuleInfo:
    """One parsed source file."""

    name: str                     # dotted module name ("repro.sim.engine")
    path: Path
    display: str                  # path as reported in diagnostics
    posix: str                    # resolved POSIX path (vocabulary matching)
    source: str
    tree: ast.Module
    #: local scope: name -> ("module", dotted) | ("symbol", dotted)
    scope: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    functions: List[FunctionInfo] = field(default_factory=list)
    suppressions: Suppressions = field(default_factory=Suppressions)
    syntax_error: Optional[Tuple[int, int, str]] = None


class Project:
    """The whole-program index the flow packs analyze."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: method/function name -> quals defining it (unique-name rule)
        self.by_name: Dict[str, List[str]] = {}
        self.digest: str = ""

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, files: Sequence[Path],
              cache_path: Optional[Path] = None) -> "Project":
        """Parse ``files`` and build the call graph.

        When ``cache_path`` holds a previous :meth:`export` whose source
        digest matches, call-site resolution is reused from the cache
        (the CI job caches this between runs); ASTs are always re-parsed
        because the dataflow packs walk them directly.
        """
        project = cls()
        digests: List[str] = []
        for path in files:
            try:
                source = path.read_text(encoding="utf-8")
            except OSError:
                continue
            name = module_name_for(path)
            digests.append(name + ":"
                           + hashlib.sha256(source.encode()).hexdigest())
            posix = path.resolve().as_posix()
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as exc:
                stub = ast.Module(body=[], type_ignores=[])
                info = ModuleInfo(name=name, path=path, display=str(path),
                                  posix=posix, source=source, tree=stub)
                info.syntax_error = (exc.lineno or 1, (exc.offset or 0) + 1,
                                     exc.msg or "invalid syntax")
                project.modules[name] = info
                continue
            info = ModuleInfo(name=name, path=path, display=str(path),
                              posix=posix, source=source, tree=tree,
                              suppressions=parse_suppressions(source))
            project.modules[name] = info
        project.digest = hashlib.sha256(
            "\n".join(sorted(digests)).encode()).hexdigest()

        for info in project.modules.values():
            _index_module(project, info)
        for info in project.modules.values():
            _collect_functions(project, info)

        cached = _load_cache(cache_path, project.digest)
        if cached is not None:
            _apply_cached_calls(project, cached)
        else:
            for func in project.functions.values():
                _resolve_calls(project, func)
        return project

    # -- queries -----------------------------------------------------------

    def function_module(self, func: FunctionInfo) -> ModuleInfo:
        return self.modules[func.module]

    def unique_by_name(self, name: str) -> Optional[str]:
        quals = self.by_name.get(name, [])
        return quals[0] if len(quals) == 1 else None

    # -- export / cache ----------------------------------------------------

    def export(self) -> Dict[str, object]:
        """JSON-able call graph (``--call-graph-out`` / the CI cache)."""
        functions = {}
        for qual, func in sorted(self.functions.items()):
            functions[qual] = {
                "module": func.module,
                "line": func.line,
                "generator": func.generator,
                "calls": [{"raw": c.raw, "callee": c.callee,
                           "line": c.line, "col": c.col}
                          for c in func.calls],
            }
        return {
            "digest": self.digest,
            "modules": sorted(self.modules),
            "functions": functions,
        }


def module_name_for(path: Path) -> str:
    """Dotted module name for a file, anchored at ``src/`` when present.

    ``.../src/repro/sim/engine.py`` -> ``repro.sim.engine``;
    ``.../tests/test_x.py`` -> ``tests.test_x``; everything else uses
    the path's trailing components so names stay unique per run.
    """
    parts = list(path.resolve().with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for anchor in ("src",):
        if anchor in parts:
            idx = len(parts) - 1 - parts[::-1].index(anchor)
            return ".".join(parts[idx + 1:]) or parts[-1]
    if "tests" in parts:
        idx = len(parts) - 1 - parts[::-1].index("tests")
        return ".".join(parts[idx:])
    return ".".join(parts[-2:]) if len(parts) >= 2 else parts[-1]


def _package_of(module: str, path: Path) -> str:
    """The package a module's relative imports resolve against."""
    if path.name == "__init__.py":
        return module
    return module.rsplit(".", 1)[0] if "." in module else ""


def _index_module(project: Project, info: ModuleInfo) -> None:
    """Fill the module's import scope and top-level definition names."""
    package = _package_of(info.name, info.path)
    for node in info.tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    info.scope[alias.asname] = ("module", alias.name)
                else:
                    root = alias.name.split(".")[0]
                    info.scope[root] = ("module", root)
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                up = package.split(".") if package else []
                if node.level > 1:
                    up = up[:len(up) - (node.level - 1)]
                base = ".".join(up + ([node.module] if node.module else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                info.scope[bound] = ("symbol", f"{base}.{alias.name}")
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.scope[node.name] = ("symbol", f"{info.name}.{node.name}")
        elif isinstance(node, ast.ClassDef):
            info.scope[node.name] = ("symbol", f"{info.name}.{node.name}")


def _collect_functions(project: Project, info: ModuleInfo) -> None:
    """Register every function/method of a module (no nested defs)."""
    def add(node: ast.AST, class_name: Optional[str]) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        scope = f"{info.name}.{class_name}" if class_name else info.name
        qual = f"{scope}.{node.name}"
        args = node.args
        params = [a.arg for a in (args.posonlyargs + args.args)]
        if args.vararg:
            params.append(args.vararg.arg)
        params.extend(a.arg for a in args.kwonlyargs)
        func = FunctionInfo(qual=qual, module=info.name, name=node.name,
                            class_name=class_name, node=node,
                            line=node.lineno, params=params,
                            generator=is_generator(node))
        project.functions[qual] = func
        project.by_name.setdefault(node.name, []).append(qual)
        info.functions.append(func)

    for node in info.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            add(node, None)
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    add(sub, node.name)


#: Method names too generic for the unique-name rule even when the
#: project happens to define them exactly once today: resolving them by
#: name alone would couple the graph to unrelated stdlib/duck-typed
#: calls (``fh.read()``, ``q.get()``, ``cb()``...).
_AMBIGUOUS_NAMES = frozenset({
    "get", "set", "add", "put", "pop", "read", "write", "run", "start",
    "stop", "close", "open", "send", "next", "update", "copy", "clear",
    "append", "items", "keys", "values", "join", "split", "format",
})


def _resolve_call(project: Project, info: ModuleInfo,
                  func: FunctionInfo, raw: str) -> Optional[str]:
    parts = raw.split(".")
    head, rest = parts[0], parts[1:]

    if head == "self" and func.class_name is not None:
        if len(rest) == 1:
            own = f"{info.name}.{func.class_name}.{rest[0]}"
            if own in project.functions:
                return own
        # fall through to the unique-name rule on the method name

    if not rest:
        entry = info.scope.get(head)
        if entry is not None:
            kind, target = entry
            return _as_function(project, target)
        return None

    entry = info.scope.get(head)
    if entry is not None:
        kind, target = entry
        candidate = _as_function(project, target + "." + ".".join(rest))
        if candidate is not None:
            return candidate
    # obj.method() — the unique-name rule on the method name.
    method = parts[-1]
    if method in _AMBIGUOUS_NAMES or method.startswith("__"):
        return None
    return project.unique_by_name(method)


def _as_function(project: Project, target: str) -> Optional[str]:
    """Resolve a dotted target to a project function qual, if any.

    ``mod.func`` resolves directly; ``mod.Class`` resolves to its
    ``__init__``; ``pkg`` re-exports (``from .linter import lint_file``
    imported as ``pkg.lint_file``) chase one level of symbol scope.
    """
    if target in project.functions:
        return target
    init = target + ".__init__"
    if init in project.functions:
        return init
    module, _, name = target.rpartition(".")
    info = project.modules.get(module)
    if info is not None and name in info.scope:
        kind, chained = info.scope[name]
        if chained != target and chained in project.functions:
            return chained
        chained_init = chained + ".__init__"
        if chained_init in project.functions:
            return chained_init
    return None


def _resolve_calls(project: Project, func: FunctionInfo) -> None:
    info = project.function_module(func)
    for node in own_statements(func.node):
        if not isinstance(node, ast.Call):
            continue
        raw = dotted_name(node.func)
        if raw is None:
            continue
        callee = _resolve_call(project, info, func, raw)
        if callee == func.qual:
            callee_entry: Optional[str] = callee  # self-recursion kept
        else:
            callee_entry = callee
        func.calls.append(CallSite(raw=raw, callee=callee_entry,
                                   line=node.lineno,
                                   col=node.col_offset + 1))


def _load_cache(cache_path: Optional[Path],
                digest: str) -> Optional[Dict[str, object]]:
    if cache_path is None or not cache_path.exists():
        return None
    try:
        data = json.loads(cache_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict) or data.get("digest") != digest:
        return None
    return data


def _apply_cached_calls(project: Project, data: Dict[str, object]) -> None:
    functions = data.get("functions")
    if not isinstance(functions, dict):
        return
    for qual, func in project.functions.items():
        entry = functions.get(qual)
        if not isinstance(entry, dict):
            continue
        func.calls = [
            CallSite(raw=c["raw"], callee=c["callee"],
                     line=c["line"], col=c["col"])
            for c in entry.get("calls", [])
        ]


def save_call_graph(project: Project, path: Path) -> None:
    """Write the call graph (``--call-graph-out`` and the CI cache)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(project.export(), indent=2) + "\n",
                    encoding="utf-8")
