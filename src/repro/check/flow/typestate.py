"""``flow-typestate``: static buffer/chunk lifecycle checking.

The runtime sanitizer (:mod:`repro.check.sanitizer`) catches lifecycle
violations a test happens to *execute*.  This pack is its static
companion: it tracks handle-shaped locals (chunks, buffers, departing
datagrams) through the states fresh → pinned → substituted → evicted
across statements and — via call summaries — across function
boundaries, and reports:

* **use-after-evict** — a lifecycle method invoked on (or the handle
  passed to a using function after) an evict transition;
* **double-substitution** — one handle flowing through a substitution
  point twice on one path;
* **evicted-twice** — two evict transitions on the same handle;
* **leak-on-early-return** — a path that pins a purely-local handle and
  returns without unpinning it (the static shape of the sanitizer's
  "still pinned at simulation end" leak).

The analysis is a *must* analysis: facts survive a branch join only when
both arms agree, so every report is a definite path, not a maybe.
Handles that escape (stored into attributes/containers, passed to calls
the tables do not describe, yielded or returned) drop out of leak
checking — ownership transfer is legal and common.
"""

from __future__ import annotations

import ast
import enum
from typing import Callable, Dict, Optional, Set, Tuple

from .. import vocabulary as vocab
from ..diagnostics import Diagnostic
from .dataflow import Env, FunctionInterp
from .project import FunctionInfo, ModuleInfo, Project, dotted_name


class TState(enum.Enum):
    """Abstract lifecycle state of one tracked handle."""

    PINNED = "pinned"
    SUBSTITUTED = "substituted"
    EVICTED = "evicted"


@enum.unique
class ParamEffect(enum.Enum):
    """What a function does to one of its parameters (its summary)."""

    EVICTS = "evicts"
    USES = "uses"


#: qual -> {param index -> effect}
Summaries = Dict[str, Dict[int, ParamEffect]]


class _Interp(FunctionInterp[TState]):
    """Typestate interpreter for one function."""

    def __init__(self, func: FunctionInfo, module: ModuleInfo,
                 project: Project, summaries: Summaries,
                 report: Optional[Callable[[ast.AST, str], None]]) -> None:
        super().__init__(func.node)
        self.info = func
        self.module = module
        self.project = project
        self.summaries = summaries
        self.report = report
        #: vars pinned by this function's own ``x.pin()`` calls
        self.pinned_here: Set[str] = set()
        #: vars whose ownership left this function (no leak checking)
        self.escaped: Set[str] = set()
        #: effects this function applies to its own parameters
        self.param_effects: Dict[int, ParamEffect] = {}
        self._params = list(func.params)
        self._reported: Set[Tuple[int, int, str]] = set()

    # -- lattice (must-analysis) ------------------------------------------

    def join(self, a: TState, b: TState) -> TState:
        return a  # only called for equal values; see join_envs

    def join_envs(self, a: Env[TState], b: Env[TState]) -> Env[TState]:
        # Keep only facts both arms agree on: reports are definite paths.
        return {k: v for k, v in a.items() if b.get(k) is v}

    # -- reporting ---------------------------------------------------------

    def _diag(self, node: ast.AST, message: str) -> None:
        if self.report is None:
            return
        key = (getattr(node, "lineno", 1),
               getattr(node, "col_offset", 0), message)
        if key in self._reported:
            return  # loop bodies are analyzed twice
        self._reported.add(key)
        self.report(node, message)

    def _note_param_effect(self, name: str, effect: ParamEffect) -> None:
        if name in self._params:
            index = self._params.index(name)
            # EVICTS dominates USES: callers care about the strongest.
            if self.param_effects.get(index) is not ParamEffect.EVICTS:
                self.param_effects[index] = effect

    # -- transitions -------------------------------------------------------

    def eval_call(self, node: ast.Call,
                  env: Env[TState]) -> Optional[TState]:
        raw = dotted_name(node.func)
        for arg in node.args:
            self.eval_expr(arg, env)
        for kw in node.keywords:
            self.eval_expr(kw.value, env)
        if raw is None:
            self._escape_args(node, env, consumed=())
            return None
        tail = raw.split(".")[-1]
        receiver = raw.rsplit(".", 1)[0] if "." in raw else None
        consumed: Tuple[str, ...] = ()

        if receiver is not None and "." not in receiver:
            state = env.get(receiver)
            if tail in vocab.TYPESTATE_USE_METHODS:
                self._note_param_effect(receiver, ParamEffect.USES)
                if state is TState.EVICTED:
                    self._diag(node, f"use-after-evict: .{tail}() on "
                                     f"{receiver!r} after it was evicted "
                                     f"on this path")
            if tail in vocab.TYPESTATE_PIN_METHODS:
                env[receiver] = TState.PINNED
                self.pinned_here.add(receiver)
            elif tail in vocab.TYPESTATE_UNPIN_METHODS:
                if state is TState.PINNED:
                    env.pop(receiver, None)
                    self.pinned_here.discard(receiver)

        if tail in vocab.TYPESTATE_EVICT_ARG_METHODS:
            for arg in node.args:
                if isinstance(arg, ast.Name):
                    consumed += (arg.id,)
                    self._note_param_effect(arg.id, ParamEffect.EVICTS)
                    if env.get(arg.id) is TState.EVICTED:
                        self._diag(node, f"{arg.id!r} evicted twice on "
                                         f"this path (.{tail}())")
                    env[arg.id] = TState.EVICTED
        elif tail in vocab.TYPESTATE_SUBSTITUTE_ARG_METHODS \
                or (tail.startswith("substitute")
                    and tail != "substitute_miss") \
                or tail == "_substitute":
            for arg in node.args:
                if isinstance(arg, ast.Name):
                    consumed += (arg.id,)
                    self._note_param_effect(arg.id, ParamEffect.USES)
                    state = env.get(arg.id)
                    if state is TState.SUBSTITUTED:
                        self._diag(
                            node,
                            f"double substitution: {arg.id!r} already "
                            f"flowed through a substitution point on "
                            f"this path — each placeholder chain "
                            f"resolves exactly once per reply")
                    elif state is TState.EVICTED:
                        self._diag(
                            node,
                            f"use-after-evict: {arg.id!r} substituted "
                            f"after it was evicted on this path")
                    env[arg.id] = TState.SUBSTITUTED
        else:
            consumed += self._apply_summary(node, raw, env)

        self._escape_args(node, env, consumed)
        return None

    def _apply_summary(self, node: ast.Call, raw: str,
                       env: Env[TState]) -> Tuple[str, ...]:
        """Apply the callee's parameter-effect summary at this site."""
        callee_qual = None
        for site in self.info.calls:
            if site.line == node.lineno \
                    and site.col == node.col_offset + 1 and site.raw == raw:
                callee_qual = site.callee
                break
        if callee_qual is None:
            return ()
        effects = self.summaries.get(callee_qual)
        if not effects:
            return ()
        callee = self.project.functions[callee_qual]
        offset = 0
        if callee.class_name is not None and callee.params \
                and callee.params[0] in ("self", "cls") and "." in raw:
            offset = 1  # obj.m(a): a is the callee's second parameter
        consumed: Tuple[str, ...] = ()
        for i, arg in enumerate(node.args):
            if not isinstance(arg, ast.Name):
                continue
            effect = effects.get(i + offset)
            if effect is None:
                continue
            consumed += (arg.id,)
            state = env.get(arg.id)
            if effect is ParamEffect.EVICTS:
                self._note_param_effect(arg.id, ParamEffect.EVICTS)
                if state is TState.EVICTED:
                    self._diag(node, f"{arg.id!r} evicted twice on this "
                                     f"path ({raw}() evicts it)")
                env[arg.id] = TState.EVICTED
            elif effect is ParamEffect.USES:
                self._note_param_effect(arg.id, ParamEffect.USES)
                if state is TState.EVICTED:
                    self._diag(
                        node,
                        f"use-after-evict: {arg.id!r} was evicted on "
                        f"this path, then passed to {raw}() which uses "
                        f"it")
        return consumed

    def _escape_args(self, node: ast.Call, env: Env[TState],
                     consumed: Tuple[str, ...]) -> None:
        """Handles passed to calls the tables don't describe escape."""
        for arg in node.args:
            if isinstance(arg, ast.Name) and arg.id not in consumed:
                self.escaped.add(arg.id)
        for kw in node.keywords:
            if isinstance(kw.value, ast.Name):
                self.escaped.add(kw.value.id)

    # -- escapes through data structure / control flow ---------------------

    def eval_expr_hook(self, node: ast.expr,
                       env: Env[TState]) -> Optional[TState]:
        if isinstance(node, (ast.Tuple, ast.List, ast.Dict, ast.Set)):
            for child in ast.walk(node):
                if isinstance(child, ast.Name):
                    self.escaped.add(child.id)
            return None
        if isinstance(node, (ast.Yield, ast.YieldFrom)) \
                and isinstance(node.value, ast.Name):
            # Record the escape only; the base interpreter descends into
            # the yielded value itself (evaluating it here too would run
            # every call's transition twice).
            self.escaped.add(node.value.id)
        return None

    def on_assign(self, stmt: ast.Assign, env: Env[TState]) -> None:
        for target in stmt.targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)) \
                    and isinstance(stmt.value, ast.Name):
                self.escaped.add(stmt.value.id)

    # -- leak-on-early-return ----------------------------------------------

    def on_return(self, node: ast.Return, value: Optional[TState],
                  env: Env[TState]) -> None:
        returned: Set[str] = set()
        if node.value is not None:
            for child in ast.walk(node.value):
                if isinstance(child, ast.Name):
                    returned.add(child.id)
        self._check_leaks(node, env, returned)

    def on_func_exit(self, env: Env[TState]) -> None:
        self._check_leaks(self.func, env, set())

    def _check_leaks(self, node: ast.AST, env: Env[TState],
                     returned: Set[str]) -> None:
        for name, state in sorted(env.items()):
            if state is not TState.PINNED:
                continue
            if name not in self.pinned_here or name in self.escaped \
                    or name in returned or name in self._params:
                continue
            self._diag(node,
                       f"leak on early return: {name!r} is still pinned "
                       f"on this path and never escapes — unpin it "
                       f"before returning (the sanitizer would report "
                       f"it as pinned-at-end)")


def run(project: Project, add: Callable[[Diagnostic], None]) -> None:
    """Run the pack: summary fixpoint, then one reporting pass."""
    summaries: Summaries = {}
    for _ in range(3):
        changed = False
        for func in project.functions.values():
            module = project.function_module(func)
            interp = _Interp(func, module, project, summaries, report=None)
            interp.run()
            if interp.param_effects and \
                    summaries.get(func.qual) != interp.param_effects:
                summaries[func.qual] = interp.param_effects
                changed = True
        if not changed:
            break

    for func in project.functions.values():
        module = project.function_module(func)

        def report(node: ast.AST, message: str,
                   _module: ModuleInfo = module) -> None:
            add(Diagnostic(rule="flow-typestate", path=_module.display,
                           line=getattr(node, "lineno", 1),
                           col=getattr(node, "col_offset", 0) + 1,
                           message=message))

        _Interp(func, module, project, summaries, report).run()
