"""``vocab-drift``: trace/metric name literals vs the declared sets.

The ``trace-naming`` rule checks the *shape* of a name at each emit
site; nothing checked that the set of names actually emitted matches
the vocabulary the docs and analyses are written against.  This pack
closes the loop in both directions:

* **emit-without-declare** — a literal (or f-string prefix) passed to a
  TraceBus emit / MetricsRegistry declaration that is not in
  ``DECLARED_TRACE_EVENTS`` / ``DECLARED_METRICS`` and under none of the
  ``DYNAMIC_NAME_PREFIXES`` families;
* **declare-without-emit** — a declared name no ``repro.*`` module
  emits any more (reported at its line in ``vocabulary.py``, so the
  stale entry is one click away).

Only ``repro.*`` modules contribute emit sites: tests mint throwaway
names freely.  Metric *reads* (``registry.get(name)``) do not declare.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Set, Tuple

from .. import vocabulary as vocab
from ..diagnostics import Diagnostic
from .project import ModuleInfo, Project

#: Emit/declare sites: method name -> which declared set it belongs to.
_TRACE_METHODS = vocab.TRACE_EMIT_METHODS
_METRIC_METHODS = vocab.METRIC_DECL_METHODS


def _discovered(project: Project) -> Tuple[
        Dict[str, Tuple[ModuleInfo, ast.AST]],
        Dict[str, Tuple[ModuleInfo, ast.AST]],
        Set[str]]:
    """Literal names (and f-string prefixes) at every emit site."""
    events: Dict[str, Tuple[ModuleInfo, ast.AST]] = {}
    metrics: Dict[str, Tuple[ModuleInfo, ast.AST]] = {}
    prefixes: Set[str] = set()
    for info in project.modules.values():
        if not info.name.startswith("repro."):
            continue
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr in _TRACE_METHODS:
                table = events
            elif func.attr in _METRIC_METHODS:
                table = metrics
            else:
                continue
            first = node.args[0]
            if isinstance(first, ast.Constant) \
                    and isinstance(first.value, str):
                name = first.value
                if vocab.NAME_RE.match(name):
                    table.setdefault(name, (info, node))
            elif isinstance(first, ast.JoinedStr) and first.values:
                head = first.values[0]
                if isinstance(head, ast.Constant) \
                        and isinstance(head.value, str) \
                        and "." in head.value:
                    prefixes.add(head.value)
    return events, metrics, prefixes


def _declared_line(name: str, vocab_module: ModuleInfo) -> int:
    """Line of ``name``'s literal inside vocabulary.py (1 if missing)."""
    needle = f'"{name}"'
    for lineno, line in enumerate(vocab_module.source.splitlines(), 1):
        if needle in line:
            return lineno
    return 1


def _under_family(name: str) -> bool:
    return any(name.startswith(prefix)
               for prefix in vocab.DYNAMIC_NAME_PREFIXES)


def run(project: Project, add: Callable[[Diagnostic], None]) -> None:
    """Run the pack: cross-check emit sites against the declared sets."""
    events, metrics, prefixes = _discovered(project)

    for kind, table, declared in (
            ("trace event", events, vocab.DECLARED_TRACE_EVENTS),
            ("metric", metrics, vocab.DECLARED_METRICS)):
        for name, (info, node) in sorted(table.items()):
            if name in declared or _under_family(name):
                continue
            add(Diagnostic(
                rule="vocab-drift", path=info.display,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                message=(f"emit-without-declare: {kind} {name!r} is not "
                         f"in the declared vocabulary — add it to "
                         f"repro.check.vocabulary or fix the name")))

    # Dynamic f-string prefixes must sit under a declared family.
    for prefix in sorted(prefixes):
        if _under_family(prefix):
            continue
        # Attribute the finding to every module using the prefix would
        # be noisy; the first discovered site is representative.
        for info in project.modules.values():
            if not info.name.startswith("repro."):
                continue
            for lineno, line in enumerate(info.source.splitlines(), 1):
                if f'f"{prefix}' in line or f"f'{prefix}" in line:
                    add(Diagnostic(
                        rule="vocab-drift", path=info.display,
                        line=lineno, col=1,
                        message=(
                            f"emit-without-declare: dynamic name prefix "
                            f"{prefix!r} is under no declared family in "
                            f"repro.check.vocabulary.DYNAMIC_NAME_PREFIXES"
                        )))
                    break
            else:
                continue
            break

    vocab_module = None
    for info in project.modules.values():
        if info.name == "repro.check.vocabulary":
            vocab_module = info
            break
    if vocab_module is None:
        return  # vocabulary not in the analyzed set: one direction only
    for kind, table, declared in (
            ("trace event", events, vocab.DECLARED_TRACE_EVENTS),
            ("metric", metrics, vocab.DECLARED_METRICS)):
        for name in sorted(declared):
            if name in table:
                continue
            add(Diagnostic(
                rule="vocab-drift", path=vocab_module.display,
                line=_declared_line(name, vocab_module), col=1,
                message=(f"declare-without-emit: {kind} {name!r} is "
                         f"declared but no repro.* module emits it — "
                         f"delete the stale entry")))
