"""ncache-lint driver: walk files, run rules, apply suppressions.

The driver is filesystem-only (no imports of linted code).  Suppressed
diagnostics are kept — with ``suppressed=True`` — so reports can show
how many annotations the tree carries; only *unsuppressed* diagnostics
make :func:`LintResult.ok` false.
"""

from __future__ import annotations

import ast
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .diagnostics import Diagnostic, Suppressions, parse_suppressions
from .rules import Rule, all_rules, make_context


@dataclass
class LintResult:
    """Outcome of one lint run."""

    files_checked: int = 0
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def active(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if not d.suppressed]

    @property
    def suppressed(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.suppressed]

    @property
    def ok(self) -> bool:
        return not self.active

    def by_rule(self) -> Dict[str, List[Diagnostic]]:
        out: Dict[str, List[Diagnostic]] = {}
        for diag in self.diagnostics:
            out.setdefault(diag.rule, []).append(diag)
        return out


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for path in paths:
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            out.append(path)
    seen = set()
    unique = []
    for path in out:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def stale_ignore_diagnostics(display: str, suppressions: Suppressions,
                             run_ids: Iterable[str],
                             used: Iterable[Tuple[int, str]]
                             ) -> List[Diagnostic]:
    """``stale-ignore`` diagnostics for suppressions that silenced nothing.

    Judged per rule id, and only for ids in ``run_ids`` (a suppression
    for a rule that did not run this invocation cannot be proven stale).
    ``*`` is never judged: it is a deliberate blanket.  ``used`` holds
    the ``(line, rule)`` pairs that actually suppressed a diagnostic.
    """
    used_set = set(used)
    ran = set(run_ids)
    out: List[Diagnostic] = []
    for line, ids in sorted(suppressions.by_line.items()):
        for rule_id in sorted(ids):
            if rule_id == "*" or rule_id not in ran:
                continue
            if (line, rule_id) in used_set:
                continue
            out.append(Diagnostic(
                rule="stale-ignore", path=display, line=line, col=1,
                message=(f"suppression 'check: ignore[{rule_id}]' no "
                         f"longer matches any diagnostic on this line — "
                         f"delete it (or rerun without --no-stale-ignores "
                         f"after confirming)"),
                suppressed=suppressions.covers("stale-ignore", line)))
    return out


def lint_file(path: Path, rules: Optional[Sequence[Rule]] = None,
              stale_ignores: bool = True) -> List[Diagnostic]:
    """Run every rule over one file, marking suppressed diagnostics."""
    rules = list(rules) if rules is not None else all_rules()
    source = path.read_text(encoding="utf-8")
    display = str(path)
    posix = path.resolve().as_posix()
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        return [Diagnostic(rule="syntax", path=display,
                           line=exc.lineno or 1, col=(exc.offset or 0) + 1,
                           message=f"syntax error: {exc.msg}")]
    suppressions = parse_suppressions(source)
    ctx = make_context(posix, display, source, tree)
    diagnostics: List[Diagnostic] = []
    used: List[Tuple[int, str]] = []
    for rule in rules:
        for diag in rule.check(ctx):
            diag.suppressed = suppressions.covers(diag.rule, diag.line)
            if diag.suppressed:
                used.append((diag.line, diag.rule))
            diagnostics.append(diag)
    if stale_ignores:
        diagnostics.extend(stale_ignore_diagnostics(
            display, suppressions, (r.id for r in rules), used))
    diagnostics.sort(key=lambda d: (d.line, d.col, d.rule))
    return diagnostics


def changed_files(root: Path) -> Optional[List[Path]]:
    """Python files modified per ``git status`` (None if git fails)."""
    try:
        proc = subprocess.run(
            ["git", "status", "--porcelain"], cwd=root,
            capture_output=True, text=True, timeout=30, check=True)
    except (OSError, subprocess.SubprocessError):
        return None
    out: List[Path] = []
    for line in proc.stdout.splitlines():
        if len(line) < 4:
            continue
        name = line[3:].split(" -> ")[-1].strip().strip('"')
        if name.endswith(".py"):
            candidate = root / name
            if candidate.exists():
                out.append(candidate)
    return out


def lint_paths(paths: Iterable[Path],
               rules: Optional[Sequence[Rule]] = None,
               only: Optional[Iterable[Path]] = None,
               stale_ignores: bool = True) -> LintResult:
    """Lint every python file under ``paths``.

    ``only`` restricts the run to files in that set (the ``--changed``
    mode); directories in ``paths`` still define the lintable universe so
    changed files outside it (e.g. tests) are not linted by accident.
    ``stale_ignores`` controls the unused-suppression check; it is
    force-disabled when ``rules`` filters the run, since a partial run
    cannot prove a suppression unused.
    """
    result = LintResult()
    if rules is not None:
        stale_ignores = False
    restrict = None
    if only is not None:
        restrict = {p.resolve() for p in only}
    for path in iter_python_files(list(paths)):
        if restrict is not None and path.resolve() not in restrict:
            continue
        result.files_checked += 1
        result.diagnostics.extend(
            lint_file(path, rules, stale_ignores=stale_ignores))
    return result
