"""ncache-lint rules: AST checks for the repo's paper invariants.

Each rule is a registered class with an ``id`` (used in diagnostics and
``# check: ignore[...]`` comments), a one-line ``summary``, and the
``invariant`` it guards — the latter is printed by ``--list-rules`` and
quoted in DESIGN.md so every rule is traceable to the paper.

Rules work on plain ``ast`` trees; they never import the code they lint,
so the linter can run on broken or dependency-missing files.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Type

from .diagnostics import Diagnostic
from . import vocabulary as vocab


@dataclass
class LintContext:
    """Everything a rule may look at for one file."""

    posix: str                 # POSIX form of the file path (for matching)
    display: str               # path as reported in diagnostics
    source: str
    tree: ast.Module
    type_checking_lines: Set[int] = field(default_factory=set)

    def diag(self, rule: str, node: ast.AST, message: str) -> Diagnostic:
        return Diagnostic(rule=rule, path=self.display,
                          line=getattr(node, "lineno", 1),
                          col=getattr(node, "col_offset", 0) + 1,
                          message=message)


class Rule:
    """Base class; subclasses register themselves via :func:`register`."""

    id: str = ""
    summary: str = ""
    invariant: str = ""

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        raise NotImplementedError


RULES: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding one instance of the rule to the registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in RULES:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    RULES[cls.id] = cls()
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by id."""
    return [RULES[rule_id] for rule_id in sorted(RULES)]


# ---------------------------------------------------------------------------
# AST helpers
# ---------------------------------------------------------------------------

def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def type_checking_lines(tree: ast.Module) -> Set[int]:
    """Line numbers inside ``if TYPE_CHECKING:`` blocks (imports there
    are type-only and exempt from runtime import rules)."""
    lines: Set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = dotted_name(node.test)
        if test in ("TYPE_CHECKING", "typing.TYPE_CHECKING"):
            for child in node.body:
                for sub in ast.walk(child):
                    lineno = getattr(sub, "lineno", None)
                    if lineno is not None:
                        lines.add(lineno)
    return lines


def make_context(posix: str, display: str, source: str,
                 tree: ast.Module) -> LintContext:
    """Build a :class:`LintContext` with the derived line sets filled."""
    return LintContext(posix=posix, display=display, source=source,
                       tree=tree,
                       type_checking_lines=type_checking_lines(tree))


def _own_statements(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's body without descending into nested defs."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_generator(func: ast.AST) -> bool:
    return any(isinstance(node, (ast.Yield, ast.YieldFrom))
               for node in _own_statements(func))


# ---------------------------------------------------------------------------
# no-wallclock
# ---------------------------------------------------------------------------

@register
class NoWallclock(Rule):
    """Forbid host-clock reads; simulated time is ``Simulator.now``."""

    id = "no-wallclock"
    summary = "no wall-clock time inside the simulation"
    invariant = ("determinism: simulated time is Simulator.now; reading "
                 "the host clock makes runs unreproducible "
                 "(sim/engine.py determinism rules)")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        if vocab.path_matches(ctx.posix, vocab.WALLCLOCK_ALLOWED_PATHS):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in ("time", "datetime") \
                            and node.lineno not in ctx.type_checking_lines:
                        yield ctx.diag(
                            self.id, node,
                            f"import of {alias.name!r}: simulated code "
                            f"must use Simulator.now, not the host clock")
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] in (
                        "time", "datetime") \
                        and node.lineno not in ctx.type_checking_lines:
                    yield ctx.diag(
                        self.id, node,
                        f"import from {node.module!r}: simulated code "
                        f"must use Simulator.now, not the host clock")
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in vocab.WALLCLOCK_CALLS:
                    yield ctx.diag(
                        self.id, node,
                        f"wall-clock read {name}(): use the simulator's "
                        f"clock (sim.now) instead")


# ---------------------------------------------------------------------------
# no-global-random
# ---------------------------------------------------------------------------

@register
class NoGlobalRandom(Rule):
    """Forbid global random state; streams come from ``rng.substream``."""

    id = "no-global-random"
    summary = "all randomness flows through repro.sim.rng"
    invariant = ("determinism: every stochastic component takes an "
                 "injected rng.substream(seed, ...) handle; global "
                 "random state makes event order depend on import order "
                 "(sim/rng.py)")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        if vocab.path_matches(ctx.posix, vocab.RANDOM_ALLOWED_PATHS):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in ("random", "numpy.random") \
                            and node.lineno not in ctx.type_checking_lines:
                        yield ctx.diag(
                            self.id, node,
                            f"import of {alias.name!r}: take an injected "
                            f"random.Random from repro.sim.rng.substream "
                            f"(type-only imports go under TYPE_CHECKING)")
            elif isinstance(node, ast.ImportFrom):
                if node.module in ("random", "numpy.random") \
                        and node.lineno not in ctx.type_checking_lines:
                    yield ctx.diag(
                        self.id, node,
                        f"import from {node.module!r}: take an injected "
                        f"random.Random from repro.sim.rng.substream")
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                if name.startswith("random.") \
                        or name.startswith("numpy.random.") \
                        or name.startswith("np.random."):
                    yield ctx.diag(
                        self.id, node,
                        f"global-random call {name}(): derive a stream "
                        f"via repro.sim.rng.substream and pass it in")


# ---------------------------------------------------------------------------
# copy-discipline
# ---------------------------------------------------------------------------

_MATERIALIZE_METHODS = ("physical_copy", "materialize", "tobytes")


@register
class CopyDiscipline(Rule):
    """Physical payload materialization only inside the copy model."""

    id = "copy-discipline"
    summary = "physical payload copies only inside the copy model"
    invariant = ("§3.1: regular data moves by logical (key-sized) "
                 "copying — extent descriptors, never bytes; physical "
                 "materialization is legal only in repro.copymodel (the "
                 "materialize() verification-point chokepoint) / the "
                 "Payload substrate and declared metadata paths — "
                 "everything else must route through "
                 "CopyAccountant.move()")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        if vocab.path_matches(ctx.posix, vocab.COPY_MODEL_PATHS):
            return
        if vocab.path_matches(ctx.posix,
                              tuple(vocab.COPY_METADATA_PATHS)):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) \
                    and func.attr in _MATERIALIZE_METHODS:
                receiver = dotted_name(func.value)
                if receiver is not None and receiver.split(".")[-1] in (
                        "acct", "accountant"):
                    # acct.physical_copy(...) IS the CopyAccountant
                    # route: the charged, counted, traced move.
                    continue
                yield ctx.diag(
                    self.id, node,
                    f".{func.attr}() materializes payload bytes outside "
                    f"the copy model; route verification points through "
                    f"repro.copymodel.materialize() or annotate a "
                    f"metadata path with a reason")
            elif isinstance(func, ast.Name) and func.id == "bytes" \
                    and len(node.args) == 1 \
                    and not isinstance(node.args[0], ast.Constant):
                yield ctx.diag(
                    self.id, node,
                    "bytes(...) materialization outside the copy model; "
                    "payloads move logically (keys), not by value")
            elif isinstance(func, ast.Name) \
                    and func.id == "pattern_bytes":
                # Generating extent content directly bypasses the
                # materialize() chokepoint (and its trace event).
                yield ctx.diag(
                    self.id, node,
                    "pattern_bytes(...) generates extent content outside "
                    "the Payload substrate; go through the payload's "
                    "materialize() via repro.copymodel.materialize()")


# ---------------------------------------------------------------------------
# trace-naming
# ---------------------------------------------------------------------------

@register
class TraceNaming(Rule):
    """Trace/metric names follow ``subsystem.verb[.qualifier]``."""

    id = "trace-naming"
    summary = "trace/metric names match subsystem.verb[.qualifier]"
    invariant = ("observability contract (PR 1): every TraceBus event "
                 "and registry metric is named subsystem.verb[.qualifier] "
                 "with the subsystem declared in "
                 "repro.check.vocabulary.SUBSYSTEMS")

    _methods = vocab.TRACE_EMIT_METHODS | vocab.METRIC_DECL_METHODS

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) \
                    or func.attr not in self._methods or not node.args:
                continue
            first = node.args[0]
            if isinstance(first, ast.Constant) \
                    and isinstance(first.value, str):
                yield from self._check_literal(ctx, first, func.attr,
                                               first.value)
            elif isinstance(first, ast.JoinedStr):
                yield from self._check_fstring(ctx, first, func.attr)

    def _check_literal(self, ctx: LintContext, node: ast.AST,
                       method: str, name: str) -> Iterator[Diagnostic]:
        if not vocab.NAME_RE.match(name):
            yield ctx.diag(
                self.id, node,
                f"{method}({name!r}): name must match "
                f"subsystem.verb[.qualifier] (lowercase, dot-separated)")
            return
        subsystem = name.split(".", 1)[0]
        if subsystem not in vocab.SUBSYSTEMS:
            yield ctx.diag(
                self.id, node,
                f"{method}({name!r}): unknown subsystem {subsystem!r}; "
                f"declare it in repro.check.vocabulary.SUBSYSTEMS")

    def _check_fstring(self, ctx: LintContext, node: ast.JoinedStr,
                       method: str) -> Iterator[Diagnostic]:
        first = node.values[0] if node.values else None
        prefix = first.value if isinstance(first, ast.Constant) \
            and isinstance(first.value, str) else ""
        if "." not in prefix:
            yield ctx.diag(
                self.id, node,
                f"{method}(f\"...\"): dynamic name needs a static "
                f"'subsystem.' prefix so the vocabulary stays checkable")
            return
        subsystem = prefix.split(".", 1)[0]
        if subsystem not in vocab.SUBSYSTEMS:
            yield ctx.diag(
                self.id, node,
                f"{method}(f\"{prefix}...\"): unknown subsystem "
                f"{subsystem!r}; declare it in "
                f"repro.check.vocabulary.SUBSYSTEMS")


# ---------------------------------------------------------------------------
# engine-discipline
# ---------------------------------------------------------------------------

@register
class EngineDiscipline(Rule):
    """No blocking I/O or event-loop re-entry in engine callbacks."""

    id = "engine-discipline"
    summary = "no blocking I/O or re-entrant run inside engine callbacks"
    invariant = ("run-to-completion: engine processes (generator "
                 "functions yielding Events) must not block the host "
                 "(real I/O, sleeps) or re-enter the event loop "
                 "(sim.run/step), which would deadlock or reorder the "
                 "deterministic heap (sim/engine.py)")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if not _is_generator(func):
                continue
            for node in _own_statements(func):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if name is None:
                    continue
                if name in vocab.BLOCKING_CALLS:
                    yield ctx.diag(
                        self.id, node,
                        f"blocking call {name}() inside engine process "
                        f"{func.name!r}: model the delay with "
                        f"sim.timeout()/cpu.execute_ns() instead")
                elif self._is_engine_reentry(name):
                    yield ctx.diag(
                        self.id, node,
                        f"re-entrant event-loop call {name}() inside "
                        f"engine process {func.name!r}: yield an Event "
                        f"instead of recursing into the scheduler")

    @staticmethod
    def _is_engine_reentry(name: str) -> bool:
        if name in ("run_until_complete", "run_until"):
            return True
        parts = name.split(".")
        return (len(parts) >= 2 and parts[-1] in ("run", "step")
                and parts[-2] in ("sim", "simulator"))


# ---------------------------------------------------------------------------
# cache-discipline
# ---------------------------------------------------------------------------

#: OrderedDict methods whose use marks the dict as a *recency* structure
#: (plain insertion-ordered bookkeeping never calls these).
_RECENCY_METHODS = frozenset({"move_to_end", "popitem"})


@register
class CacheDiscipline(Rule):
    """Recency/eviction bookkeeping lives in ``repro.cache`` only."""

    id = "cache-discipline"
    summary = "no hand-rolled OrderedDict recency structures outside repro.cache"
    invariant = ("single eviction engine (PR 5 / DESIGN.md §9): every "
                 "LRU-like structure is a repro.cache CacheKernel policy; "
                 "a class keeping its own OrderedDict recency list "
                 "silently diverges from the paper's §3.4 replacement and "
                 "escapes the cache.<name>.* metric families the policy "
                 "ablation relies on")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        if vocab.path_matches(ctx.posix, vocab.CACHE_KERNEL_PATHS):
            return
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            ordered: Dict[str, ast.AST] = {}
            recency: Set[str] = set()
            for node in ast.walk(cls):
                attr = self._ordered_dict_assign(node)
                if attr is not None:
                    ordered.setdefault(attr, node)
                    continue
                attr = self._recency_call(node)
                if attr is not None:
                    recency.add(attr)
            for attr in sorted(ordered.keys() & recency):
                yield ctx.diag(
                    self.id, ordered[attr],
                    f"class {cls.name!r} keeps its own OrderedDict "
                    f"recency structure 'self.{attr}' (move_to_end/"
                    f"popitem): delegate replacement to a repro.cache "
                    f"CacheKernel, or annotate why this ordering is not "
                    f"a cache recency list")

    @staticmethod
    def _ordered_dict_assign(node: ast.AST) -> Optional[str]:
        """``self.<attr> = OrderedDict(...)`` (plain or annotated) →
        the attribute name."""
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target: ast.AST = node.targets[0]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target = node.target
            value = node.value
        else:
            return None
        if not (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            return None
        if not isinstance(value, ast.Call):
            return None
        callee = dotted_name(value.func)
        if callee is None or callee.split(".")[-1] != "OrderedDict":
            return None
        return target.attr

    @staticmethod
    def _recency_call(node: ast.AST) -> Optional[str]:
        """``self.<attr>.move_to_end(...)`` / ``self.<attr>.popitem(...)``
        → the attribute name."""
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in _RECENCY_METHODS):
            return None
        receiver = func.value
        if (isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == "self"):
            return receiver.attr
        return None


# ---------------------------------------------------------------------------
# scheduler-discipline
# ---------------------------------------------------------------------------

_HEAPQ_FUNCTIONS = frozenset({
    "heappush", "heappop", "heappushpop", "heapreplace", "heapify",
    "merge", "nlargest", "nsmallest",
})


@register
class SchedulerDiscipline(Rule):
    """Time-ordered scheduling lives in ``sim/engine.py`` only."""

    id = "scheduler-discipline"
    summary = "no heapq / hand-rolled time-ordered scheduling outside sim.engine"
    invariant = ("single event core (DESIGN.md §11): every future action "
                 "is ordered by the Simulator's (time, seq) key; a "
                 "private heapq schedule in model code bypasses the seq "
                 "tie-break that makes runs deterministic and splits "
                 "behavior across the calendar/heap backend switch — "
                 "schedule through sim.schedule()/timeout()/timer()")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        if vocab.path_matches(ctx.posix, vocab.HEAPQ_ALLOWED_PATHS):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "heapq" \
                            and node.lineno not in ctx.type_checking_lines:
                        yield ctx.diag(
                            self.id, node,
                            "import of 'heapq': time-ordered scheduling "
                            "belongs to repro.sim.engine; go through the "
                            "Simulator API (schedule/timeout/timer)")
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] == "heapq" \
                        and node.lineno not in ctx.type_checking_lines:
                    yield ctx.diag(
                        self.id, node,
                        "import from 'heapq': time-ordered scheduling "
                        "belongs to repro.sim.engine; go through the "
                        "Simulator API (schedule/timeout/timer)")
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                parts = name.split(".")
                if (parts[0] == "heapq" and len(parts) == 2
                        and parts[1] in _HEAPQ_FUNCTIONS) \
                        or (len(parts) == 1
                            and parts[0] in _HEAPQ_FUNCTIONS
                            and parts[0].startswith("heap")):
                    yield ctx.diag(
                        self.id, node,
                        f"heap operation {name}(): a second time-ordered "
                        f"schedule outside repro.sim.engine; use "
                        f"sim.schedule()/sim.timer() so ordering stays "
                        f"deterministic across scheduler backends")


# ---------------------------------------------------------------------------
# no-legacy-factory
# ---------------------------------------------------------------------------

@register
class NoLegacyFactory(Rule):
    """New code builds testbeds from specs, not ``build_testbed()``."""

    id = "no-legacy-factory"
    summary = "no new callers of the deprecated build_testbed() factory"
    invariant = ("spec API (DESIGN.md §10): testbeds are described by "
                 "typed, picklable repro.servers.TestbedSpec/ClusterSpec "
                 "values and built with .build(); the kwarg-soup "
                 "build_testbed() factory is deleted — this rule keeps "
                 "it from being reinvented")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        if vocab.path_matches(ctx.posix,
                              vocab.LEGACY_FACTORY_ALLOWED_PATHS):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is not None \
                    and name.split(".")[-1] == "build_testbed":
                yield ctx.diag(
                    self.id, node,
                    f"call to deprecated factory {name}(): construct a "
                    f"repro.servers.TestbedSpec (or ClusterSpec) and "
                    f"call .build()")


# ---------------------------------------------------------------------------
# budget-lease
# ---------------------------------------------------------------------------

@register
class BudgetLease(Rule):
    """Cache budgets move through arbiter leases, not direct calls."""

    id = "budget-lease"
    summary = "resize/steal/grant only behind a MemoryArbiter lease"
    invariant = ("arbiter seam (DESIGN.md §12): the machine's cache "
                 "bytes have one owner — a repro.cache.arbiter."
                 "MemoryArbiter.  Direct resize()/steal()/grant() calls "
                 "outside repro/cache and the two cache adapters would "
                 "let a cache grow without another shrinking, silently "
                 "breaking the budget-conservation invariant the "
                 "controller's stability argument rests on")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        if vocab.path_matches(ctx.posix,
                              vocab.BUDGET_LEASE_ALLOWED_PATHS):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr in vocab.BUDGET_OP_METHODS:
                yield ctx.diag(
                    self.id, node,
                    f"direct budget operation .{func.attr}(): register "
                    f"a lease with the testbed's MemoryArbiter and let "
                    f"the arbiter move the bytes (repro.cache.arbiter)")
