"""Buffer-lifecycle sanitizer: ASan/LSan for the simulated cache.

NCache's correctness hangs on an ownership lifecycle the type system
cannot see: a chunk of network buffers is **cached** (RX hook), possibly
**remapped** FHO→LBN while its block flushes (§3.4), **substituted** into
at most one departing reply per placeholder, and finally **evicted** —
after which nothing may reference it, and if it was dirty its bytes must
first reach stable storage.  The file-system buffer cache may hold only
*keys* to that data, never the buffers themselves (otherwise the
double-buffering the paper eliminates is silently back).

The sanitizer tags every chunk (and stamps its NetBuffers' ``meta``) with
a state machine and reports:

* **leak** — a dirty chunk evicted but never written back (lost write),
  or a chunk still pinned when the simulation ends;
* **double-substitution** — one reply's placeholder chain substituted
  twice (each placeholder resolves exactly once per reply);
* **use-after-evict** — a reclaimed chunk used (pinned, remapped,
  substituted), or a placeholder whose key was evicted dereferenced at
  substitution time — the dangling-key race the store's reclaim
  listeners exist to prevent;
* **aliasing** — the FS buffer cache holding a payload object owned by a
  live NCache chunk (physical double-buffering of regular data).

Enablement: ``tests/conftest.py`` activates a sanitizer around every
test; ``REPRO_SANITIZE=1`` activates a *strict* one for any run (strict
raises :class:`SanitizerError` at the violating call).  Hooks are no-ops
when no sanitizer is active — one module-global read per call site.
"""

from __future__ import annotations

import enum
import os
import weakref
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Set


class SanitizerError(RuntimeError):
    """Raised in strict mode at the point of a lifecycle violation."""


class ChunkState(enum.Enum):
    """Ownership state of one cached chunk."""

    CACHED = "cached"
    EVICTED = "evicted"
    WRITTEN_BACK = "written_back"


class ViolationKind(enum.Enum):
    """The sanitizer's failure modes."""

    LEAK = "leak"
    DOUBLE_SUBSTITUTION = "double-substitution"
    USE_AFTER_EVICT = "use-after-evict"
    ALIASING = "aliasing"


#: Violations that indicate outright broken code (never a modelled race);
#: the test-suite guard asserts these are absent in every test.
HARD_KINDS = frozenset({ViolationKind.DOUBLE_SUBSTITUTION,
                        ViolationKind.ALIASING})


@dataclass
class Violation:
    """One observed lifecycle violation."""

    kind: ViolationKind
    message: str
    key: str = ""

    def format(self) -> str:
        where = f" [{self.key}]" if self.key else ""
        return f"san.{self.kind.value}{where}: {self.message}"


@dataclass
class _ChunkRecord:
    ref: Any                      # weakref.ref to the chunk (or None)
    key: str
    state: ChunkState
    dirty: bool = False


@dataclass
class BufferSanitizer:
    """Tracks chunk / buffer ownership through one simulation's life."""

    strict: bool = False
    violations: List[Violation] = field(default_factory=list)
    _chunks: Dict[int, _ChunkRecord] = field(default_factory=dict)
    _pending_writeback: Dict[int, Any] = field(default_factory=dict)
    _evicted_keys: Set[Any] = field(default_factory=set)
    _remapped_away: Set[Any] = field(default_factory=set)
    #: id(payload) -> (owner key, weakref to the owning chunk).  The
    #: weakref lets the aliasing check reject stale entries: when a whole
    #: store is garbage-collected (experiments build testbeds in
    #: sequence) its chunks never see chunk_evicted, and a fresh payload
    #: object can reuse a freed id().
    _owned_payloads: Dict[int, Any] = field(default_factory=dict)
    #: anonymous extent memory identity -> (owner key, weakref to chunk).
    #: Extent payloads carry a ``mem`` field naming the modelled buffer
    #: they are a view of; two *different* view objects of one buffer
    #: share a ``mem`` even though their id()s differ, so this catches
    #: aliasing the id-based map cannot.  Only anonymous (negative) mems
    #: are tracked: non-negative mems are backing-store identities
    #: (everything reading a disk block legitimately shares them).
    _owned_mems: Dict[int, Any] = field(default_factory=dict)
    _substituted: "weakref.WeakValueDictionary[int, Any]" = field(
        default_factory=weakref.WeakValueDictionary)

    # -- recording ---------------------------------------------------------

    def _record(self, kind: ViolationKind, message: str,
                key: str = "") -> None:
        violation = Violation(kind, message, key)
        self.violations.append(violation)
        if self.strict:
            raise SanitizerError(violation.format())

    def of_kind(self, kind: ViolationKind) -> List[Violation]:
        return [v for v in self.violations if v.kind is kind]

    def hard_violations(self) -> List[Violation]:
        return [v for v in self.violations if v.kind in HARD_KINDS]

    # -- chunk lifecycle ---------------------------------------------------

    def chunk_cached(self, chunk: Any) -> None:
        """RX hook inserted ``chunk`` into the store (cache-in)."""
        try:
            ref = weakref.ref(chunk)
        except TypeError:
            ref = None
        self._chunks[id(chunk)] = _ChunkRecord(
            ref=ref, key=str(chunk.key), state=ChunkState.CACHED,
            dirty=bool(chunk.dirty))
        self._evicted_keys.discard(chunk.key)
        for buf in chunk.buffers:
            buf.meta["san.state"] = ChunkState.CACHED.value
            self._owned_payloads[id(buf.payload)] = (str(chunk.key), ref)
            for mem in self._anon_mems(buf.payload):
                self._owned_mems[mem] = (str(chunk.key), ref)

    def chunk_evicted(self, chunk: Any) -> None:
        """The store removed ``chunk`` (reclaim / overwrite / drop)."""
        record = self._chunks.get(id(chunk))
        if record is not None and record.state is not ChunkState.CACHED:
            self._record(
                ViolationKind.USE_AFTER_EVICT,
                f"chunk evicted twice (state {record.state.value})",
                str(chunk.key))
        self._chunks[id(chunk)] = _ChunkRecord(
            ref=record.ref if record is not None else None,
            key=str(chunk.key), state=ChunkState.EVICTED,
            dirty=bool(chunk.dirty))
        self._evicted_keys.add(chunk.key)
        for buf in chunk.buffers:
            buf.meta["san.state"] = ChunkState.EVICTED.value
            self._owned_payloads.pop(id(buf.payload), None)
            for mem in self._anon_mems(buf.payload):
                entry = self._owned_mems.get(mem)
                if entry is not None and (entry[1] is None
                                          or entry[1]() in (chunk, None)):
                    del self._owned_mems[mem]
        if chunk.dirty:
            self._pending_writeback[id(chunk)] = chunk

    def chunk_remapped(self, chunk: Any, old_key: Any) -> None:
        """FHO→LBN remap: the chunk's identity moved indexes (§3.4)."""
        record = self._chunks.get(id(chunk))
        if record is not None and record.state is ChunkState.EVICTED:
            self._record(ViolationKind.USE_AFTER_EVICT,
                         "remap of an evicted chunk", str(old_key))
            return
        self._remapped_away.add(old_key)
        # The chunk now lives under its LBN key; if a stale entry under
        # that key was just reclaimed, the key itself is live again.
        self._evicted_keys.discard(chunk.key)
        if record is not None:
            record.key = str(chunk.key)
            record.dirty = bool(chunk.dirty)
        ref = record.ref if record is not None else None
        for buf in chunk.buffers:
            self._owned_payloads[id(buf.payload)] = (str(chunk.key), ref)
            for mem in self._anon_mems(buf.payload):
                self._owned_mems[mem] = (str(chunk.key), ref)

    def chunk_written_back(self, chunk: Any) -> None:
        """A dirty victim's bytes reached the writeback path."""
        self._pending_writeback.pop(id(chunk), None)
        record = self._chunks.get(id(chunk))
        if record is not None:
            record.state = ChunkState.WRITTEN_BACK
            record.dirty = False

    def chunk_used(self, chunk: Any, context: str) -> None:
        """Substitution / L2 serve / pin touched ``chunk``'s buffers."""
        record = self._chunks.get(id(chunk))
        if record is not None and record.state is ChunkState.EVICTED:
            self._record(
                ViolationKind.USE_AFTER_EVICT,
                f"{context} touched a reclaimed chunk", record.key)

    # -- substitution ------------------------------------------------------

    def reply_substituted(self, dgram: Any) -> None:
        """The TX hook substituted the placeholders of ``dgram``."""
        if id(dgram) in self._substituted \
                and self._substituted[id(dgram)] is dgram:
            self._record(
                ViolationKind.DOUBLE_SUBSTITUTION,
                "reply substituted twice; each placeholder chain must "
                "resolve exactly once per departing packet")
            return
        try:
            self._substituted[id(dgram)] = dgram
        except TypeError:
            pass

    def substitute_miss(self, fho_key: Any, lbn_key: Any) -> None:
        """A placeholder failed to resolve at substitution time."""
        for key in (fho_key, lbn_key):
            if key is not None and key in self._evicted_keys:
                self._record(
                    ViolationKind.USE_AFTER_EVICT,
                    "placeholder dereferenced a reclaimed chunk's key; "
                    "junk served — the FS cache page should have been "
                    "invalidated on eviction", str(key))
                return

    # -- FS cache aliasing -------------------------------------------------

    def fs_page_inserted(self, lbn: int, payload: Any) -> None:
        """The FS buffer cache cached ``payload`` for block ``lbn``."""
        for part in self._payload_parts(payload):
            entry = self._owned_payloads.get(id(part))
            if entry is None:
                continue
            owner, chunk_ref = entry
            chunk = chunk_ref() if chunk_ref is not None else None
            if chunk is None or not any(buf.payload is part
                                        for buf in chunk.buffers):
                # Stale id: the owning chunk (or its whole store) was
                # garbage-collected and the address got recycled.
                del self._owned_payloads[id(part)]
                continue
            self._record(
                ViolationKind.ALIASING,
                f"FS buffer cache page lbn={lbn} aliases a payload "
                f"owned by live NCache chunk {owner}; pages must "
                f"hold keys, not the cached buffers (§3.2)",
                owner)
            return
        # Extent views are distinct objects over shared buffer memory;
        # the mem identity catches aliasing the id() map cannot.
        for mem in self._anon_mems(payload):
            entry = self._owned_mems.get(mem)
            if entry is None:
                continue
            owner, chunk_ref = entry
            chunk = chunk_ref() if chunk_ref is not None else None
            if chunk is None or not self._chunk_holds_mem(chunk, mem):
                del self._owned_mems[mem]
                continue
            self._record(
                ViolationKind.ALIASING,
                f"FS buffer cache page lbn={lbn} is a view of buffer "
                f"memory owned by live NCache chunk {owner}; pages must "
                f"hold keys, not the cached buffers (§3.2)",
                owner)
            return

    @staticmethod
    def _payload_parts(payload: Any) -> Iterator[Any]:
        yield payload
        for part in getattr(payload, "parts", ()):
            yield part

    @staticmethod
    def _anon_mems(payload: Any) -> Iterator[int]:
        """Anonymous (copy-produced) extent memory identities in ``payload``."""
        for part in BufferSanitizer._payload_parts(payload):
            mem = getattr(part, "mem", None)
            if mem is not None and mem < 0:
                yield mem

    @staticmethod
    def _chunk_holds_mem(chunk: Any, mem: int) -> bool:
        for buf in chunk.buffers:
            for part in BufferSanitizer._payload_parts(buf.payload):
                if getattr(part, "mem", None) == mem:
                    return True
        return False

    # -- end-of-simulation sweep ------------------------------------------

    def check_leaks(self) -> List[Violation]:
        """Leak sweep: lost dirty data and chunks pinned forever."""
        found: List[Violation] = []
        for chunk in self._pending_writeback.values():
            found.append(Violation(
                ViolationKind.LEAK,
                "dirty chunk evicted but never written back; its bytes "
                "never reached stable storage", str(chunk.key)))
        for record in self._chunks.values():
            chunk = record.ref() if record.ref is not None else None
            if chunk is not None and record.state is ChunkState.CACHED \
                    and getattr(chunk, "pins", 0) > 0:
                found.append(Violation(
                    ViolationKind.LEAK,
                    "chunk still pinned at simulation end", record.key))
        self.violations.extend(found)
        if self.strict and found:
            raise SanitizerError(
                "; ".join(v.format() for v in found))
        return found

    def sim_ended(self, sim: Any) -> None:
        """The event heap drained: run the leak sweep."""
        self.check_leaks()

    # -- reporting ---------------------------------------------------------

    def report(self) -> str:
        if not self.violations:
            return "buffer sanitizer: no violations"
        lines = [f"buffer sanitizer: {len(self.violations)} violation(s)"]
        lines.extend(v.format() for v in self.violations)
        return "\n".join(lines)

    def raise_if_violations(self) -> None:
        if self.violations:
            raise SanitizerError(self.report())


_active: Optional[BufferSanitizer] = None


def active() -> Optional[BufferSanitizer]:
    """The sanitizer instrumentation hooks should report to, if any."""
    return _active


def enable(strict: bool = False) -> BufferSanitizer:
    """Install (and return) a fresh sanitizer as the active one."""
    global _active
    _active = BufferSanitizer(strict=strict)
    return _active


def disable() -> Optional[BufferSanitizer]:
    """Deactivate and return the current sanitizer."""
    global _active
    san, _active = _active, None
    return san


@contextmanager
def sanitize(strict: bool = False) -> Iterator[BufferSanitizer]:
    """Scoped sanitizer; restores whatever was active before."""
    global _active
    previous = _active
    san = BufferSanitizer(strict=strict)
    _active = san
    try:
        yield san
    finally:
        _active = previous


# REPRO_SANITIZE=1 turns on strict lifecycle checking for any entry point
# (experiments, ad-hoc scripts) without code changes.
if os.environ.get("REPRO_SANITIZE") == "1":  # pragma: no cover
    enable(strict=True)
