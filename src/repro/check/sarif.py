"""SARIF 2.1.0 serialization for ncache-lint reports.

One static-analysis interchange document per run, consumable by GitHub
code scanning (``github/codeql-action/upload-sarif``) and any SARIF
viewer.  Suppressed diagnostics are carried as results with an
``inSource`` suppression object — the standard way to say "the finding
exists and an annotation in the source acknowledges it" — so dashboards
show the same totals as the text report.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Tuple

from .diagnostics import Diagnostic

#: The schema GitHub code scanning validates uploads against.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

#: Meta diagnostics the drivers can emit besides the registered rules:
#: (id, summary).  Included in every tool descriptor so SARIF results
#: always resolve their ruleId.
META_RULE_DESCRIPTORS: Tuple[Tuple[str, str], ...] = (
    ("syntax", "file must parse"),
    ("stale-ignore",
     "every suppression comment must still silence a diagnostic"),
)


def _rule_descriptor(rule_id: str, summary: str,
                     invariant: str = "") -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "id": rule_id,
        "shortDescription": {"text": summary},
    }
    if invariant:
        out["fullDescription"] = {"text": invariant}
    return out


def _result(diag: Diagnostic) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "ruleId": diag.rule,
        "level": "error",
        "message": {"text": diag.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": diag.path.replace("\\", "/")},
                "region": {"startLine": diag.line,
                           "startColumn": max(diag.col, 1)},
            },
        }],
    }
    if diag.suppressed:
        out["suppressions"] = [{"kind": "inSource"}]
    return out


def to_sarif(diagnostics: Iterable[Diagnostic],
             rules: Sequence[Tuple[str, str, str]],
             tool_name: str = "ncache-lint") -> Dict[str, Any]:
    """Build the SARIF document.

    ``rules`` is ``(id, summary, invariant)`` for every rule that ran;
    the meta rules (``syntax``, ``stale-ignore``) are appended
    automatically.
    """
    descriptors: List[Dict[str, Any]] = [
        _rule_descriptor(rule_id, summary, invariant)
        for rule_id, summary, invariant in rules]
    known = {d["id"] for d in descriptors}
    for rule_id, summary in META_RULE_DESCRIPTORS:
        if rule_id not in known:
            descriptors.append(_rule_descriptor(rule_id, summary))
            known.add(rule_id)
    results = [_result(d) for d in diagnostics]
    # A result whose ruleId the descriptor table cannot resolve renders
    # poorly in viewers; make the table total.
    for result in results:
        if result["ruleId"] not in known:
            descriptors.append(_rule_descriptor(result["ruleId"], ""))
            known.add(result["ruleId"])
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": tool_name,
                    "rules": descriptors,
                },
            },
            "results": results,
        }],
    }
