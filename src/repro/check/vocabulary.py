"""The declared vocabulary ncache-lint checks the tree against.

This module is the single place where the repo's naming scheme and copy
whitelists are written down; the lint rules read it, the docs cite it.

* :data:`SUBSYSTEMS` — legal first components of trace/metric names.
  PR 1 established ``subsystem.verb[.qualifier]`` naming for every
  :class:`~repro.obs.trace.TraceBus` event and every metric declared on a
  :class:`~repro.obs.metrics.MetricsRegistry`; the ``trace-naming`` rule
  makes the scheme machine-checked.
* :data:`COPY_MODEL_PATHS` / :data:`COPY_METADATA_PATHS` — where physical
  materialization of payload bytes is legal.  Everywhere else, data must
  move through :class:`~repro.copymodel.accounting.CopyAccountant` (the
  paper's §3.1 logical-copy discipline), and a deliberate exception needs
  a per-line ``# check: ignore[copy-discipline] -- reason`` annotation.
* :data:`RANDOM_ALLOWED_PATHS` — the only modules that may touch the
  stdlib ``random`` module; everything stochastic takes an injected
  :func:`repro.sim.rng.substream` handle so simulations stay replayable.

Paths are matched as substrings of the POSIX form of the linted file's
path, so the vocabulary works from any checkout location.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Tuple

#: Legal ``subsystem`` prefixes for trace events and metric names.
SUBSYSTEMS: FrozenSet[str] = frozenset({
    "bcache",     # file-system buffer cache
    "cache",      # the unified eviction kernel (repro.cache): per-kernel
                  # hit/miss/evict/ghost-hit metric families
    "buffer",     # extent data plane: buffer.materialize (a payload was
                  # materialized to bytes at a verification point) and
                  # buffer.extent_slice (substitution served a partial
                  # view of a cached chunk)
    "checksum",   # software checksum accounting
    "copies",     # CopyAccountant movement counters
    "copy",       # per-copy size distribution
    "cpu",        # generic charged CPU time
    "disk",       # block device / RAID model
    "engine",     # simulator dispatch
    "fleet",      # multi-server cluster: routing, peer cache traffic
    "fs",         # VFS operations
    "http",       # kHTTPd
    "iscsi",      # initiator / target
    "ncache",     # the NCache module and store
    "net",        # network stack send/receive
    "nfs",        # NFS server / client
    "request",    # per-request latency and size histograms
    "rpc",        # SunRPC layer
    "san",        # buffer-lifecycle sanitizer
    "sim",        # simulation bookkeeping
    "tcp",        # transport events
    "udp",        # transport events
    "workload",   # workload generators
})

#: ``subsystem.verb`` or ``subsystem.verb.qualifier`` (lowercase,
#: underscores allowed inside components).
NAME_RE = re.compile(
    r"^[a-z][a-z0-9_]*\.[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$")

#: TraceBus emit sites whose first argument is an event name.
TRACE_EMIT_METHODS: FrozenSet[str] = frozenset({"emit", "complete"})

#: MetricsRegistry declaration sites (and the CounterSet shim's ``add``)
#: whose first argument is a metric name.
METRIC_DECL_METHODS: FrozenSet[str] = frozenset(
    {"counter", "gauge", "histogram", "add"})

#: Modules that *are* the copy model: materialization here is the model.
COPY_MODEL_PATHS: Tuple[str, ...] = (
    "repro/copymodel/",
    "repro/net/buffer.py",     # Payload substrate: defines physical_copy
    "repro/check/",            # the sanitizer inspects payloads
)

#: Metadata/data-plane paths where physical copies are part of the paper's
#: model and are charged through the owning host's CopyAccountant.
COPY_METADATA_PATHS: Dict[str, str] = {
    "repro/net/stack.py":
        "socket-boundary moves and software checksums are charged via "
        "acct.physical_copy/acct.checksum (§3.1/§3.2)",
    "repro/core/classifier.py":
        "HTTP header scan materializes only real header bytes (§3.5)",
    "repro/http/client.py":
        "client-side response verification, outside the server model",
    "repro/iscsi/target.py":
        "the storage target's data plane; copies charged by its own "
        "accountant (the paper modifies only the pass-through server)",
    "repro/fs/image.py":
        "backing-image byte generation, not a server-side copy",
}

#: The one home of recency/eviction bookkeeping: classes here may build
#: OrderedDict-based recency structures; everywhere else the
#: ``cache-discipline`` rule directs authors to a
#: :class:`~repro.cache.kernel.CacheKernel`.
CACHE_KERNEL_PATHS: Tuple[str, ...] = (
    "repro/cache/",
)

#: Modules allowed to import / call the stdlib ``random`` module.
RANDOM_ALLOWED_PATHS: Tuple[str, ...] = (
    "repro/sim/rng.py",
)

#: Modules allowed to read wall-clock time (none inside the simulation;
#: the experiment runner and the perf harness time the *host*, which is
#: their whole point).
WALLCLOCK_ALLOWED_PATHS: Tuple[str, ...] = (
    "repro/experiments/parallel.py",
    "repro/perf/",
)

#: The deprecated testbed factory's own home: the only in-repo module
#: allowed to reference ``build_testbed`` (the ``no-legacy-factory``
#: rule points everyone else at :class:`repro.servers.spec.TestbedSpec`).
LEGACY_FACTORY_ALLOWED_PATHS: Tuple[str, ...] = (
    "repro/servers/factory.py",
)

#: Wall-clock reading calls (dotted names as written at the call site).
WALLCLOCK_CALLS: FrozenSet[str] = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "datetime.now", "datetime.utcnow",
    "datetime.today", "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "date.today", "datetime.date.today",
})

#: Blocking primitives that must never run inside an engine callback.
BLOCKING_CALLS: FrozenSet[str] = frozenset({
    "open", "input", "time.sleep", "os.system", "socket.socket",
    "subprocess.run", "subprocess.call", "subprocess.Popen",
    "subprocess.check_output", "urllib.request.urlopen",
})


def path_matches(posix_path: str, patterns: Tuple[str, ...]) -> bool:
    """True if any vocabulary pattern occurs in ``posix_path``."""
    return any(pattern in posix_path for pattern in patterns)
