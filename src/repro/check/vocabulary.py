"""The declared vocabulary ncache-lint checks the tree against.

This module is the single place where the repo's naming scheme and copy
whitelists are written down; the lint rules read it, the docs cite it.

* :data:`SUBSYSTEMS` — legal first components of trace/metric names.
  PR 1 established ``subsystem.verb[.qualifier]`` naming for every
  :class:`~repro.obs.trace.TraceBus` event and every metric declared on a
  :class:`~repro.obs.metrics.MetricsRegistry`; the ``trace-naming`` rule
  makes the scheme machine-checked.
* :data:`COPY_MODEL_PATHS` / :data:`COPY_METADATA_PATHS` — where physical
  materialization of payload bytes is legal.  Everywhere else, data must
  move through :class:`~repro.copymodel.accounting.CopyAccountant` (the
  paper's §3.1 logical-copy discipline), and a deliberate exception needs
  a per-line ``# check: ignore[copy-discipline] -- reason`` annotation.
* :data:`RANDOM_ALLOWED_PATHS` — the only modules that may touch the
  stdlib ``random`` module; everything stochastic takes an injected
  :func:`repro.sim.rng.substream` handle so simulations stay replayable.

Paths are matched as substrings of the POSIX form of the linted file's
path, so the vocabulary works from any checkout location.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Tuple

#: Legal ``subsystem`` prefixes for trace events and metric names.
SUBSYSTEMS: FrozenSet[str] = frozenset({
    "arbiter",    # memory-budget arbiter: tick/move traces, budget gauges
    "bcache",     # file-system buffer cache
    "cache",      # the unified eviction kernel (repro.cache): per-kernel
                  # hit/miss/evict/ghost-hit metric families
    "buffer",     # extent data plane: buffer.materialize (a payload was
                  # materialized to bytes at a verification point) and
                  # buffer.extent_slice (substitution served a partial
                  # view of a cached chunk)
    "checksum",   # software checksum accounting
    "copies",     # CopyAccountant movement counters
    "copy",       # per-copy size distribution
    "cpu",        # generic charged CPU time
    "disk",       # block device / RAID model
    "engine",     # simulator dispatch
    "fleet",      # multi-server cluster: routing, peer cache traffic
    "fs",         # VFS operations
    "http",       # kHTTPd
    "iscsi",      # initiator / target
    "ncache",     # the NCache module and store
    "net",        # network stack send/receive
    "nfs",        # NFS server / client
    "request",    # per-request latency and size histograms
    "rpc",        # SunRPC layer
    "san",        # buffer-lifecycle sanitizer
    "sim",        # simulation bookkeeping
    "tcp",        # transport events
    "udp",        # transport events
    "workload",   # workload generators
})

#: ``subsystem.verb`` or ``subsystem.verb.qualifier`` (lowercase,
#: underscores allowed inside components).
NAME_RE = re.compile(
    r"^[a-z][a-z0-9_]*\.[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$")

#: TraceBus emit sites whose first argument is an event name.
TRACE_EMIT_METHODS: FrozenSet[str] = frozenset({"emit", "complete"})

#: MetricsRegistry declaration sites (and the CounterSet shim's ``add``)
#: whose first argument is a metric name.
METRIC_DECL_METHODS: FrozenSet[str] = frozenset(
    {"counter", "gauge", "histogram", "add"})

#: Modules that *are* the copy model: materialization here is the model.
COPY_MODEL_PATHS: Tuple[str, ...] = (
    "repro/copymodel/",
    "repro/net/buffer.py",     # Payload substrate: defines physical_copy
    "repro/check/",            # the sanitizer inspects payloads
)

#: Metadata/data-plane paths where physical copies are part of the paper's
#: model and are charged through the owning host's CopyAccountant.
COPY_METADATA_PATHS: Dict[str, str] = {
    "repro/net/stack.py":
        "socket-boundary moves and software checksums are charged via "
        "acct.physical_copy/acct.checksum (§3.1/§3.2)",
    "repro/core/classifier.py":
        "HTTP header scan materializes only real header bytes (§3.5)",
    "repro/http/client.py":
        "client-side response verification, outside the server model",
    "repro/iscsi/target.py":
        "the storage target's data plane; copies charged by its own "
        "accountant (the paper modifies only the pass-through server)",
    "repro/fs/image.py":
        "backing-image byte generation, not a server-side copy",
}

#: The one home of recency/eviction bookkeeping: classes here may build
#: OrderedDict-based recency structures; everywhere else the
#: ``cache-discipline`` rule directs authors to a
#: :class:`~repro.cache.kernel.CacheKernel`.
CACHE_KERNEL_PATHS: Tuple[str, ...] = (
    "repro/cache/",
)

#: Modules allowed to import / call the stdlib ``random`` module.
RANDOM_ALLOWED_PATHS: Tuple[str, ...] = (
    "repro/sim/rng.py",
)

#: Modules allowed to read wall-clock time (none inside the simulation;
#: the experiment runner and the perf harness time the *host*, which is
#: their whole point).
WALLCLOCK_ALLOWED_PATHS: Tuple[str, ...] = (
    "repro/experiments/parallel.py",
    "repro/perf/",
)

#: The only module allowed to use ``heapq`` (or otherwise maintain a
#: time-ordered schedule): the event core itself.  Everything else must
#: go through the Simulator API — a second scheduler hidden in model
#: code would bypass the seq tie-break that makes runs deterministic
#: and the calendar/heap backend switch meaningless.
HEAPQ_ALLOWED_PATHS: Tuple[str, ...] = (
    "repro/sim/engine.py",
)

#: The deprecated testbed factory is deleted; no module may call
#: ``build_testbed`` any more (the ``no-legacy-factory`` rule points
#: everyone at :class:`repro.servers.spec.TestbedSpec`).  The tuple is
#: kept (empty) so the rule's structure matches its siblings.
LEGACY_FACTORY_ALLOWED_PATHS: Tuple[str, ...] = ()

#: Wall-clock reading calls (dotted names as written at the call site).
WALLCLOCK_CALLS: FrozenSet[str] = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "datetime.now", "datetime.utcnow",
    "datetime.today", "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "date.today", "datetime.date.today",
})

#: Blocking primitives that must never run inside an engine callback.
BLOCKING_CALLS: FrozenSet[str] = frozenset({
    "open", "input", "time.sleep", "os.system", "socket.socket",
    "subprocess.run", "subprocess.call", "subprocess.Popen",
    "subprocess.check_output", "urllib.request.urlopen",
})


# ---------------------------------------------------------------------------
# Flow-analysis vocabulary (repro.check.flow)
# ---------------------------------------------------------------------------

#: Calls whose result order depends on the host (filesystem enumeration
#: order) — unordered sources for the ``flow-determinism`` pack.
UNORDERED_CALLS: FrozenSet[str] = frozenset({
    "os.listdir", "os.scandir", "os.walk",
    "glob.glob", "glob.iglob",
})

#: Method names that are *sim-visible sinks*: engine scheduling, trace
#: emission, and histogram recording.  Data arriving here in an
#: unordered order changes ``sim_events`` / traces / metrics between
#: runs or worker counts.
ORDER_SINK_METHODS: FrozenSet[str] = frozenset({
    "schedule", "schedule_at", "timeout", "succeed", "fail",
    "emit", "complete", "record",
})

#: Function names that are sinks when called directly (RNG stream
#: derivation: feeding it host-order data reseeds streams differently
#: per run).
ORDER_SINK_CALLS: FrozenSet[str] = frozenset({"substream"})

#: Aggregation key functions whose result is an object address / hash —
#: ``sorted(xs, key=id)`` is address order, never a stable order.
ADDRESS_KEY_FUNCS: FrozenSet[str] = frozenset({"id", "hash"})

#: Typestate tables for the ``flow-typestate`` pack: handle-shaped
#: values (Chunk / NetBuffer / datagram) move fresh -> pinned ->
#: substituted -> evicted through these methods.
TYPESTATE_PIN_METHODS: FrozenSet[str] = frozenset({"pin"})
TYPESTATE_UNPIN_METHODS: FrozenSet[str] = frozenset({"unpin"})
#: ``store.drop(chunk)`` style: the named *argument* becomes evicted.
TYPESTATE_EVICT_ARG_METHODS: FrozenSet[str] = frozenset({
    "drop", "_detach", "chunk_evicted", "invalidate",
})
#: ``san.reply_substituted(dgram)`` style: the argument was substituted;
#: a second substitution of the same handle is the double-substitution
#: bug the runtime sanitizer hunts.
TYPESTATE_SUBSTITUTE_ARG_METHODS: FrozenSet[str] = frozenset({
    "reply_substituted",
})
#: Receiver methods that *use* a handle (use-after-evict when the
#: receiver is in the evicted state).
TYPESTATE_USE_METHODS: FrozenSet[str] = frozenset({
    "pin", "unpin", "payload", "materialize", "physical_copy",
    "bump_generation", "footprint",
})

#: Trace-event names emitted with a literal first argument anywhere in
#: ``repro.*``.  The ``vocab-drift`` pack fails on an emit the set does
#: not declare (emit-without-declare) and on a declared name no emit
#: site produces (declare-without-emit), so this list is always exactly
#: the tree's live trace vocabulary.
DECLARED_TRACE_EVENTS: FrozenSet[str] = frozenset({
    "arbiter.move_bytes",
    "arbiter.tick",
    "bcache.evict",
    "bcache.hit",
    "bcache.miss",
    "buffer.extent_slice",
    "buffer.materialize",
    "engine.bucket_refill",
    "engine.bucket_resize",
    "engine.dispatch",
    "fleet.churn",
    "fleet.peer_hit",
    "fleet.peer_serve",
    "http.get",
    "ncache.cache_data_in",
    "ncache.cache_write",
    "ncache.evict",
    "ncache.l2_hit",
    "ncache.l2_miss",
    "ncache.remap",
    "ncache.substitute",
    "net.receive",
    "net.send",
})

#: Metric names declared with a literal first argument (counters,
#: gauges, histograms, CounterSet.add) anywhere in ``repro.*``.
DECLARED_METRICS: FrozenSet[str] = frozenset({
    "arbiter.moved_bytes",
    "arbiter.moves",
    "arbiter.stall_aborts",
    "bcache.evict_clean",
    "bcache.evict_dirty",
    "bcache.write_alloc",
    "bcache.writeback",
    "copies.elided",
    "copy.bytes",
    "fleet.drain_pushed",
    "fleet.failover_reroute",
    "fleet.imbalance",
    "fleet.inflight_retry",
    "fleet.peer_bytes",
    "fleet.peer_hit",
    "fleet.peer_miss",
    "fleet.peer_probe",
    "fleet.peer_push",
    "fleet.peer_served_hit",
    "fleet.peer_served_miss",
    "fleet.peer_timeout",
    "fleet.rebalance_moved_keys",
    "fleet.served",
    "fleet.warmup_ops",
    "http.get.latency",
    "ncache.cached_data_in",
    "ncache.cached_write",
    "ncache.evict_clean",
    "ncache.evict_dirty",
    "ncache.fs_page_invalidated",
    "ncache.l2_hit",
    "ncache.l2_miss",
    "ncache.overwrite",
    "ncache.remap",
    "ncache.remap_overwrite",
    "ncache.substitute_miss",
    "ncache.substituted_packets",
    "ncache.substituted_replies",
    "ncache.unaligned_write_passthrough",
    "ncache.used.bytes",
    "ncache.writeback",
    "nfs.drc_hit",
    "nfs.drc_in_progress_drop",
    "nfs.read.latency",
    "nfs.write.latency",
    "request.bytes",
    "request.latency",
    "udp.dropped",
})

#: Prefixes legal for *dynamic* (f-string) trace/metric names — the
#: per-kernel ``cache.<name>.*`` metric families and friends.  A
#: discovered literal or f-string prefix under one of these is declared
#: by family; families are exempt from declare-without-emit.
DYNAMIC_NAME_PREFIXES: Tuple[str, ...] = (
    "arbiter.budget.",  # per-lease budget gauges (arbiter.budget.<name>)
    "cache.",         # per-CacheKernel hit/miss/evict/ghost-hit metrics
    "fleet.routed.",  # per-node routing counters (fleet.routed.n<i>)
    "nfs.",           # per-procedure NFS trace events (nfs.<proc>)
)


#: Budget operations that move cache bytes: legal only inside the
#: arbiter seam.  Everywhere else, the ``budget-lease`` rule directs
#: authors to a :class:`~repro.cache.arbiter.MemoryArbiter` lease.
BUDGET_OP_METHODS: FrozenSet[str] = frozenset({"resize", "steal", "grant"})

#: The arbiter seam: the arbiter itself, the kernels it resizes, and the
#: two cache adapters whose ``resize`` wrappers keep index bookkeeping
#: attached (plus their own internal squeeze plumbing).
BUDGET_LEASE_ALLOWED_PATHS: Tuple[str, ...] = (
    "repro/cache/",
    "repro/core/store.py",
    "repro/fs/buffer_cache.py",
)


def path_matches(posix_path: str, patterns: Tuple[str, ...]) -> bool:
    """True if any vocabulary pattern occurs in ``posix_path``."""
    return any(pattern in posix_path for pattern in patterns)
