"""CPU cost model and physical/logical copy accounting."""

from .accounting import (
    CopyAccountant,
    CopyDiscipline,
    CopyKind,
    CopyRecord,
    RequestTrace,
)
from .costs import DEFAULT_COSTS, CostModel
from .materialize import materialize

__all__ = [
    "CopyAccountant",
    "CopyDiscipline",
    "CopyKind",
    "CopyRecord",
    "CostModel",
    "DEFAULT_COSTS",
    "RequestTrace",
    "materialize",
]
