"""Copy accounting: the heart of the reproduction's measurement story.

Every movement of data between kernel modules goes through a
:class:`CopyAccountant`, which

* charges the owning CPU the modelled cost (physical copy: per-byte;
  logical copy: per-key; zero: nothing),
* bumps named counters so experiments can report copies per category, and
* appends :class:`CopyRecord` entries to the active :class:`RequestTrace`
  so Table 2 ("number of data copying operations per request") can be
  regenerated exactly.

The three movement disciplines correspond to the paper's three server
configurations:

======================  =======================================================
``CopyDiscipline``      meaning
======================  =======================================================
``PHYSICAL``            original servers: memcpy, charged per byte
``LOGICAL``             NCache: copy the key, payload stays in the cache
``ZERO``                baseline: the copy statement is simply deleted; the
                        consumer sees junk, nothing is charged
======================  =======================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional

from ..sim.engine import Event
from ..sim.resources import CPU
from ..sim.stats import CounterSet
from .costs import CostModel


class CopyDiscipline(enum.Enum):
    """How regular data moves between kernel modules."""

    PHYSICAL = "physical"
    LOGICAL = "logical"
    ZERO = "zero"


class CopyKind(enum.Enum):
    """Whether a recorded movement was a memcpy or a key copy."""

    PHYSICAL = "physical"
    LOGICAL = "logical"


@dataclass
class CopyRecord:
    """One data movement observed on a request's path."""

    kind: CopyKind
    category: str
    nbytes: int
    is_metadata: bool = False
    where: str = ""


@dataclass
class RequestTrace:
    """Per-request record of data movements, for Table 2 style accounting."""

    label: str = ""
    records: List[CopyRecord] = field(default_factory=list)

    def physical_copies(self, regular_only: bool = True,
                        where: Optional[str] = None) -> int:
        """Physical copies of (by default) regular data, optionally
        restricted to the host named ``where`` — Table 2 counts copies
        *within the pass-through server*, not on the storage target."""
        return sum(1 for r in self.records
                   if r.kind is CopyKind.PHYSICAL
                   and (not regular_only or not r.is_metadata)
                   and (where is None or r.where == where))

    def logical_copies(self) -> int:
        return sum(1 for r in self.records if r.kind is CopyKind.LOGICAL)

    def physical_bytes(self) -> int:
        return sum(r.nbytes for r in self.records
                   if r.kind is CopyKind.PHYSICAL)

    def categories(self) -> List[str]:
        return [r.category for r in self.records]


class CopyAccountant:
    """Charges data-movement and protocol costs to one host's CPU."""

    def __init__(self, cpu: CPU, costs: CostModel,
                 counters: Optional[CounterSet] = None,
                 owner: str = "") -> None:
        self.cpu = cpu
        self.costs = costs
        self.counters = counters if counters is not None else CounterSet()
        self.owner = owner
        #: per-copy size distribution — the paper's accounting argument is
        #: about how many bytes physically move, so the registry keeps the
        #: whole distribution, not just the total.
        self._copy_bytes = self.counters.registry.histogram(
            "copy.bytes", unit="bytes")
        # Hot path: every data movement and protocol op lands in one of a
        # small set of counters, so Counter objects are memoized here and
        # bumped directly instead of going through the registry's name
        # lookup (and an f-string) on each call.  The memo is lazy on
        # purpose: a counter must not appear in snapshots (or answer to
        # ``in``) before the first real increment.
        self._memo: dict = {}
        self._cat_physical: dict = {}
        self._cat_logical: dict = {}
        self._cat_compute: dict = {}

    def _counter(self, name: str):
        counter = self._memo.get(name)
        if counter is None:
            counter = self._memo[name] = self.counters[name]
        return counter

    def _category_counter(self, memo: dict, prefix: str, category: str):
        counter = memo.get(category)
        if counter is None:
            counter = memo[category] = self.counters[prefix + category]
        return counter

    # -- batched (note + charge) accounting ---------------------------------
    #
    # The ``note_*`` methods do all the bookkeeping of their charging
    # counterparts — counters, histograms, CopyRecords — and *return* the
    # CPU cost in nanoseconds instead of holding the CPU.  Callers on a
    # packet path (repro.net.stack) sum the noted costs over a whole
    # train and execute them through one :meth:`charge_ns`, turning N
    # sequential CPU holds into one — same total CPU-seconds, a fraction
    # of the engine events.  Table 2 exactness is untouched: the records
    # are appended per movement either way.

    def note_physical_copy(self, nbytes: int, category: str,
                           trace: Optional[RequestTrace] = None,
                           is_metadata: bool = False) -> float:
        """Book a memcpy of ``nbytes``; returns its CPU cost in ns."""
        self._counter("copies.physical")._total += 1
        self._counter("copies.physical_bytes")._total += nbytes
        self._category_counter(self._cat_physical, "copies.physical.",
                               category)._total += 1
        self._copy_bytes.record(nbytes)
        if trace is not None:
            trace.records.append(CopyRecord(CopyKind.PHYSICAL, category,
                                            nbytes, is_metadata, self.owner))
        return self.costs.memcpy_ns(nbytes)

    def note_logical_copy(self, category: str, nkeys: int = 1,
                          trace: Optional[RequestTrace] = None,
                          nbytes: int = 0) -> float:
        """Book ``nkeys`` key copies; returns the CPU cost in ns."""
        self._counter("copies.logical")._total += nkeys
        self._category_counter(self._cat_logical, "copies.logical.",
                               category)._total += nkeys
        if trace is not None:
            trace.records.append(CopyRecord(CopyKind.LOGICAL, category,
                                            nbytes, False, self.owner))
        return nkeys * self.costs.logical_copy_ns

    def note_compute(self, nanoseconds: float,
                     category: str = "compute") -> float:
        """Book a generic CPU cost; returns it unchanged (ns)."""
        self._category_counter(self._cat_compute, "cpu.",
                               category)._total += nanoseconds
        return nanoseconds

    def note_checksum(self, nbytes: int, cached: bool = False) -> float:
        """Book a software checksum; returns the CPU cost in ns."""
        if cached:
            self._counter("checksum.inherited")._total += 1
            return 0.0
        self._counter("checksum.computed")._total += 1
        self._counter("checksum.bytes")._total += nbytes
        return self.costs.checksum_ns(nbytes)

    def charge_ns(self, nanoseconds: float) -> Generator[Event, Any, None]:
        """Hold the CPU for an already-booked aggregate cost."""
        return self.cpu.execute_ns(nanoseconds)

    # -- data movement -----------------------------------------------------
    #
    # The classic charge-inline entry points.  Each is a plain function
    # whose bookkeeping runs eagerly and whose returned generator is just
    # the CPU hold — ``yield from`` works exactly as before, one
    # delegation frame shallower (these are the hottest call sites in
    # the tree after the engine itself).

    def physical_copy(self, nbytes: int, category: str,
                      trace: Optional[RequestTrace] = None,
                      is_metadata: bool = False) -> Generator[Event, Any, None]:
        """memcpy ``nbytes``; charged per byte."""
        return self.cpu.execute_ns(
            self.note_physical_copy(nbytes, category, trace, is_metadata))

    def logical_copy(self, category: str, nkeys: int = 1,
                     trace: Optional[RequestTrace] = None,
                     nbytes: int = 0) -> Generator[Event, Any, None]:
        """Copy ``nkeys`` keys instead of the payload (NCache §3.1)."""
        return self.cpu.execute_ns(
            self.note_logical_copy(category, nkeys, trace, nbytes))

    def move(self, discipline: CopyDiscipline, nbytes: int, category: str,
             trace: Optional[RequestTrace] = None, nkeys: int = 1,
             is_metadata: bool = False) -> Generator[Event, Any, None]:
        """Move data under the given discipline.

        Metadata always moves physically regardless of discipline — the
        server must interpret it (§3.3) — which is why callers pass
        ``is_metadata`` rather than skipping the call.
        """
        if is_metadata or discipline is CopyDiscipline.PHYSICAL:
            return self.physical_copy(nbytes, category, trace, is_metadata)
        if discipline is CopyDiscipline.LOGICAL:
            return self.logical_copy(category, nkeys, trace, nbytes)
        # ZERO: statement deleted, nothing moves, nothing charged.
        self._counter("copies.elided")._total += 1
        return iter(())

    # -- protocol / bookkeeping costs ---------------------------------------

    def compute(self, nanoseconds: float, category: str = "compute"
                ) -> Generator[Event, Any, None]:
        """Charge a generic CPU cost."""
        return self.cpu.execute_ns(
            self.note_compute(nanoseconds, category))

    def checksum(self, nbytes: int, cached: bool = False
                 ) -> Generator[Event, Any, None]:
        """Software checksum cost; free when a cached sum is inherited."""
        ns = self.note_checksum(nbytes, cached)
        return self.cpu.execute_ns(ns) if ns else iter(())
