"""Calibrated CPU cost constants.

The paper's testbed is a Pentium III 1 GHz server with Intel Pro/1000
gigabit NICs (checksum offload on), Linux 2.4.19.  Absolute numbers from a
simulator are not meaningful; these constants are calibrated **once**
against the paper's headline ratios (Figures 4-7) and then frozen:

* memcpy ~330 MB/s effective (cache-cold kernel copies on a P3),
* per-packet protocol costs of a few microseconds,
* NCache per-chunk and per-packet substitution overheads such that
  NFS-NCache lands between NFS-original and NFS-baseline exactly as in
  §5.4 ("the difference is around 20% and due to the management overhead
  of network-centric buffer cache").

Everything is a nanosecond figure unless suffixed otherwise.  The model is
a dataclass so ablations can tweak a field without touching code.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    """Nanosecond CPU costs and testbed hardware parameters."""

    # ---- per-byte costs ------------------------------------------------
    #: memcpy cost; 3.0 ns/B ~ 330 MB/s effective copy bandwidth.
    memcpy_ns_per_byte: float = 3.0
    #: software internet checksum (only when NIC offload is off).
    checksum_ns_per_byte: float = 2.0

    # ---- fixed per-operation costs --------------------------------------
    #: fixed part of any memcpy (function call, cache setup).
    memcpy_setup_ns: float = 250.0
    #: driver + IP processing per received Ethernet frame.
    packet_rx_ns: float = 4800.0
    #: driver + IP processing per transmitted Ethernet frame.
    packet_tx_ns: float = 4000.0
    #: UDP-specific cost per datagram (socket demux, etc.).
    udp_datagram_ns: float = 3000.0
    #: TCP-specific cost per segment beyond packet_rx/tx.
    tcp_segment_ns: float = 2600.0
    #: cost of sending or receiving a TCP ACK (charged per ACK per side).
    tcp_ack_ns: float = 1600.0
    #: RPC encode/decode per message.
    rpc_ns: float = 6000.0
    #: NFS request dispatch + fh lookup + attr handling per operation.
    nfs_op_ns: float = 18000.0
    #: extra per-operation cost for NFS metadata ops (GETATTR/LOOKUP/...).
    nfs_meta_op_ns: float = 12000.0
    #: iSCSI PDU build/parse per PDU.
    iscsi_pdu_ns: float = 2500.0
    #: userspace iSCSI target per-command overhead (the reference
    #: implementation [2] runs in user space: syscalls, context switches).
    iscsi_target_op_ns: float = 85000.0
    #: per-request block-layer + buffer-cache bookkeeping.
    blockio_ns: float = 5000.0
    #: buffer cache lookup per page.
    cache_lookup_ns: float = 400.0
    #: HTTP per-request handling: parse, response header build, connection
    #: and logging bookkeeping.  kHTTPd's per-request fixed cost is large
    #: relative to its per-byte cost (that is why Figure 6(b)'s improvement
    #: grows so strongly with request size).
    http_request_ns: float = 150000.0
    #: per-request scheduling/wakeup cost of a kernel daemon.
    daemon_wakeup_ns: float = 8000.0

    # ---- NCache-specific overheads (the costs §5.4/§5.5 attributes) -----
    #: copy of a key (LBN or FHO) instead of a payload = logical copy.
    logical_copy_ns: float = 150.0
    #: hash lookup or insert of one chunk in the LBN/FHO cache.
    ncache_lookup_ns: float = 300.0
    #: LRU maintenance + accounting per chunk access.
    ncache_mgmt_ns: float = 200.0
    #: splicing one cached packet into an outgoing message.
    ncache_substitute_ns: float = 300.0
    #: fixed per-reply substitution cost: intercepting the message below
    #: the stack, walking its fragment list, rebuilding the framing.  This
    #: is the bulk of the "management overhead of network-centric buffer
    #: cache" the paper blames for the NCache-vs-baseline gap (§5.4).
    ncache_reply_fixed_ns: float = 25000.0
    #: remapping one chunk from the FHO cache to the LBN cache.
    ncache_remap_ns: float = 2000.0

    # ---- hardware parameters --------------------------------------------
    #: Ethernet MTU (payload of one frame, paper uses the 1500 default).
    mtu: int = 1500
    #: per-frame wire overhead: 14 eth + 4 FCS + 20 preamble/IFG.
    ethernet_overhead: int = 38
    ip_header: int = 20
    udp_header: int = 8
    tcp_header: int = 32  # 20 base + 12 timestamp options
    #: gigabit link.
    link_bandwidth_bps: float = 1e9
    link_latency_s: float = 15e-6

    # ---- derived helpers -------------------------------------------------

    def memcpy_ns(self, nbytes: int) -> float:
        return self.memcpy_setup_ns + nbytes * self.memcpy_ns_per_byte

    def checksum_ns(self, nbytes: int) -> float:
        return nbytes * self.checksum_ns_per_byte

    @property
    def udp_fragment_payload(self) -> int:
        """IP-fragment payload capacity for a UDP datagram's fragments."""
        return self.mtu - self.ip_header

    @property
    def tcp_mss(self) -> int:
        return self.mtu - self.ip_header - self.tcp_header

    def udp_frames(self, datagram_bytes: int) -> int:
        """Ethernet frames for one UDP datagram (IP fragmentation)."""
        total = datagram_bytes + self.udp_header
        frag = self.udp_fragment_payload
        return max(1, -(-total // frag))

    def tcp_segments(self, message_bytes: int) -> int:
        return max(1, -(-message_bytes // self.tcp_mss))

    def udp_wire_bytes(self, datagram_bytes: int) -> int:
        frames = self.udp_frames(datagram_bytes)
        return (datagram_bytes + self.udp_header
                + frames * (self.ip_header + self.ethernet_overhead))

    def tcp_wire_bytes(self, message_bytes: int) -> int:
        segments = self.tcp_segments(message_bytes)
        return message_bytes + segments * (
            self.tcp_header + self.ip_header + self.ethernet_overhead)

    def with_overrides(self, **kwargs) -> "CostModel":
        """A copy of this model with some fields replaced (for ablations)."""
        return replace(self, **kwargs)


#: The calibrated default used by all experiments.
DEFAULT_COSTS = CostModel()
