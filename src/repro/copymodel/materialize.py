"""The byte-materialization chokepoint for the extent data plane.

Steady-state simulation moves extent descriptors, never bytes; the only
places bytes legitimately exist are *verification points* — golden-number
checks, sanitizer byte-exactness assertions, trace payload dumps, and
client-side response verification.  All of them call :func:`materialize`
so that (a) the copy-discipline lint can enforce "no materialization
outside copymodel and declared metadata paths" by construction, and
(b) every materialization is observable as a ``buffer.materialize``
trace event when tracing is on.
"""

from __future__ import annotations

from typing import Any, Optional

#: Payload-like: anything with ``length`` and ``materialize()``.  Typed
#: loosely to keep copymodel free of a net dependency cycle.


def materialize(payload: Any, *, why: str, bus: Optional[Any] = None) -> bytes:
    """Materialize ``payload`` to real bytes at a named verification point.

    ``why`` says which verification point this is (``"golden"``,
    ``"client_verify"``, ``"trace_dump"``, ...) and is carried on the
    emitted ``buffer.materialize`` trace event.  ``bus`` is an optional
    :class:`~repro.obs.trace.TraceBus`; when absent or disabled the call
    is just the materialization.
    """
    data = payload.materialize()
    if bus is not None and bus.enabled:
        bus.emit("buffer.materialize", cat="buffer", why=why,
                 nbytes=len(data))
    return data
