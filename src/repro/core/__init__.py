"""NCache — the paper's contribution: network-centric buffer caching."""

from .chunk import Chunk, ChunkKey
from .classifier import PacketClassifier, RxAction, TxAction, TxDecision
from .keys import FhoKey, KeyedPayload, LbnKey
from .ncache import NCacheModule, flatten_payload
from .resize import (
    buffers_for_range,
    merge_payload,
    slice_buffer,
    split_into_chunks,
)
from .store import NCacheStore
from .wiring import attach_ncache

__all__ = [
    "Chunk",
    "ChunkKey",
    "FhoKey",
    "KeyedPayload",
    "LbnKey",
    "NCacheModule",
    "NCacheStore",
    "PacketClassifier",
    "RxAction",
    "TxAction",
    "TxDecision",
    "attach_ncache",
    "buffers_for_range",
    "flatten_payload",
    "merge_payload",
    "slice_buffer",
    "split_into_chunks",
]
