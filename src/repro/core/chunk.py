"""Cache chunks: fixed-size data units made of lists of network buffers.

"Physically the network-centric cache consists of fixed-sized data chunks,
each of which consists of a list of network buffers" (§3.4).  A chunk's
buffers are the packets exactly as they arrived (iSCSI Data-In segments or
NFS write request fragments), headers and cached checksums included — that
is what makes zero-work retransmission and checksum inheritance possible.
"""

from __future__ import annotations

from typing import List, Optional, Union

from ..check import sanitizer as _sanitizer
from ..net.buffer import NetBuffer, Payload, concat
from .keys import FhoKey, LbnKey

ChunkKey = Union[LbnKey, FhoKey]


class Chunk:
    """One fixed-size cached block as a list of network buffers."""

    __slots__ = ("key", "buffers", "dirty", "pins", "lbn_hint", "_payload",
                 "__weakref__")

    def __init__(self, key: ChunkKey, buffers: List[NetBuffer],
                 dirty: bool = False,
                 lbn_hint: Optional[LbnKey] = None) -> None:
        if not buffers:
            raise ValueError("chunk needs at least one buffer")
        self.key = key
        self.buffers = buffers
        self.dirty = dirty
        self.pins = 0
        #: For dirty FHO chunks: where this block will land on disk, used
        #: when NCache itself must write the chunk back (§3.4).
        self.lbn_hint = lbn_hint
        self._payload: Optional[Payload] = None

    @property
    def length(self) -> int:
        return sum(b.payload_bytes for b in self.buffers)

    def payload(self) -> Payload:
        """The chunk's data as one payload (cached)."""
        if self._payload is None:
            self._payload = concat(b.payload for b in self.buffers)
        return self._payload

    def footprint(self, per_buffer_overhead: int,
                  per_chunk_overhead: int) -> int:
        """Memory this chunk occupies: payload + descriptor metadata.

        The descriptor overhead is what shrinks NCache's effective data
        capacity and produces the extra throughput drop in Figure 6(a).
        """
        return (self.length
                + len(self.buffers) * per_buffer_overhead
                + per_chunk_overhead)

    @property
    def pinned(self) -> bool:
        return self.pins > 0

    def pin(self) -> None:
        san = _sanitizer.active()
        if san is not None:
            san.chunk_used(self, "pin")
        self.pins += 1

    def unpin(self) -> None:
        if self.pins <= 0:
            raise RuntimeError("unpin of unpinned chunk")
        self.pins -= 1

    def __repr__(self) -> str:
        state = "dirty" if self.dirty else "clean"
        return (f"Chunk({self.key}, {len(self.buffers)} bufs, "
                f"{self.length}B, {state})")
