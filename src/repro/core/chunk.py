"""Cache chunks: fixed-size data units made of lists of network buffers.

"Physically the network-centric cache consists of fixed-sized data chunks,
each of which consists of a list of network buffers" (§3.4).  A chunk's
buffers are the packets exactly as they arrived (iSCSI Data-In segments or
NFS write request fragments), headers and cached checksums included — that
is what makes zero-work retransmission and checksum inheritance possible.

Chunks come in two physically-equivalent representations:

* **buffer-list** (the classic constructor) — holds the arrived
  :class:`NetBuffer` list; the merged payload is derived lazily.
* **compact** (:meth:`Chunk.from_payload`) — holds one merged payload
  descriptor plus the fragment size; the buffer list is derived lazily
  (and then kept, because the stack mutates buffer checksum state — that
  mutation *is* the checksum-inheritance mechanism).  Cache warm-up uses
  this form: a warmed cache of a hundred thousand blocks is two payload
  descriptors per chunk instead of ~3 buffers + ~3 payload views each,
  which is most of the grid's peak-RSS savings.

Both report identical ``length``/``footprint`` and produce identical
buffer lists, so simulation results do not depend on the representation.
"""

from __future__ import annotations

from typing import List, Optional, Union

from ..check import sanitizer as _sanitizer
from ..net.buffer import (BufferFlavor, CompositePayload, ExtentPayload,
                          NetBuffer, Payload, concat)
from .keys import FhoKey, LbnKey

ChunkKey = Union[LbnKey, FhoKey]


def _restamp(payload: Payload, generation: int) -> Payload:
    """``payload`` with every extent view restamped at ``generation``."""
    if type(payload) is ExtentPayload:
        return payload.with_generation(generation)
    if isinstance(payload, CompositePayload):
        parts = [_restamp(p, generation) for p in payload.parts]
        if all(a is b for a, b in zip(parts, payload.parts)):
            return payload
        return concat(parts)
    return payload


class Chunk:
    """One fixed-size cached block as a list of network buffers."""

    __slots__ = ("key", "dirty", "pins", "lbn_hint", "generation",
                 "cache_handle",
                 "_payload", "_buffers", "_frag", "_flavor", "_csum_known",
                 "_length", "__weakref__")

    def __init__(self, key: ChunkKey, buffers: List[NetBuffer],
                 dirty: bool = False,
                 lbn_hint: Optional[LbnKey] = None) -> None:
        if not buffers:
            raise ValueError("chunk needs at least one buffer")
        self.key = key
        self._buffers: Optional[List[NetBuffer]] = buffers
        self.dirty = dirty
        self.pins = 0
        #: For dirty FHO chunks: where this block will land on disk, used
        #: when NCache itself must write the chunk back (§3.4).
        self.lbn_hint = lbn_hint
        #: Bumped when the backing data is overwritten or the chunk is
        #: remapped FHO→LBN; stamped onto the chunk's extent views.
        self.generation = 0
        #: The store's eviction-kernel handle while resident, else None.
        self.cache_handle: Optional[int] = None
        self._payload: Optional[Payload] = None
        self._frag = 0
        self._flavor = BufferFlavor.SK_BUFF
        self._csum_known = False
        self._length: Optional[int] = None

    @classmethod
    def from_payload(cls, key: ChunkKey, payload: Payload,
                     fragment_size: int, *,
                     flavor: BufferFlavor = BufferFlavor.SK_BUFF,
                     csum_known: bool = True,
                     dirty: bool = False,
                     lbn_hint: Optional[LbnKey] = None) -> "Chunk":
        """A compact chunk: payload descriptor + fragment size, no buffers.

        Equivalent to caching ``chain_from_payload(payload, fragment_size)``
        with every buffer's checksum state set to ``csum_known`` — the
        buffer list is built (once, then kept) on first ``.buffers``
        access.  Warm-started caches are built this way so that chunks
        never touched by the workload never grow an object graph.
        """
        if fragment_size <= 0:
            raise ValueError("fragment_size must be positive")
        if payload.length == 0:
            raise ValueError("chunk needs at least one byte")
        self = cls.__new__(cls)
        self.key = key
        self._buffers = None
        self.dirty = dirty
        self.pins = 0
        self.lbn_hint = lbn_hint
        self.generation = 0
        self.cache_handle = None
        self._payload = payload
        self._frag = fragment_size
        self._flavor = flavor
        self._csum_known = csum_known
        self._length = None
        return self

    @property
    def buffers(self) -> List[NetBuffer]:
        """The chunk's network buffers (built on demand for compact chunks).

        The built list is kept: the stack marks transport checksums as
        computed directly on these buffer objects, and that state must
        survive to the next substitution of the same chunk.
        """
        bufs = self._buffers
        if bufs is None:
            known = self._csum_known
            flavor = self._flavor
            bufs = [NetBuffer(payload=frag, flavor=flavor, csum_known=known)
                    for frag in self._payload.split(self._frag)]
            self._buffers = bufs
        return bufs

    def _n_buffers(self) -> int:
        if self._buffers is not None:
            return len(self._buffers)
        return -(-self._payload.length // self._frag)

    @property
    def length(self) -> int:
        if self._payload is not None:
            return self._payload.length
        # Buffer lists are fixed at construction (restamps preserve
        # lengths), so the sum is computed once and kept.
        n = self._length
        if n is None:
            n = self._length = sum(b.payload_bytes for b in self._buffers)
        return n

    def payload(self) -> Payload:
        """The chunk's data as one payload (cached)."""
        if self._payload is None:
            self._payload = concat(b.payload for b in self._buffers)
        return self._payload

    def footprint(self, per_buffer_overhead: int,
                  per_chunk_overhead: int) -> int:
        """Memory this chunk occupies: payload + descriptor metadata.

        The descriptor overhead is what shrinks NCache's effective data
        capacity and produces the extra throughput drop in Figure 6(a).
        Counted from the fragment arithmetic for compact chunks, so
        asking for the footprint never forces the buffer list into
        existence.
        """
        return (self.length
                + self._n_buffers() * per_buffer_overhead
                + per_chunk_overhead)

    def bump_generation(self) -> int:
        """Advance the chunk's generation, restamping its extent views.

        Called on FHO→LBN remap (the block's identity changed) and by
        backing-store overwrites.  Generations never affect content —
        they exist so staleness is checkable without comparing bytes.
        """
        self.generation += 1
        gen = self.generation
        if self._payload is not None:
            self._payload = _restamp(self._payload, gen)
        if self._buffers is not None:
            for buf in self._buffers:
                buf.payload = _restamp(buf.payload, gen)
        return gen

    @property
    def pinned(self) -> bool:
        return self.pins > 0

    def pin(self) -> None:
        san = _sanitizer.active()
        if san is not None:
            san.chunk_used(self, "pin")
        self.pins += 1

    def unpin(self) -> None:
        if self.pins <= 0:
            raise RuntimeError("unpin of unpinned chunk")
        self.pins -= 1

    def __repr__(self) -> str:
        state = "dirty" if self.dirty else "clean"
        return (f"Chunk({self.key}, {self._n_buffers()} bufs, "
                f"{self.length}B, {state})")
