"""Metadata-vs-data packet classification (§3.3, §3.5).

The NCache module must decide, below the network stack, which packets
carry cacheable/substitutable regular data.  Each protocol offers a
different hook:

* **NFS** — the RPC procedure: incoming WRITE calls are cached, outgoing
  READ replies are substituted; everything else passes through.
* **iSCSI** — the header alone cannot tell metadata from data; the hint
  comes from the inode type on the associated page structure, which rides
  on the command/response as ``is_metadata``.
* **HTTP** — a pattern scan for ``\\r\\n\\r\\n`` over the head of the
  outgoing stream locates the body; header-only responses pass through.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..http.messages import HttpResponse, find_body_offset
from ..iscsi.pdu import DataIn, ScsiCommand
from ..net.network import Datagram
from ..nfs.protocol import NfsCall, NfsProc, NfsReply
from ..rpc.peer import PeerFetchReply, PeerPushCall


class RxAction(enum.Enum):
    """What to do with an arriving packet."""

    PASS = "pass"
    CACHE_DATA_IN = "cache_data_in"      # iSCSI read response payload
    CACHE_NFS_WRITE = "cache_nfs_write"  # NFS write request payload


class TxAction(enum.Enum):
    """What to do with a departing packet."""

    PASS = "pass"
    SUBSTITUTE = "substitute"            # NFS read reply / HTTP response
    REMAP_AND_SUBSTITUTE = "remap"       # iSCSI write (FS cache flush)


@dataclass
class TxDecision:
    """TX classification plus where the regular data starts."""

    action: TxAction
    data_offset: int = 0  # where regular data starts in the stream


class PacketClassifier:
    """Stateless protocol-header inspection."""

    def classify_rx(self, dgram: Datagram) -> RxAction:
        message = dgram.message
        if isinstance(message, DataIn):
            if message.status == 0 and not message.is_metadata:
                return RxAction.CACHE_DATA_IN
            return RxAction.PASS
        if isinstance(message, NfsCall) and message.proc is NfsProc.WRITE:
            return RxAction.CACHE_NFS_WRITE
        if isinstance(message, PeerFetchReply) \
                and message.hit and message.nblocks > 0:
            # A peer cache hit is a Data-In in disguise: chunk its
            # payload into the local LBN cache (cooperative caching).
            return RxAction.CACHE_DATA_IN
        if isinstance(message, PeerPushCall):
            # A drained chunk from a leaving peer lands the same way.
            return RxAction.CACHE_DATA_IN
        return RxAction.PASS

    def classify_tx(self, dgram: Datagram) -> TxDecision:
        message = dgram.message
        if isinstance(message, NfsReply):
            if message.proc is NfsProc.READ and message.ok:
                return TxDecision(TxAction.SUBSTITUTE, message.header_size)
            return TxDecision(TxAction.PASS)
        if isinstance(message, HttpResponse):
            offset = self._http_body_offset(dgram, message)
            if offset is None:
                return TxDecision(TxAction.PASS)
            return TxDecision(TxAction.SUBSTITUTE, offset)
        if isinstance(message, ScsiCommand) and message.is_write \
                and not message.is_metadata:
            return TxDecision(TxAction.REMAP_AND_SUBSTITUTE,
                              message.header_size)
        if isinstance(message, PeerFetchReply) and message.hit:
            # Serving a peer probe: swap the keyed placeholders for the
            # cached buffers, zero-copy out of this node's NCache.
            return TxDecision(TxAction.SUBSTITUTE, message.header_size)
        if isinstance(message, PeerPushCall):
            # Draining on leave: same zero-copy substitution outward.
            return TxDecision(TxAction.SUBSTITUTE, message.header_size)
        return TxDecision(TxAction.PASS)

    @staticmethod
    def _http_body_offset(dgram: Datagram,
                          message: HttpResponse) -> Optional[int]:
        """Locate the body via the ``\\r\\n\\r\\n`` scan (§3.5).

        Only the first packet's header region is materialized — it holds
        real header bytes by construction; the body payload is never
        touched by the scan.
        """
        if not message.ok or message.content_length == 0:
            return None
        if not dgram.chain.buffers:
            return None
        first = dgram.chain.buffers[0]
        head_len = min(first.payload_bytes, message.header_size)
        head = first.payload.slice(0, head_len).materialize()
        offset = find_body_offset(head)
        if offset < 0:
            return None
        return offset
