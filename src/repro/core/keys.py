"""Cache keys and the key-carrying placeholder payload.

Logical copying (§3.1) replaces payload movement with movement of *keys*:

* :class:`LbnKey` — logical block number; indexes data that arrived from
  the iSCSI storage server (the LBN cache).
* :class:`FhoKey` — file handle + offset; indexes data that arrived in NFS
  write requests (the FHO cache).

A :class:`KeyedPayload` is what flows through the unmodified server code
in place of real data: "the retrieved block contains only a key and some
'junk' data, nonetheless the NFS server can still compose a valid NFS read
reply from the block, because it does not interpret the block's data"
(§3.2).  A placeholder may carry *both* keys — a block that was read and
then overwritten is found under its FHO key first, falling back to the LBN
key after remapping, which is precisely the lookup order §3.4 mandates to
guarantee clients "always receive the most up-to-date data".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..net.buffer import Payload, PlaceholderPayload


@dataclass(frozen=True)
class LbnKey:
    """Identifies one filesystem block by its on-disk address."""

    lun: int
    lbn: int

    def __str__(self) -> str:
        return f"lbn({self.lun},{self.lbn})"


@dataclass(frozen=True)
class FhoKey:
    """Identifies one file block by file handle and byte offset."""

    ino: int
    generation: int
    offset: int

    def __str__(self) -> str:
        return f"fho({self.ino}.{self.generation}@{self.offset})"


class KeyedPayload(PlaceholderPayload):
    """Junk-valued payload carrying the key(s) of the real cached data.

    ``base_offset`` tracks where this placeholder starts within the cached
    block, so protocol-layer slicing (IP fragmentation, TCP segmentation)
    preserves enough information for substitution to reassemble the right
    bytes (§3.5's split/merge requirement).
    """

    __slots__ = ("lbn_key", "fho_key", "base_offset")

    def __init__(self, length: int, lbn_key: Optional[LbnKey] = None,
                 fho_key: Optional[FhoKey] = None,
                 base_offset: int = 0) -> None:
        if length < 0:
            raise ValueError("negative length")
        if lbn_key is None and fho_key is None:
            raise ValueError("KeyedPayload needs at least one key")
        # Base attributes set inline rather than through the two-deep
        # super().__init__ chain: placeholders are created on every
        # slice along the transport path, and the call overhead shows.
        self._checksum = None
        self.length = length
        self.lbn_key = lbn_key
        self.fho_key = fho_key
        self.base_offset = base_offset

    def slice(self, offset: int, length: int) -> Payload:
        self._check_slice(offset, length)
        return KeyedPayload(length, self.lbn_key, self.fho_key,
                            self.base_offset + offset)

    def physical_copy(self) -> Payload:
        return KeyedPayload(self.length, self.lbn_key, self.fho_key,
                            self.base_offset)

    def with_lbn(self, lbn_key: LbnKey) -> "KeyedPayload":
        """A copy of this placeholder that also knows its LBN."""
        return KeyedPayload(self.length, lbn_key, self.fho_key,
                            self.base_offset)

    def __repr__(self) -> str:
        keys = ", ".join(str(k) for k in (self.fho_key, self.lbn_key) if k)
        return f"KeyedPayload({keys}, off={self.base_offset}, {self.length}B)"
