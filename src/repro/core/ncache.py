"""The NCache module: on-the-fly packet caching and substitution.

This is the paper's loadable kernel module, inserted "into the layer
between the network stack and the Ethernet device driver" (§4.1) — here,
registered as one RX hook and one TX hook on the pass-through server's
host.  Everything above it (daemon, buffer cache, VFS) is unmodified; the
two seams the kernel exposes (Table 1) are the logical-copy socket
discipline and the VFS's LBN annotator, both wired up by
:func:`attach_ncache`.

RX: iSCSI Data-In payloads are chunked into the LBN cache; NFS WRITE
payloads into the FHO cache; the placeholder the upper layers will pass
around is left in ``dgram.meta["keyed_payload"]``.

TX: outgoing NFS READ replies and HTTP responses have their placeholder
fragments *substituted* with the cached network buffers; outgoing iSCSI
writes (buffer-cache flushes) are first *remapped* FHO→LBN, then
substituted (§3.4, Figure 3).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from ..check import sanitizer as _sanitizer
from ..copymodel.accounting import RequestTrace
from ..net.buffer import (
    BufferChain,
    CompositePayload,
    JunkPayload,
    NetBuffer,
    Payload,
    PlaceholderPayload,
    concat,
)
from ..net.host import Host
from ..net.network import Datagram
from ..sim.engine import Event, SimulationError
from .chunk import Chunk
from .classifier import PacketClassifier, RxAction, TxAction
from .keys import FhoKey, KeyedPayload, LbnKey
from .resize import buffers_for_range, split_into_chunks
from .store import NCacheStore

#: ``fn(lbn, payload) -> generator`` writing a block back to storage.
WritebackFn = Callable[[int, Payload], Generator]
#: ``fn(fho_key) -> Optional[LbnKey]`` — where a file block lives on disk.
FhoToLbnFn = Callable[[FhoKey], Optional[LbnKey]]


def flatten_payload(payload: Payload) -> List[Payload]:
    """Leaf payloads of a (possibly composite) payload, in order."""
    if isinstance(payload, CompositePayload):
        leaves: List[Payload] = []
        for part in payload.parts:
            leaves.extend(flatten_payload(part))
        return leaves
    return [payload] if payload.length else []


def coalesce_keyed(leaves: List[Payload]) -> List[Payload]:
    """Merge adjacent keyed leaves that are contiguous views of one chunk.

    Transport fragmentation slices the per-block placeholders at packet
    boundaries; substitution must not preserve those junk boundaries — the
    real module replaces the whole packet list with the stored buffers.
    Coalescing recovers the per-block placeholders before resolution.
    """
    out: List[Payload] = []
    for leaf in leaves:
        prev = out[-1] if out else None
        if (isinstance(leaf, KeyedPayload) and isinstance(prev, KeyedPayload)
                and prev.fho_key == leaf.fho_key
                and prev.lbn_key == leaf.lbn_key
                and prev.base_offset + prev.length == leaf.base_offset):
            out[-1] = KeyedPayload(prev.length + leaf.length, prev.lbn_key,
                                   prev.fho_key, prev.base_offset)
        else:
            out.append(leaf)
    return out


class NCacheModule:
    """One host's network-centric cache."""

    def __init__(self, host: Host, store: NCacheStore, lun: int = 0,
                 fho_to_lbn: Optional[FhoToLbnFn] = None,
                 writeback: Optional[WritebackFn] = None,
                 strict: bool = False,
                 inherit_checksums: bool = True,
                 enable_remap: bool = True) -> None:
        self.host = host
        self.store = store
        self.lun = lun
        self.fho_to_lbn = fho_to_lbn
        self.writeback = writeback
        #: strict=True turns substitution misses into errors (tests);
        #: strict=False serves junk and counts, like a real race would.
        self.strict = strict
        #: ablation A1: inherit cached checksums on substituted packets
        #: (§1) instead of recomputing when offload is unavailable.
        self.inherit_checksums = inherit_checksums
        #: ablation A3: perform FHO→LBN remapping on flush (§3.4).
        self.enable_remap = enable_remap
        self.counters = host.counters
        self.trace = host.sim.trace
        host.add_rx_hook(self.rx_hook)
        host.add_tx_hook(self.tx_hook)
        self._classifier = PacketClassifier()

    # ------------------------------------------------------------------
    # RX: cache arriving regular data
    # ------------------------------------------------------------------

    def rx_hook(self, dgram: Datagram) -> Generator[Event, Any, Datagram]:
        action = self._classifier.classify_rx(dgram)
        if action is RxAction.PASS:
            return dgram
        if action is RxAction.CACHE_DATA_IN:
            yield from self._cache_data_in(dgram)
        else:
            yield from self._cache_nfs_write(dgram)
        return dgram

    def _cache_data_in(self, dgram: Datagram
                       ) -> Generator[Event, Any, None]:
        message = dgram.message
        bs = self.store.chunk_size
        total = message.nblocks * bs
        buffer_lists = split_into_chunks(dgram.chain, message.header_size,
                                         total, bs)
        if len(buffer_lists) != message.nblocks:
            raise SimulationError(
                f"Data-In chunking produced {len(buffer_lists)} chunks "
                f"for {message.nblocks} blocks")
        keyed_parts: List[Payload] = []
        for i, buffers in enumerate(buffer_lists):
            key = LbnKey(self.lun, message.lba + i)
            yield from self._insert_chunk(Chunk(key, buffers, dirty=False))
            keyed_parts.append(KeyedPayload(bs, lbn_key=key))
        dgram.meta["keyed_payload"] = concat(keyed_parts)
        self.counters.add("ncache.cached_data_in", len(buffer_lists))
        if self.trace.enabled:
            self.trace.emit("ncache.cache_data_in", cat="ncache",
                            tid=self.trace.tid_for(self.host.name),
                            lba=message.lba, blocks=len(buffer_lists))

    def _cache_nfs_write(self, dgram: Datagram
                         ) -> Generator[Event, Any, None]:
        call = dgram.message
        bs = self.store.chunk_size
        if call.offset % bs or call.count % bs or call.fh is None:
            # Unaligned writes pass through uncached: the server will move
            # the real payload, still correctly, just without the benefit.
            self.counters.add("ncache.unaligned_write_passthrough")
            return
        buffer_lists = split_into_chunks(dgram.chain, call.header_size,
                                         call.count, bs)
        keyed_parts: List[Payload] = []
        for i, buffers in enumerate(buffer_lists):
            key = FhoKey(call.fh.ino, call.fh.generation,
                         call.offset + i * bs)
            lbn_hint = self.fho_to_lbn(key) if self.fho_to_lbn else None
            yield from self._insert_chunk(
                Chunk(key, buffers, dirty=True, lbn_hint=lbn_hint))
            keyed_parts.append(KeyedPayload(bs, fho_key=key))
        dgram.meta["keyed_payload"] = concat(keyed_parts)
        self.counters.add("ncache.cached_write", len(buffer_lists))
        if self.trace.enabled:
            self.trace.emit("ncache.cache_write", cat="ncache",
                            tid=self.trace.tid_for(self.host.name),
                            offset=call.offset, blocks=len(buffer_lists))

    def _insert_chunk(self, chunk: Chunk) -> Generator[Event, Any, None]:
        costs = self.host.costs
        yield from self.host.acct.compute(
            costs.ncache_lookup_ns + costs.ncache_mgmt_ns, "ncache.insert")
        footprint = chunk.footprint(self.store.per_buffer_overhead,
                                    self.store.per_chunk_overhead)
        victims = self.store.make_room(footprint, key=chunk.key)
        for victim in victims:
            yield from self._write_back_chunk(victim)
        self.store.insert(chunk)

    def _write_back_chunk(self, chunk: Chunk
                          ) -> Generator[Event, Any, None]:
        """Flush a dirty chunk that is being reclaimed (§3.4).

        The target LBN comes from the chunk's remapped key or its hint.
        """
        self.counters.add("ncache.writeback")
        if isinstance(chunk.key, LbnKey):
            lbn_key: Optional[LbnKey] = chunk.key
        else:
            lbn_key = chunk.lbn_hint
        if lbn_key is None or self.writeback is None:
            raise SimulationError(
                f"cannot write back dirty chunk {chunk!r}: "
                f"{'no writeback path' if self.writeback is None else 'no LBN'}")
        san = _sanitizer.active()
        if san is not None:
            san.chunk_written_back(chunk)
        # The flush hands the storage target a fresh copy of the bytes —
        # a modelled physical move on the writeback path, charged by the
        # initiator's accountant.
        payload = chunk.payload().physical_copy()  # check: ignore[copy-discipline] -- writeback data plane, charged by initiator.write
        yield from self.writeback(lbn_key.lbn, payload)

    def write_back_chunk(self, chunk: Chunk
                         ) -> Generator[Event, Any, None]:
        """Flush one evicted dirty chunk (the arbiter's writeback
        routine for chunks its squeeze dislodges from the store)."""
        yield from self._write_back_chunk(chunk)

    # ------------------------------------------------------------------
    # TX: remap and substitute departing packets
    # ------------------------------------------------------------------

    def tx_hook(self, dgram: Datagram, trace: Optional[RequestTrace]
                ) -> Generator[Event, Any, Datagram]:
        decision = self._classifier.classify_tx(dgram)
        if decision.action is TxAction.PASS:
            return dgram
        # Leaves straight off the chain: composite parts are flat by
        # construction, so this is flatten_payload(chain.payload())
        # without materializing the intermediate concatenation.
        leaves: List[Payload] = []
        for buf in dgram.chain.buffers:
            payload = buf.payload
            if isinstance(payload, CompositePayload):
                leaves.extend(payload.parts)
            elif payload.length:
                leaves.append(payload)
        if not any(isinstance(p, PlaceholderPayload) for p in leaves):
            return dgram
        if decision.action is TxAction.REMAP_AND_SUBSTITUTE \
                and self.enable_remap:
            yield from self._remap(dgram, leaves)
        yield from self._substitute(dgram, leaves, trace)
        return dgram

    def _remap(self, dgram: Datagram, leaves: List[Payload]
               ) -> Generator[Event, Any, None]:
        """FHO→LBN remapping as the flush passes by (§3.4, Figure 3)."""
        command = dgram.message
        seen: set = set()
        block_index = 0
        for leaf in leaves:
            if not isinstance(leaf, KeyedPayload):
                continue
            fho = leaf.fho_key
            if fho is None or fho in seen:
                continue
            seen.add(fho)
            lbn_key = leaf.lbn_key
            if lbn_key is None:
                lbn_key = LbnKey(command.lun, command.lba + block_index)
            yield from self.host.acct.compute(
                self.host.costs.ncache_remap_ns, "ncache.remap")
            self.store.remap(fho, lbn_key)
            if self.trace.enabled:
                self.trace.emit("ncache.remap", cat="ncache",
                                tid=self.trace.tid_for(self.host.name),
                                fho=str(fho), lbn=lbn_key.lbn)
            block_index += 1

    def _substitute(self, dgram: Datagram, leaves: List[Payload],
                    trace: Optional[RequestTrace]
                    ) -> Generator[Event, Any, None]:
        """Swap placeholder fragments for the cached network buffers.

        The outgoing packet list becomes: one leading buffer carrying the
        protocol header bytes (merged with the first cached fragment),
        followed by the cached buffers themselves — "moved directly from
        the network-centric buffer cache to the network interface card"
        (§1).  Framing (packet count, wire bytes) is recomputed.
        """
        costs = self.host.costs
        san = _sanitizer.active()
        if san is not None:
            san.reply_substituted(dgram)
        leaves = coalesce_keyed(leaves)
        new_buffers: List[NetBuffer] = []
        pending_plain: List[Payload] = []  # header/metadata bytes to merge
        flavor = self.host.buffer_flavor
        substituted = 0
        lookups = 0
        misses = 0
        t0 = self.host.sim.now
        # Transport fragmentation may slice one block's placeholder across
        # several packets; the module resolves each *chunk* once per reply
        # (a per-reply lookup table), not once per fragment.
        resolved: dict = {}

        def emit_plain() -> None:
            if pending_plain:
                new_buffers.append(NetBuffer(payload=concat(pending_plain),
                                             flavor=flavor))
                pending_plain.clear()

        for leaf in leaves:
            if not isinstance(leaf, KeyedPayload):
                pending_plain.append(leaf)
                continue
            cache_key = (leaf.fho_key, leaf.lbn_key)
            if cache_key in resolved:
                chunk = resolved[cache_key]
            else:
                lookups += 1
                chunk = self.store.resolve(leaf.fho_key, leaf.lbn_key)
                resolved[cache_key] = chunk
            if chunk is None:
                self.counters.add("ncache.substitute_miss")
                misses += 1
                if san is not None:
                    san.substitute_miss(leaf.fho_key, leaf.lbn_key)
                if self.strict:
                    raise SimulationError(
                        f"substitution miss for {leaf!r}")
                pending_plain.append(JunkPayload(leaf.length))
                continue
            if san is not None:
                san.chunk_used(chunk, "substitute")
            if leaf.base_offset == 0 and leaf.length == chunk.length:
                # Whole-block substitution (the common case): the cached
                # buffer list goes out as-is; buffers_for_range would
                # return identity slices of every buffer.
                cached = chunk.buffers
            else:
                cached = buffers_for_range(chunk.buffers, leaf.base_offset,
                                           leaf.length)
                if self.trace.enabled:
                    self.trace.emit("buffer.extent_slice", cat="buffer",
                                    tid=self.trace.tid_for(self.host.name),
                                    offset=leaf.base_offset,
                                    length=leaf.length,
                                    chunk_length=chunk.length)
            if not self.inherit_checksums:
                # Fresh descriptors (csum_known=False) so the recompute
                # and the stack's subsequent marking never touch the
                # cached buffers.
                cached = [NetBuffer(payload=b.payload, headers=list(b.headers),
                                    flavor=b.flavor,
                                    meta=dict(m) if (m := b.peek_meta()) else None)
                          for b in cached]
            substituted += len(cached)
            if pending_plain:
                # Merge header bytes into the first data packet, as the
                # RPC/HTTP header shares the first fragment with data.
                first = cached[0]
                merged = NetBuffer(
                    payload=concat(pending_plain + [first.payload]),
                    flavor=flavor)
                pending_plain.clear()
                new_buffers.append(merged)
                new_buffers.extend(cached[1:])
            else:
                new_buffers.extend(cached)
        emit_plain()

        yield from self.host.acct.compute(
            costs.ncache_reply_fixed_ns
            + lookups * (costs.ncache_lookup_ns + costs.ncache_mgmt_ns)
            + max(1, substituted) * costs.ncache_substitute_ns,
            "ncache.substitute")
        if trace is not None:
            self.counters.add("ncache.substituted_packets", substituted)
        dgram.chain = BufferChain(new_buffers)
        self._recompute_framing(dgram)
        self.counters.add("ncache.substituted_replies")
        if self.trace.enabled:
            self.trace.complete("ncache.substitute", t0, cat="ncache",
                                tid=self.trace.tid_for(self.host.name),
                                packets=substituted, lookups=lookups,
                                misses=misses, dst=str(dgram.dst))

    def _recompute_framing(self, dgram: Datagram) -> None:
        costs = self.host.costs
        frames = max(1, len(dgram.chain.buffers))
        payload = dgram.chain.payload_bytes
        dgram.n_frames = frames
        if dgram.protocol == "udp":
            dgram.wire_bytes = (payload + costs.udp_header
                                + frames * (costs.ip_header
                                            + costs.ethernet_overhead))
        else:
            dgram.wire_bytes = payload + frames * (
                costs.tcp_header + costs.ip_header + costs.ethernet_overhead)

    # ------------------------------------------------------------------
    # Second-level cache seam (§3.4)
    # ------------------------------------------------------------------

    def try_serve_read(self, lbn: int, nblocks: int,
                       trace: Optional[RequestTrace]
                       ) -> Generator[Event, Any, Optional[Payload]]:
        """Serve a block-device read from the LBN cache if fully present.

        The file-system buffer cache is deliberately small under NCache;
        its misses re-surface here and hit the much larger network-centric
        cache instead of the storage server.  Partial hits fall through to
        the wire (the whole extent is refetched and re-cached).
        """
        costs = self.host.costs
        yield from self.host.acct.compute(
            nblocks * costs.ncache_lookup_ns, "ncache.l2_lookup")
        keys = [LbnKey(self.lun, lbn + i) for i in range(nblocks)]
        chunks = [self.store.lookup_lbn(key) for key in keys]
        if any(chunk is None for chunk in chunks):
            self.counters.add("ncache.l2_miss")
            if self.trace.enabled:
                self.trace.emit("ncache.l2_miss", cat="ncache",
                                tid=self.trace.tid_for(self.host.name),
                                lbn=lbn, nblocks=nblocks)
            return None
        self.counters.add("ncache.l2_hit")
        san = _sanitizer.active()
        if san is not None:
            for chunk in chunks:
                san.chunk_used(chunk, "l2_serve")
        if self.trace.enabled:
            self.trace.emit("ncache.l2_hit", cat="ncache",
                            tid=self.trace.tid_for(self.host.name),
                            lbn=lbn, nblocks=nblocks)
        yield from self.host.acct.compute(
            nblocks * costs.ncache_mgmt_ns, "ncache.l2_serve")
        parts: List[Payload] = [
            KeyedPayload(chunk.length, lbn_key=key)
            for key, chunk in zip(keys, chunks)]
        return concat(parts)

    # ------------------------------------------------------------------
    # VFS seam
    # ------------------------------------------------------------------

    def lbn_annotator(self, block_payload: Payload, lbn: int) -> Payload:
        """Stamp the LBN key onto keyed blocks stored in the FS cache."""
        if isinstance(block_payload, KeyedPayload):
            return block_payload.with_lbn(LbnKey(self.lun, lbn))
        return block_payload
