"""Split/merge between protocol data units and cache chunks (§3.5).

Data arrives in protocol-sized network buffers (1448-byte TCP segments
from iSCSI, 1480-byte IP fragments from NFS/UDP) but is cached in
fixed-size chunks (one filesystem block).  Going the other way, cached
buffers are re-emitted under a different protocol's framing.  This module
does the alignment arithmetic on real buffer lists so every transformation
is byte-checkable.
"""

from __future__ import annotations

from typing import List

from ..net.buffer import BufferChain, NetBuffer, Payload


def slice_buffer(buf: NetBuffer, offset: int, length: int) -> NetBuffer:
    """A view of part of a network buffer.

    A full-buffer slice preserves identity-relevant attributes (cached
    checksum in particular); a partial slice gets a fresh descriptor with
    no inherited checksum — you cannot reuse a checksum of different bytes.
    """
    if offset == 0 and length == buf.payload_bytes:
        return buf
    meta = buf.peek_meta()
    # A partial slice carries different bytes: its checksum is not the
    # original buffer's, so it cannot be inherited (csum_known stays False).
    return NetBuffer(payload=buf.payload.slice(offset, length),
                     headers=[], flavor=buf.flavor, checksum=None,
                     meta=dict(meta) if meta else None)


def split_into_chunks(chain: BufferChain, data_offset: int,
                      total_data: int, chunk_size: int
                      ) -> List[List[NetBuffer]]:
    """Carve the data region of an arrived chain into chunk buffer lists.

    ``data_offset`` skips the protocol header bytes at the front of the
    chain (iSCSI BHS, RPC/NFS call header...).  Returns one buffer list
    per chunk, in order; the final chunk may be short if ``total_data`` is
    not a multiple of ``chunk_size`` (callers enforce block alignment for
    cacheable traffic).
    """
    if data_offset < 0 or total_data < 0:
        raise ValueError("negative offsets")
    chunks: List[List[NetBuffer]] = []
    current: List[NetBuffer] = []
    current_bytes = 0
    consumed = 0  # data bytes consumed so far
    skip = data_offset
    for buf in chain:
        size = buf.payload_bytes
        if skip >= size:
            skip -= size
            continue
        start = skip
        skip = 0
        while start < size and consumed < total_data:
            room = chunk_size - current_bytes
            take = min(size - start, room, total_data - consumed)
            current.append(slice_buffer(buf, start, take))
            current_bytes += take
            consumed += take
            start += take
            if current_bytes == chunk_size:
                chunks.append(current)
                current = []
                current_bytes = 0
        if consumed >= total_data:
            break
    if consumed != total_data:
        raise ValueError(
            f"chain holds {consumed} data bytes, expected {total_data}")
    if current:
        chunks.append(current)
    return chunks


def buffers_for_range(buffers: List[NetBuffer], offset: int, length: int
                      ) -> List[NetBuffer]:
    """The sub-list of (possibly sliced) buffers covering a byte range.

    Used by substitution when an outgoing fragment needs only part of a
    chunk: whole cached buffers are reused as-is (checksums inherited),
    partially-covered buffers are sliced.
    """
    if offset < 0 or length < 0:
        raise ValueError("negative range")
    out: List[NetBuffer] = []
    cursor = offset
    remaining = length
    for buf in buffers:
        if remaining == 0:
            break
        size = buf.payload_bytes
        if cursor >= size:
            cursor -= size
            continue
        take = min(size - cursor, remaining)
        out.append(slice_buffer(buf, cursor, take))
        cursor = 0
        remaining -= take
    if remaining:
        raise ValueError(f"range exceeds chunk by {remaining} bytes")
    return out


def merge_payload(buffers: List[NetBuffer]) -> Payload:
    """Concatenate buffer payloads (merge direction of §3.5)."""
    chain = BufferChain(buffers)
    return chain.payload()
