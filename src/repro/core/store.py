"""The network-centric cache store: LBN cache + FHO cache + shared LRU.

"The network-centric cache in an NFS server is decomposed into two parts:
an LBN cache and an FHO cache, because there are two sources of data"
(§3.4).  Both caches share one recency list of chunks and one memory
budget (the pinned network-buffer pool).  Replacement defaults to the
paper's classic LRU: touch moves a chunk to the tail; reclamation takes
from the head; clean chunks are freed, dirty chunks are written back
first (the store hands dirty victims to the caller, which owns the I/O
path).  Recency/eviction bookkeeping is delegated to the unified
:mod:`repro.cache` kernel (DESIGN.md §9), which also opens the
replacement *policy* (``lru``/``clock``/``slru``/``arc``) and optional
keyspace *sharding* as experiment axes — with ``policy="lru",
shards=1`` (the default) behavior is identical to the paper's.

Beyond the paper's text, the store completes the design with two pieces of
necessary engineering, both flagged in DESIGN.md:

* **pinning** — chunks referenced by an in-flight reply cannot be
  reclaimed out from under the substitution step;
* **reclaim notification** — when a chunk disappears, any file-system
  cache page still holding its key is invalidated (otherwise a later read
  hit would dereference a dangling key and serve junk).
"""

from __future__ import annotations

from typing import (Callable, Dict, Hashable, Iterable, Iterator, List,
                    Optional, Union)

from ..cache import CacheKernel, CacheStallError, ShardedKernel
from ..cache.kernel import KernelMetrics
from ..check import sanitizer as _sanitizer
from ..obs.trace import TraceBus
from ..sim.stats import CounterSet
from .chunk import Chunk
from .keys import FhoKey, LbnKey

AnyKernel = Union[CacheKernel, ShardedKernel]


class NCacheStore:
    """Memory-bounded chunk store with LBN and FHO indexes."""

    def __init__(self, capacity_bytes: int, chunk_size: int = 4096,
                 per_buffer_overhead: int = 160,
                 per_chunk_overhead: int = 64,
                 counters: Optional[CounterSet] = None,
                 trace: Optional[TraceBus] = None,
                 policy: str = "lru",
                 shards: int = 1) -> None:
        if capacity_bytes < chunk_size:
            raise ValueError("capacity smaller than one chunk")
        self.chunk_size = chunk_size
        self.per_buffer_overhead = per_buffer_overhead
        self.per_chunk_overhead = per_chunk_overhead
        self.counters = counters if counters is not None else CounterSet()
        #: structured trace bus (owned by the simulator) — optional so the
        #: store stays usable standalone in unit tests.
        self.trace = trace
        self._used_gauge = self.counters.registry.gauge(
            "ncache.used.bytes", unit="bytes")
        self._lbn: Dict[LbnKey, Chunk] = {}
        self._fho: Dict[FhoKey, Chunk] = {}
        if shards > 1:
            sharded = ShardedKernel(
                "ncache", capacity_bytes, policy, shards,
                counters=self.counters, trace=trace)
            self._kernel: AnyKernel = sharded
            promote: Callable[[int], None] = sharded.policy_touch
            ghost_probe: Callable[[Hashable], bool] = sharded.ghost_probe
        else:
            flat = CacheKernel(
                "ncache", capacity_bytes, policy,
                counters=self.counters, trace=trace)
            self._kernel = flat
            promote = flat.policy.touch
            ghost_probe = flat.policy.ghost_hit
        # Hot path: lookups dominate the simulation profile, so resolve
        # the kernel indirection (kernel.touch -> policy.touch ->
        # counter bump) into direct callables and Counter objects once.
        self._promote = promote
        self._ghost_probe = ghost_probe
        metrics = self._kernel.metrics
        self._m_hit = metrics.hit
        self._m_miss = metrics.miss
        self._m_ghost = metrics.ghost_hit
        self._c_lbn_hit = self.counters["ncache.lbn_hit"]
        self._c_lbn_miss = self.counters["ncache.lbn_miss"]
        self._c_fho_hit = self.counters["ncache.fho_hit"]
        self._c_fho_miss = self.counters["ncache.fho_miss"]
        #: callbacks ``fn(chunk)`` invoked when a chunk leaves the store.
        self.reclaim_listeners: List[Callable[[Chunk], None]] = []

    # -- inspection ------------------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        return self._kernel.capacity_bytes

    @capacity_bytes.setter
    def capacity_bytes(self, nbytes: int) -> None:
        # No immediate eviction: an over-budget store sheds chunks at
        # the next make_room, exactly as before the kernel refactor.
        self._kernel.capacity_bytes = nbytes

    @property
    def policy_name(self) -> str:
        return self._kernel.policy_name

    @property
    def kernel_metrics(self) -> KernelMetrics:
        """The ``cache.ncache.*`` metric family (arbiter lease input)."""
        return self._kernel.metrics

    @property
    def used_bytes(self) -> int:
        return self._kernel.used_bytes

    @property
    def n_chunks(self) -> int:
        return len(self._kernel)

    @property
    def n_lbn(self) -> int:
        return len(self._lbn)

    @property
    def n_fho(self) -> int:
        return len(self._fho)

    def chunks(self) -> Iterator[Chunk]:
        """Resident chunks in eviction order (cold to hot) — the public
        replacement-order view the property battery compares against its
        reference models."""
        for _, chunk in self._kernel.items():
            yield chunk

    def dirty_chunks(self) -> List[Chunk]:
        return [c for c in self.chunks() if c.dirty]

    def _footprint(self, chunk: Chunk) -> int:
        return chunk.footprint(self.per_buffer_overhead,
                               self.per_chunk_overhead)

    # -- lookup -----------------------------------------------------------------

    def lookup_lbn(self, key: LbnKey, touch: bool = True) -> Optional[Chunk]:
        chunk = self._lbn.get(key)
        if chunk is None:
            self._c_lbn_miss._total += 1
            self._m_miss._total += 1
            if self._ghost_probe(key):
                self._m_ghost._total += 1
            return None
        self._c_lbn_hit._total += 1
        self._m_hit._total += 1
        if touch:
            assert chunk.cache_handle is not None
            self._promote(chunk.cache_handle)
        return chunk

    def lookup_fho(self, key: FhoKey, touch: bool = True) -> Optional[Chunk]:
        chunk = self._fho.get(key)
        if chunk is None:
            self._c_fho_miss._total += 1
            self._m_miss._total += 1
            if self._ghost_probe(key):
                self._m_ghost._total += 1
            return None
        self._c_fho_hit._total += 1
        self._m_hit._total += 1
        if touch:
            assert chunk.cache_handle is not None
            self._promote(chunk.cache_handle)
        return chunk

    def resolve(self, fho_key: Optional[FhoKey], lbn_key: Optional[LbnKey],
                touch: bool = True) -> Optional[Chunk]:
        """FHO-first lookup: dirty written data always wins (§3.4)."""
        chunk = None
        if fho_key is not None:
            chunk = self.lookup_fho(fho_key, touch)
        if chunk is None and lbn_key is not None:
            chunk = self.lookup_lbn(lbn_key, touch)
        return chunk

    # -- insertion / eviction ------------------------------------------------------

    def make_room(self, nbytes: int,
                  key: Optional[Union[LbnKey, FhoKey]] = None) -> List[Chunk]:
        """Evict chunks until ``nbytes`` fit; return dirty victims.

        Pinned chunks are skipped.  Every victim (clean or dirty) is
        removed from both indexes and announced to reclaim listeners;
        dirty victims are returned for the caller to write back.  When
        the store is sharded, ``key`` — the key about to be inserted —
        routes the reservation to the responsible shard.

        Raises :class:`~repro.cache.CacheStallError` (a RuntimeError)
        when every resident chunk is pinned.
        """
        return self._kernel.make_room(nbytes, key=key,
                                      on_evict=self._evicted)

    def resize(self, new_capacity_bytes: int) -> List[Chunk]:
        """Shrink/grow the byte budget (the §3.4 squeeze protocol);
        returns dirty victims exactly like :meth:`make_room`."""
        return self._kernel.resize(new_capacity_bytes,
                                   on_evict=self._evicted)

    def cold_restart(self) -> None:
        """Drop the entire contents, ghost-recording every key.

        The crash-rejoin semantics (DESIGN.md §10): dirty chunks are
        lost (nothing left to write back), every evicted key lands in
        the policy's ghost list so the rewarming cache remembers what
        it used to hold, and the budget is restored afterwards.
        """
        for chunk in self.dirty_chunks():
            chunk.dirty = False
        capacity = self.capacity_bytes
        try:
            self.resize(0)
        except CacheStallError:
            pass  # pinned stragglers shed at the next make_room
        self.capacity_bytes = capacity

    def _evicted(self, chunk: Chunk) -> None:
        self._detach(chunk)
        if chunk.dirty:
            self.counters.add("ncache.evict_dirty")
        else:
            self.counters.add("ncache.evict_clean")

    def _detach(self, chunk: Chunk) -> None:
        """Consumer-side bookkeeping after the kernel dropped a chunk."""
        chunk.cache_handle = None
        self._used_gauge.set(self._kernel.used_bytes)
        # Pop the index entry only if it still points at this chunk — a
        # remap may already have installed a replacement under this key.
        index = self._lbn if isinstance(chunk.key, LbnKey) else self._fho
        if index.get(chunk.key) is chunk:
            del index[chunk.key]
        if self.trace is not None and self.trace.enabled:
            self.trace.emit("ncache.evict", cat="ncache",
                            key=str(chunk.key), dirty=chunk.dirty)
        san = _sanitizer.active()
        if san is not None:
            san.chunk_evicted(chunk)
        for listener in self.reclaim_listeners:
            listener(chunk)

    def insert(self, chunk: Chunk) -> None:
        """Insert a chunk under its key, replacing any existing entry.

        Replacement of an FHO entry by a newer write is the *overwritten*
        path; caller must have called :meth:`make_room` first.  The new
        mapping is installed *before* the stale chunk is reclaimed so
        reclaim listeners observe the block as still resolvable — the
        same ordering rule as :meth:`remap`.
        """
        index = self._lbn if isinstance(chunk.key, LbnKey) else self._fho
        existing = index.get(chunk.key)
        footprint = self._footprint(chunk)
        freed = self._footprint(existing) if existing is not None else 0
        if self._kernel.free_bytes_for(chunk.key) + freed < footprint:
            raise RuntimeError("insert without room; call make_room() first")
        if existing is chunk:
            return  # already resident under this key; nothing to do
        chunk.cache_handle = self._kernel.insert(chunk.key, chunk, footprint)
        self._used_gauge.set(self._kernel.used_bytes)
        index[chunk.key] = chunk
        if existing is not None:
            assert existing.cache_handle is not None
            self._kernel.remove(existing.cache_handle)
            self._detach(existing)
            self.counters.add("ncache.overwrite")
        san = _sanitizer.active()
        if san is not None:
            # After the stale removal, so the key reads as live again.
            san.chunk_cached(chunk)

    def bulk_load(self, chunks: Iterable[Chunk], footprint: int) -> None:
        """Warm-start fast path: insert fresh clean chunks coldest-first.

        Equivalent to :meth:`make_room` + :meth:`insert` per chunk for
        chunks that (a) are clean, (b) share one uniform ``footprint``
        and (c) are not yet resident under their key — exactly the
        warm-start shape — minus the per-insert work those properties
        make redundant (footprint recomputation, duplicate-key probing,
        a used-gauge refresh per chunk).  Shard-imbalance evictions
        behave exactly as on the general path; a dirty victim is a
        caller bug and raises.
        """
        kernel = self._kernel
        san = _sanitizer.active()
        for chunk in chunks:
            key = chunk.key
            if kernel.free_bytes_for(key) < footprint:
                for victim in kernel.make_room(footprint, key=key,
                                               on_evict=self._evicted):
                    raise RuntimeError("dirty victim during warm start")
            chunk.cache_handle = kernel.insert(key, chunk, footprint)
            index = self._lbn if isinstance(key, LbnKey) else self._fho
            index[key] = chunk
            if san is not None:
                san.chunk_cached(chunk)
        self._used_gauge.set(kernel.used_bytes)

    def drop(self, chunk: Chunk) -> None:
        """Explicitly remove a chunk (invalidation)."""
        handle = chunk.cache_handle
        if handle is not None and self._kernel.get(handle) is chunk:
            self._kernel.remove(handle)
            self._detach(chunk)

    # -- remapping -------------------------------------------------------------------

    def remap(self, fho_key: FhoKey, lbn_key: LbnKey) -> Optional[Chunk]:
        """Convert an FHO entry to an LBN entry (§3.4).

        The chunk's key changes from the FHO to the LBN; an existing LBN
        entry with the same key is overwritten ("data in the FHO cache is
        always more up-to-date").  The chunk is marked clean: remapping
        happens while the block is being flushed to stable storage.
        Returns the remapped chunk, or None if the FHO entry is gone.
        """
        chunk = self._fho.pop(fho_key, None)
        if chunk is None:
            return None
        stale = self._lbn.get(lbn_key)
        chunk.key = lbn_key
        chunk.dirty = False
        # The block's identity changed (file-relative -> disk-relative):
        # restamp the chunk's extent views at a new generation so stale
        # pre-remap views are distinguishable without byte comparison.
        chunk.bump_generation()
        assert chunk.cache_handle is not None
        # In-shard rekey keeps the recency position; across shards the
        # entry re-enters at the target shard's MRU.
        chunk.cache_handle = self._kernel.rekey(chunk.cache_handle, lbn_key)
        self._lbn[lbn_key] = chunk  # installed before the stale removal so
        # reclaim listeners observe the block as still resolvable
        if stale is not None and stale is not chunk:
            assert stale.cache_handle is not None
            self._kernel.remove(stale.cache_handle)
            self._detach(stale)
            self.counters.add("ncache.remap_overwrite")
        self.counters.add("ncache.remap")
        san = _sanitizer.active()
        if san is not None:
            san.chunk_remapped(chunk, fho_key)
        return chunk
