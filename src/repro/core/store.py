"""The network-centric cache store: LBN cache + FHO cache + shared LRU.

"The network-centric cache in an NFS server is decomposed into two parts:
an LBN cache and an FHO cache, because there are two sources of data"
(§3.4).  Both caches share one LRU list of chunks and one memory budget
(the pinned network-buffer pool).  Replacement is the paper's: touch moves
a chunk to the tail; reclamation takes from the head; clean chunks are
freed, dirty chunks are written back first (the store hands dirty victims
to the caller, which owns the I/O path).

Beyond the paper's text, the store completes the design with two pieces of
necessary engineering, both flagged in DESIGN.md:

* **pinning** — chunks referenced by an in-flight reply cannot be
  reclaimed out from under the substitution step;
* **reclaim notification** — when a chunk disappears, any file-system
  cache page still holding its key is invalidated (otherwise a later read
  hit would dereference a dangling key and serve junk).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional

from ..check import sanitizer as _sanitizer
from ..obs.trace import TraceBus
from ..sim.stats import CounterSet
from .chunk import Chunk
from .keys import FhoKey, LbnKey


class NCacheStore:
    """Memory-bounded chunk store with LBN and FHO indexes."""

    def __init__(self, capacity_bytes: int, chunk_size: int = 4096,
                 per_buffer_overhead: int = 160,
                 per_chunk_overhead: int = 64,
                 counters: Optional[CounterSet] = None,
                 trace: Optional[TraceBus] = None) -> None:
        if capacity_bytes < chunk_size:
            raise ValueError("capacity smaller than one chunk")
        self.capacity_bytes = capacity_bytes
        self.chunk_size = chunk_size
        self.per_buffer_overhead = per_buffer_overhead
        self.per_chunk_overhead = per_chunk_overhead
        self.counters = counters if counters is not None else CounterSet()
        #: structured trace bus (owned by the simulator) — optional so the
        #: store stays usable standalone in unit tests.
        self.trace = trace
        self._used_gauge = self.counters.registry.gauge(
            "ncache.used.bytes", unit="bytes")
        self._lbn: Dict[LbnKey, Chunk] = {}
        self._fho: Dict[FhoKey, Chunk] = {}
        self._lru: "OrderedDict[int, Chunk]" = OrderedDict()
        self._used = 0
        #: callbacks ``fn(chunk)`` invoked when a chunk leaves the store.
        self.reclaim_listeners: List[Callable[[Chunk], None]] = []

    # -- inspection ------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def n_chunks(self) -> int:
        return len(self._lru)

    @property
    def n_lbn(self) -> int:
        return len(self._lbn)

    @property
    def n_fho(self) -> int:
        return len(self._fho)

    def dirty_chunks(self) -> List[Chunk]:
        return [c for c in self._lru.values() if c.dirty]

    def _footprint(self, chunk: Chunk) -> int:
        return chunk.footprint(self.per_buffer_overhead,
                               self.per_chunk_overhead)

    # -- lookup -----------------------------------------------------------------

    def lookup_lbn(self, key: LbnKey, touch: bool = True) -> Optional[Chunk]:
        chunk = self._lbn.get(key)
        if chunk is None:
            self.counters.add("ncache.lbn_miss")
            return None
        self.counters.add("ncache.lbn_hit")
        if touch:
            self._touch(chunk)
        return chunk

    def lookup_fho(self, key: FhoKey, touch: bool = True) -> Optional[Chunk]:
        chunk = self._fho.get(key)
        if chunk is None:
            self.counters.add("ncache.fho_miss")
            return None
        self.counters.add("ncache.fho_hit")
        if touch:
            self._touch(chunk)
        return chunk

    def resolve(self, fho_key: Optional[FhoKey], lbn_key: Optional[LbnKey],
                touch: bool = True) -> Optional[Chunk]:
        """FHO-first lookup: dirty written data always wins (§3.4)."""
        chunk = None
        if fho_key is not None:
            chunk = self.lookup_fho(fho_key, touch)
        if chunk is None and lbn_key is not None:
            chunk = self.lookup_lbn(lbn_key, touch)
        return chunk

    def _touch(self, chunk: Chunk) -> None:
        self._lru.move_to_end(id(chunk))

    # -- insertion / eviction ------------------------------------------------------

    def make_room(self, nbytes: int) -> List[Chunk]:
        """Evict LRU chunks until ``nbytes`` fit; return dirty victims.

        Pinned chunks are skipped.  Every victim (clean or dirty) is
        removed from both indexes and announced to reclaim listeners;
        dirty victims are returned for the caller to write back.
        """
        dirty_victims: List[Chunk] = []
        while self.capacity_bytes - self._used < nbytes:
            victim = self._pick_victim()
            if victim is None:
                raise RuntimeError(
                    "NCache cannot make room: all chunks pinned")
            self._remove(victim)
            if victim.dirty:
                dirty_victims.append(victim)
                self.counters.add("ncache.evict_dirty")
            else:
                self.counters.add("ncache.evict_clean")
        return dirty_victims

    def _pick_victim(self) -> Optional[Chunk]:
        for chunk in self._lru.values():  # head = least recently used
            if not chunk.pinned:
                return chunk
        return None

    def _remove(self, chunk: Chunk) -> None:
        del self._lru[id(chunk)]
        self._used -= self._footprint(chunk)
        self._used_gauge.set(self._used)
        # Pop the index entry only if it still points at this chunk — a
        # remap may already have installed a replacement under this key.
        index = self._lbn if isinstance(chunk.key, LbnKey) else self._fho
        if index.get(chunk.key) is chunk:
            del index[chunk.key]
        if self.trace is not None and self.trace.enabled:
            self.trace.emit("ncache.evict", cat="ncache",
                            key=str(chunk.key), dirty=chunk.dirty)
        san = _sanitizer.active()
        if san is not None:
            san.chunk_evicted(chunk)
        for listener in self.reclaim_listeners:
            listener(chunk)

    def insert(self, chunk: Chunk) -> None:
        """Insert a chunk under its key, replacing any existing entry.

        Replacement of an FHO entry by a newer write is the *overwritten*
        path; caller must have called :meth:`make_room` first.  The new
        mapping is installed *before* the stale chunk is reclaimed so
        reclaim listeners observe the block as still resolvable — the
        same ordering rule as :meth:`remap`.
        """
        index = self._lbn if isinstance(chunk.key, LbnKey) else self._fho
        existing = index.get(chunk.key)
        footprint = self._footprint(chunk)
        freed = self._footprint(existing) if existing is not None else 0
        if self.capacity_bytes - self._used + freed < footprint:
            raise RuntimeError("insert without room; call make_room() first")
        self._used += footprint
        self._used_gauge.set(self._used)
        self._lru[id(chunk)] = chunk
        index[chunk.key] = chunk
        if existing is not None and existing is not chunk:
            self._remove(existing)
            self.counters.add("ncache.overwrite")
        san = _sanitizer.active()
        if san is not None:
            # After the stale removal, so the key reads as live again.
            san.chunk_cached(chunk)

    def drop(self, chunk: Chunk) -> None:
        """Explicitly remove a chunk (invalidation)."""
        if id(chunk) in self._lru:
            self._remove(chunk)

    # -- remapping -------------------------------------------------------------------

    def remap(self, fho_key: FhoKey, lbn_key: LbnKey) -> Optional[Chunk]:
        """Convert an FHO entry to an LBN entry (§3.4).

        The chunk's key changes from the FHO to the LBN; an existing LBN
        entry with the same key is overwritten ("data in the FHO cache is
        always more up-to-date").  The chunk is marked clean: remapping
        happens while the block is being flushed to stable storage.
        Returns the remapped chunk, or None if the FHO entry is gone.
        """
        chunk = self._fho.pop(fho_key, None)
        if chunk is None:
            return None
        stale = self._lbn.get(lbn_key)
        chunk.key = lbn_key
        chunk.dirty = False
        # The block's identity changed (file-relative -> disk-relative):
        # restamp the chunk's extent views at a new generation so stale
        # pre-remap views are distinguishable without byte comparison.
        chunk.bump_generation()
        self._lbn[lbn_key] = chunk  # installed before the stale removal so
        # reclaim listeners observe the block as still resolvable
        if stale is not None and stale is not chunk:
            self._remove(stale)
            self.counters.add("ncache.remap_overwrite")
        self.counters.add("ncache.remap")
        san = _sanitizer.active()
        if san is not None:
            san.chunk_remapped(chunk, fho_key)
        return chunk
