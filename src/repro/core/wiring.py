"""Wiring NCache into a pass-through server (the <150 modified lines).

:func:`attach_ncache` performs the integrations Table 1 enumerates:

* the NCache module hooks in below the network stack (RX/TX hooks);
* the VFS gets the LBN annotator (the logical-copy read/write seam);
* the initiator is the writeback path for reclaimed dirty chunks;
* a reclaim listener keeps the file-system cache coherent: a page whose
  placeholder keys can no longer be resolved is dropped, so a later read
  refetches instead of serving junk.  (Engineering completion of §3.4 —
  the paper relies on the FS cache being much smaller than NCache.)
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..fs.vfs import VFS
from ..iscsi.initiator import IscsiInitiator
from ..net.buffer import Payload, PlaceholderPayload
from ..net.host import Host
from ..sim.engine import Event
from .chunk import Chunk
from .keys import FhoKey, KeyedPayload, LbnKey
from .ncache import NCacheModule, flatten_payload
from .store import NCacheStore


def attach_ncache(host: Host, vfs: VFS,
                  initiator: Optional[IscsiInitiator],
                  capacity_bytes: int,
                  lun: int = 0,
                  strict: bool = False,
                  per_buffer_overhead: int = 160,
                  per_chunk_overhead: int = 64,
                  inherit_checksums: bool = True,
                  enable_remap: bool = True,
                  policy: str = "lru",
                  shards: int = 1) -> NCacheModule:
    """Create, wire and return an NCache module for this server."""
    store = NCacheStore(capacity_bytes, chunk_size=vfs.block_size,
                        per_buffer_overhead=per_buffer_overhead,
                        per_chunk_overhead=per_chunk_overhead,
                        counters=host.counters, trace=host.sim.trace,
                        policy=policy, shards=shards)
    image = vfs.image

    def fho_to_lbn(key: FhoKey) -> Optional[LbnKey]:
        try:
            inode = image.inode(key.ino)
        except FileNotFoundError:
            return None
        block = key.offset // image.block_size
        if block >= inode.nblocks:
            return None
        return LbnKey(lun, inode.block_lbn(block))

    writeback = None
    if initiator is not None:
        def writeback(lbn: int, payload: Payload
                      ) -> Generator[Event, Any, None]:
            yield from initiator.write(lbn, payload)

    module = NCacheModule(host, store, lun=lun, fho_to_lbn=fho_to_lbn,
                          writeback=writeback, strict=strict,
                          inherit_checksums=inherit_checksums,
                          enable_remap=enable_remap)
    vfs.lbn_annotator = module.lbn_annotator
    if initiator is not None:
        initiator.read_interceptor = module.try_serve_read

    def entry_resolvable(payload: Payload) -> bool:
        for leaf in flatten_payload(payload):
            if isinstance(leaf, KeyedPayload):
                if store.resolve(leaf.fho_key, leaf.lbn_key,
                                 touch=False) is None:
                    return False
        return True

    def on_reclaim(chunk: Chunk) -> None:
        if isinstance(chunk.key, LbnKey):
            lbn_key: Optional[LbnKey] = chunk.key
        else:
            lbn_key = chunk.lbn_hint or fho_to_lbn(chunk.key)
        if lbn_key is None:
            return
        entry = vfs.cache.peek(lbn_key.lbn)
        if entry is None:
            return
        if isinstance(entry.payload, PlaceholderPayload) or any(
                isinstance(p, PlaceholderPayload)
                for p in flatten_payload(entry.payload)):
            if not entry_resolvable(entry.payload):
                vfs.cache.invalidate(lbn_key.lbn)
                host.counters.add("ncache.fs_page_invalidated")

    store.reclaim_listeners.append(on_reclaim)
    return module
