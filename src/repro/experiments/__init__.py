"""One module per paper table/figure, plus ablations.

Each module exposes ``run(quick=True) -> ExperimentResult`` and can be
executed directly (``python -m repro.experiments.figure5``).
"""

from . import ablations, figure4, figure5, figure6, figure7, table1, table2

__all__ = ["ablations", "figure4", "figure5", "figure6", "figure7",
           "table1", "table2"]


def run_all(quick: bool = True) -> list:
    """Every table and figure, in paper order."""
    results = [
        table1.run(quick),
        table2.run(quick),
        figure4.run(quick),
        figure5.run(quick),
        figure6.run_working_set(quick),
        figure6.run_allhit(quick),
        figure7.run(quick),
    ]
    results.extend(ablations.run(quick))
    return results
