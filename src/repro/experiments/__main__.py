"""Regenerate every table and figure from the command line.

Usage::

    python -m repro.experiments                 # quick mode, all
    python -m repro.experiments --full          # paper-scale windows
    python -m repro.experiments figure5 table2  # a subset
    python -m repro.experiments --workers 4     # fan grid points out
    python -m repro.experiments --out results/  # also write .txt files
    python -m repro.experiments figure4 --trace-out fig4.trace.json

Each experiment prints its rendered table; with ``--out`` the tables are
also written one file per experiment, plus a ``<name>.metrics.json``
report holding every data point's metrics snapshot.  ``--trace-out``
captures a structured trace of every data point and writes the combined
trace — Chrome trace format by default (open in Perfetto or
``chrome://tracing``), JSON-lines when the path ends in ``.jsonl``.

``--workers N`` runs grid points on a process pool.  Simulated results
are identical for every worker count (see DESIGN.md §7); only the
wall-clock changes.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import (ablations, adaptive_budget, figure4, figure5, figure6,
               figure7, fleet_churn, fleet_scaling, policy_ablation, table1,
               table2)
from .parallel import n_trace_events, write_merged_chrome, write_merged_jsonl

RUNNERS = {
    "table1": lambda quick, workers, sink, stats: [table1.run(quick)],
    "table2": lambda quick, workers, sink, stats:
        [table2.run(quick, workers, sink, stats)],
    "figure4": lambda quick, workers, sink, stats:
        [figure4.run(quick, workers, sink, stats)],
    "figure5": lambda quick, workers, sink, stats:
        [figure5.run(quick, workers, sink, stats)],
    "figure6": lambda quick, workers, sink, stats:
        [figure6.run_working_set(quick, workers, sink, stats),
         figure6.run_allhit(quick, workers, sink, stats)],
    "figure7": lambda quick, workers, sink, stats:
        [figure7.run(quick, workers, sink, stats)],
    "fleet_scaling": lambda quick, workers, sink, stats:
        [fleet_scaling.run(quick, workers, sink, stats)],
    "fleet_churn": lambda quick, workers, sink, stats:
        [fleet_churn.run(quick, workers, sink, stats)],
    "adaptive_budget": lambda quick, workers, sink, stats:
        [adaptive_budget.run(quick, workers, sink, stats)],
    "ablations": ablations.run,
    "policy_ablation": lambda quick, workers, sink, stats:
        [policy_ablation.run(quick, workers, sink, stats)],
}


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiments", nargs="*",
                        choices=[*RUNNERS, []],
                        help="subset to run (default: all)")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale windows instead of quick mode")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="process-pool size for grid points "
                             "(default: 1, serial)")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory to write rendered tables into")
    parser.add_argument("--trace-out", type=Path, default=None,
                        help="write a structured trace of the whole run "
                             "(Chrome trace JSON; .jsonl for JSON lines)")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile and write a pstats file "
                             "(experiments.pstats, next to --out results "
                             "or in the current directory)")
    args = parser.parse_args(argv)

    names = args.experiments or list(RUNNERS)
    quick = not args.full
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
    trace_sink = [] if args.trace_out is not None else None
    profiler = None
    if args.profile:
        import cProfile
        profiler = cProfile.Profile()
        profiler.enable()
    try:
        for name in names:
            for result in RUNNERS[name](quick, args.workers,
                                        trace_sink, None):
                print(result.render())
                print()
                if args.out is not None:
                    path = args.out / f"{result.name}.txt"
                    path.write_text(result.render() + "\n")
                    metrics_path = args.out / f"{result.name}.metrics.json"
                    metrics_path.write_text(result.to_json() + "\n")
    finally:
        if profiler is not None:
            profiler.disable()
            stats_path = (args.out or Path(".")) / "experiments.pstats"
            profiler.dump_stats(stats_path)
            print(f"profile: {stats_path} "
                  f"(inspect with python -m pstats)", file=sys.stderr)
        if trace_sink is not None:
            if args.trace_out.suffix == ".jsonl":
                write_merged_jsonl(args.trace_out, trace_sink)
            else:
                write_merged_chrome(args.trace_out, trace_sink)
            print(f"trace: {args.trace_out} "
                  f"({n_trace_events(trace_sink)} events)",
                  file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
