"""Regenerate every table and figure from the command line.

Usage::

    python -m repro.experiments                 # quick mode, all
    python -m repro.experiments --full          # paper-scale windows
    python -m repro.experiments figure5 table2  # a subset
    python -m repro.experiments --out results/  # also write .txt files
    python -m repro.experiments figure4 --trace-out fig4.trace.json

Each experiment prints its rendered table; with ``--out`` the tables are
also written one file per experiment, plus a ``<name>.metrics.json``
report holding every data point's metrics snapshot.  ``--trace-out``
enables structured tracing for the whole run and writes the combined
trace — Chrome trace format by default (open in Perfetto or
``chrome://tracing``), JSON-lines when the path ends in ``.jsonl``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..obs.trace import start_tracing, stop_tracing
from . import ablations, figure4, figure5, figure6, figure7, table1, table2

RUNNERS = {
    "table1": lambda quick: [table1.run(quick)],
    "table2": lambda quick: [table2.run(quick)],
    "figure4": lambda quick: [figure4.run(quick)],
    "figure5": lambda quick: [figure5.run(quick)],
    "figure6": lambda quick: [figure6.run_working_set(quick),
                              figure6.run_allhit(quick)],
    "figure7": lambda quick: [figure7.run(quick)],
    "ablations": ablations.run,
}


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiments", nargs="*",
                        choices=[*RUNNERS, []],
                        help="subset to run (default: all)")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale windows instead of quick mode")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory to write rendered tables into")
    parser.add_argument("--trace-out", type=Path, default=None,
                        help="write a structured trace of the whole run "
                             "(Chrome trace JSON; .jsonl for JSON lines)")
    args = parser.parse_args(argv)

    names = args.experiments or list(RUNNERS)
    quick = not args.full
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
    session = start_tracing() if args.trace_out is not None else None
    try:
        for name in names:
            for result in RUNNERS[name](quick):
                print(result.render())
                print()
                if args.out is not None:
                    path = args.out / f"{result.name}.txt"
                    path.write_text(result.render() + "\n")
                    metrics_path = args.out / f"{result.name}.metrics.json"
                    metrics_path.write_text(result.to_json() + "\n")
    finally:
        if session is not None:
            stop_tracing()
            if args.trace_out.suffix == ".jsonl":
                session.write_jsonl(args.trace_out)
            else:
                session.write_chrome(args.trace_out)
            print(f"trace: {args.trace_out} ({session.n_events()} events)",
                  file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
