"""Ablations beyond the paper's figures (flagged as extensions in DESIGN.md).

* **A1 checksum inheritance** — with checksum offload disabled, compare
  the original server, NCache inheriting cached checksums (§1), and
  NCache recomputing them on every substitution.
* **A2 FS-cache size** — NCache deliberately shrinks the file-system
  cache (§3.4); this sweep shows the NCache store acting as the L2 that
  absorbs the extra FS-cache misses.
* **A3 remapping** — disable FHO→LBN remapping and observe duplicate
  cached blocks (FHO copies that never converge onto their LBN identity).
* **A4 capacity** — NCache store capacity sweep under a Zipf web load.
"""

from __future__ import annotations

from ..analysis.tables import ExperimentResult, pct_gain
from ..servers.config import MB, ServerMode, TestbedConfig
from ..servers.testbed import NfsTestbed, run_until_complete
from ..workloads.microbench import AllHitReadWorkload
from ..workloads.specsfs import SpecSfsWorkload
from ..workloads.specweb import SpecWebWorkload
from .common import (
    nfs_testbed,
    protocol,
    scaled_memory_config,
    warm_caches,
    web_testbed,
)


def _allhit_throughput(cfg_kwargs: dict, request_size: int,
                       quick: bool) -> float:
    proto = protocol(quick)
    cfg = TestbedConfig(**cfg_kwargs)
    testbed = NfsTestbed(cfg, flush_interval_s=None)
    workload = AllHitReadWorkload(testbed, request_size,
                                  streams_per_client=6)
    testbed.setup()
    run_until_complete(testbed.sim, workload.prewarm())
    workload.start()
    testbed.warmup_then_measure(proto.warmup_s, proto.measure_s)
    return testbed.meters.throughput.mb_per_second()


def run_checksum(quick: bool = True) -> ExperimentResult:
    """A1: software-checksum world (offload off), 32 KB all-hit reads."""
    result = ExperimentResult(
        name="ablation_checksum",
        title="A1: checksum inheritance with NIC offload disabled",
        columns=["config", "throughput_mbps"])
    request_size = 32768
    configs = [
        ("original (sw checksum)",
         dict(mode=ServerMode.ORIGINAL, checksum_offload=False,
              n_server_nics=2)),
        ("NCache inherit",
         dict(mode=ServerMode.NCACHE, checksum_offload=False,
              n_server_nics=2, ncache_inherit_checksums=True)),
        ("NCache recompute",
         dict(mode=ServerMode.NCACHE, checksum_offload=False,
              n_server_nics=2, ncache_inherit_checksums=False)),
        ("original (offload on)",
         dict(mode=ServerMode.ORIGINAL, checksum_offload=True,
              n_server_nics=2)),
        ("NCache (offload on)",
         dict(mode=ServerMode.NCACHE, checksum_offload=True,
              n_server_nics=2)),
    ]
    for label, kwargs in configs:
        result.add_row(config=label,
                       throughput_mbps=_allhit_throughput(
                           kwargs, request_size, quick))
    inherit = result.value("throughput_mbps", config="NCache inherit")
    recompute = result.value("throughput_mbps", config="NCache recompute")
    result.add_note(f"inheriting cached checksums is worth "
                    f"{pct_gain(inherit, recompute):+.1f}% when the NIC "
                    f"cannot offload")
    return result


def run_fs_cache_size(quick: bool = True) -> ExperimentResult:
    """A2: NCache throughput vs the (deliberately small) FS cache size."""
    result = ExperimentResult(
        name="ablation_fs_cache",
        title="A2: FS buffer cache size under NCache "
              "(double-buffering control, §3.4)",
        columns=["fs_cache_mb", "throughput_mbps", "fs_hit_ratio"])
    proto = protocol(quick)
    scale = 4 if quick else 1
    overrides = scaled_memory_config(scale)
    working_set = 300 * MB // scale
    for fs_mb in (8, 16, 32, 64, 128):
        fs_bytes = fs_mb * MB // scale
        testbed = web_testbed(ServerMode.NCACHE,
                              **{**overrides,
                                 "ncache_fs_cache_bytes": fs_bytes})
        workload = SpecWebWorkload(testbed, working_set_bytes=working_set)
        testbed.setup()
        warm_caches(testbed, workload.paths)
        workload.start()
        testbed.warmup_then_measure(proto.warmup_s, proto.measure_s)
        result.add_row(fs_cache_mb=fs_mb,
                       throughput_mbps=testbed.meters.throughput
                       .mb_per_second(),
                       fs_hit_ratio=testbed.cache.hit_ratio())
    result.add_note("throughput is nearly flat: the network-centric cache "
                    "acts as a second-level cache absorbing FS-cache "
                    "misses (§3.4)")
    return result


def run_remap(quick: bool = True) -> ExperimentResult:
    """A3: remapping on/off under a write-heavy SPECsfs mix."""
    result = ExperimentResult(
        name="ablation_remap",
        title="A3: FHO->LBN remapping on buffer-cache flush",
        columns=["config", "ops_per_sec", "remaps", "ncache_writebacks",
                 "fho_chunks_left"])
    proto = protocol(quick)
    for label, enable in (("remap on", True), ("remap off", False)):
        testbed = nfs_testbed(ServerMode.NCACHE, flush_interval_s=0.05,
                              ncache_enable_remap=enable)
        workload = SpecSfsWorkload(testbed, pct_regular=1.0,
                                   read_write_ratio=1.0,
                                   fs_size_bytes=256 * MB)
        testbed.setup()
        warm_caches(testbed, workload.names)
        workload.start()
        testbed.warmup_then_measure(proto.warmup_s, proto.measure_s)
        counters = testbed.server_host.counters
        result.add_row(config=label,
                       ops_per_sec=testbed.meters.throughput
                       .ops_per_second(),
                       remaps=counters["ncache.remap"].value,
                       ncache_writebacks=counters["ncache.writeback"].value,
                       fho_chunks_left=testbed.ncache.store.n_fho)
    result.add_note("without remapping, flushed blocks linger under their "
                    "FHO identity: the same data may be cached twice "
                    "(FHO + a later LBN fill), wasting chunk memory")
    return result


def run_capacity(quick: bool = True) -> ExperimentResult:
    """A4: NCache store capacity sweep under a Zipf web working set."""
    result = ExperimentResult(
        name="ablation_capacity",
        title="A4: NCache capacity vs throughput (Zipf working set)",
        columns=["capacity_frac", "throughput_mbps"])
    proto = protocol(quick)
    scale = 4 if quick else 1
    working_set = 600 * MB // scale
    for frac in (0.25, 0.5, 0.75, 1.0):
        overrides = scaled_memory_config(scale)
        ram = overrides.get("server_ram_bytes", 896 * MB)
        carve = overrides.get("server_kernel_carveout", 96 * MB)
        fs = overrides.get("ncache_fs_cache_bytes", 64 * MB)
        usable = ram - carve - fs
        # Shrink usable memory by inflating the kernel carve-out.
        overrides["server_kernel_carveout"] = \
            carve + int(usable * (1 - frac))
        testbed = web_testbed(ServerMode.NCACHE, **overrides)
        workload = SpecWebWorkload(testbed, working_set_bytes=working_set)
        testbed.setup()
        warm_caches(testbed, workload.paths)
        workload.start()
        testbed.warmup_then_measure(proto.warmup_s, proto.measure_s)
        result.add_row(capacity_frac=frac,
                       throughput_mbps=testbed.meters.throughput
                       .mb_per_second())
    result.add_note("Zipf popularity makes throughput degrade gracefully "
                    "as the store shrinks")
    return result


def run_memcpy_cost(quick: bool = True) -> ExperimentResult:
    """A5: how the NCache gain scales with the machine's copy cost.

    The paper's benefit is proportional to memcpy expense; sweeping the
    per-byte cost shows where NCache stops mattering (fast memory) and
    where it dominates (slow memory relative to per-packet work).
    """
    result = ExperimentResult(
        name="ablation_memcpy",
        title="A5: NCache gain vs memcpy cost (32 KB all-hit, 2 NICs)",
        columns=["memcpy_ns_per_byte", "original_mbps", "ncache_mbps",
                 "gain_pct"])
    from ..copymodel.costs import CostModel

    for ns_per_byte in (1.0, 2.0, 3.0, 5.0, 8.0):
        costs = CostModel(memcpy_ns_per_byte=ns_per_byte)
        orig = _allhit_throughput(
            dict(mode=ServerMode.ORIGINAL, n_server_nics=2, costs=costs),
            32768, quick)
        ncache = _allhit_throughput(
            dict(mode=ServerMode.NCACHE, n_server_nics=2, costs=costs),
            32768, quick)
        result.add_row(memcpy_ns_per_byte=ns_per_byte, original_mbps=orig,
                       ncache_mbps=ncache,
                       gain_pct=pct_gain(ncache, orig))
    result.add_note("the default calibration (3 ns/B ~ P3-class memory) "
                    "sits in the steep part of the curve")
    return result


def run_daemon_count(quick: bool = True) -> ExperimentResult:
    """A6: nfsd pool size tuning (the paper tunes this per experiment)."""
    result = ExperimentResult(
        name="ablation_daemons",
        title="A6: NFS daemon count vs all-miss throughput (NCache, 32 KB)",
        columns=["n_daemons", "throughput_mbps", "server_cpu_pct"])
    from ..workloads.microbench import SequentialReadWorkload

    proto = protocol(quick)
    for n_daemons in (2, 4, 8, 16, 32):
        testbed = nfs_testbed(ServerMode.NCACHE, n_daemons=n_daemons,
                              flush_interval_s=None)
        workload = SequentialReadWorkload(testbed, 32768,
                                          file_size=128 * MB,
                                          streams_per_client=12)
        testbed.setup()
        workload.start()
        testbed.warmup_then_measure(proto.warmup_s, proto.measure_s)
        result.add_row(n_daemons=n_daemons,
                       throughput_mbps=testbed.meters.throughput
                       .mb_per_second(),
                       server_cpu_pct=testbed.server_cpu_utilization()
                       * 100)
    result.add_note("too few daemons starve the disk pipeline; returns "
                    "flatten once concurrency covers storage latency — "
                    "the tuning the paper performs per request size")
    return result


def run_loss(quick: bool = True) -> ExperimentResult:
    """A7: throughput under UDP loss — retransmission from the cache.

    Lost NFS replies are retransmitted after the client's RTO; under
    NCache the replayed reply is substituted from the network-centric
    cache again (no copies), while the original server re-copies the data
    for every retransmission.
    """
    result = ExperimentResult(
        name="ablation_loss",
        title="A7: all-hit throughput vs UDP loss rate (32 KB)",
        columns=["loss_pct", "mode", "throughput_mbps", "retransmissions"])
    from ..workloads.microbench import AllHitReadWorkload

    proto = protocol(quick)
    for loss in (0.0, 0.005, 0.02):
        for mode in (ServerMode.ORIGINAL, ServerMode.NCACHE):
            testbed = nfs_testbed(mode, n_nics=2, n_daemons=8,
                                  flush_interval_s=None)
            workload = AllHitReadWorkload(testbed, 32768,
                                          streams_per_client=6)
            testbed.setup()
            run_until_complete(testbed.sim, workload.prewarm())
            testbed.network.set_loss(loss, seed=13)
            workload.start()
            testbed.warmup_then_measure(proto.warmup_s, proto.measure_s)
            retrans = sum(c.retransmissions for c in testbed.clients)
            result.add_row(loss_pct=loss * 100, mode=mode.label,
                           throughput_mbps=testbed.meters.throughput
                           .mb_per_second(),
                           retransmissions=retrans)
    result.add_note("loss costs everyone RTO stalls; NCache keeps its "
                    "relative advantage because retransmitted replies are "
                    "re-substituted, not re-copied")
    return result


def run_network_ready_disk(quick: bool = True) -> ExperimentResult:
    """A8 — the paper's §6 future work, prototyped.

    "It is possible to take this idea one step further by organizing
    disk-resident data in a network-ready format."  With blocks pre-framed
    on disk, the *storage server's* read path also goes copy-free; on the
    all-miss workload — where the storage CPU is the bottleneck for
    NCache (Figure 4) — that lifts end-to-end throughput further.
    """
    result = ExperimentResult(
        name="ablation_netdisk",
        title="A8: network-ready on-disk format (§6), 32 KB all-miss",
        columns=["server", "disk_format", "throughput_mbps",
                 "storage_cpu_pct"])
    from ..workloads.microbench import SequentialReadWorkload

    proto = protocol(quick)
    for mode in (ServerMode.ORIGINAL, ServerMode.NCACHE):
        for ready in (False, True):
            testbed = nfs_testbed(mode, n_daemons=24,
                                  flush_interval_s=None,
                                  storage_network_ready_disk=ready)
            workload = SequentialReadWorkload(testbed, 32768,
                                              file_size=256 * MB,
                                              streams_per_client=12)
            testbed.setup()
            workload.start()
            testbed.warmup_then_measure(proto.warmup_s, proto.measure_s)
            result.add_row(server=mode.label,
                           disk_format="network-ready" if ready
                           else "conventional",
                           throughput_mbps=testbed.meters.throughput
                           .mb_per_second(),
                           storage_cpu_pct=testbed
                           .storage_cpu_utilization() * 100)
    result.add_note("the network-ready disk format helps most where the "
                    "storage CPU is the bottleneck — i.e. exactly when the "
                    "pass-through server already runs NCache")
    return result


#: The ablation entry points, in report order.  Each is one grid unit:
#: ablations parallelize per *ablation* rather than per cell because
#: several of them derive notes from cross-cell comparisons.
ABLATIONS = ("run_checksum", "run_fs_cache_size", "run_remap",
             "run_capacity", "run_memcpy_cost", "run_daemon_count",
             "run_loss", "run_network_ready_disk")


def grid(quick: bool = True) -> list:
    """One picklable spec per ablation (each returns an ExperimentResult)."""
    from .parallel import RunSpec
    return [RunSpec(fn=f"repro.experiments.ablations:{fn_name}",
                    args=(quick,), capture_reports=False,
                    label=f"ablations/{fn_name[4:]}")
            for fn_name in ABLATIONS]


def run(quick: bool = True, workers: int = 1,
        trace_sink: list = None, stats: list = None) -> list:
    """All ablations, A1 through A8."""
    from .parallel import drain, run_specs
    return [rr.value
            for rr in drain(run_specs(grid(quick), workers=workers,
                                      trace=trace_sink is not None),
                            trace_sink, stats)]


if __name__ == "__main__":
    for res in run(quick=True):
        print(res.render())
        print()
