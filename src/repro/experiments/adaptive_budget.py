"""Adaptive memory-budget arbiter under a phase-shifting workload.

The paper fixes the FS-cache/NCache split at configuration time (§3.4:
the buffer cache is "deliberately small"), which is right for any one
workload but wrong across a day: a read-heavy batch window wants every
byte in the LBN chunk store, while a metadata-heavy (web-style) window
wants a buffer cache big enough for the dentry/inode working set —
blocks that *never* enter the chunk store, because the packet classifier
caches regular data only.

This experiment drives one NCache server through three consecutive
phases — read-heavy (large-file extents over a data set slightly bigger
than the chunk store), write-heavy (whole-block overwrites with
read-backs), and a web-style phase (LOOKUP/GETATTR/READDIR-weighted
traffic over tens of thousands of small files, plus a hot small-file
read mix) — and compares every static split against the
:class:`~repro.cache.arbiter.GhostGradient` controller at the *same
total budget*.  "Web-style" means the access pattern of a web/metadata
server expressed as NFS traffic: the server kind cannot change mid-run,
the working set can.

The score is backend reads per 1000 operations
(:attr:`~repro.iscsi.target.IscsiTarget.reads_served`), per phase, and
the phases are aggregated with *equal weight* (``mean_bpk``): the load
is closed-loop, so a split with better hit rates completes more
operations, and ops-weighting would let the dominant phase's op count
dilute the others (Simpson's paradox between splits).  No static split
wins all three phases — the read phase rewards a minimal buffer cache,
the write and web phases a large one — so the controller, which drains
the buffer cache to its floor while data misses dominate and regrows it
when dirty/metadata ghost hits appear, beats every static point on the
aggregate.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from ..analysis.tables import ExperimentResult
from ..cache.arbiter import ArbiterSpec
from ..net.buffer import VirtualPayload
from ..nfs.client import NfsClient
from ..nfs.protocol import FileHandle, NfsProc
from ..servers.config import MB, ServerMode
from ..servers.testbed import NfsTestbed
from ..sim.engine import Event
from ..sim.process import Process, start
from ..sim.rng import substream
from ..workloads.base import WorkloadBase
from ..workloads.specsfs import _weighted_choice
from .common import (nfs_testbed, protocol, scaled_memory_config,
                     warm_caches)
from .parallel import RunSpec, drain, run_specs

KB = 1024

#: Memory-geometry shrink factor (quick / full) — same scheme as the
#: cache-geometry experiments: ratios intact, wall-clock small.
SCALE_QUICK = 16
SCALE_FULL = 4

#: Static buffer-cache budgets to sweep, as fractions of the total
#: cache budget.  0.08 is the configuration-default split (64 MB of
#: 800 MB), so the sweep brackets the paper's choice on both sides.
STATIC_FRACTIONS = (0.02, 0.04, 0.08, 0.16)

#: The adaptive point's controller settings.  The tick is fast relative
#: to the measurement segments (tens of ticks per phase) so the
#: controller converges well inside a phase.
GHOST_SPEC = ArbiterSpec(kind="ghost", tick_s=0.005, step_fraction=0.05,
                         hysteresis=1.5, min_signal=4)

#: Per-phase op mixes.
METADATA_MIX = ((NfsProc.LOOKUP, 0.60), (NfsProc.GETATTR, 0.30),
                (NfsProc.READDIR, 0.10))


def timeline(quick: bool = True) -> Dict[str, float]:
    """Absolute phase boundaries (simulated seconds).

    The warmup runs the read phase, so the controller's steady state at
    ``warm_end`` is the read-tuned split; measurement then spans one
    segment per phase.  Segments are three protocol windows long: a
    phase must outlive its own cold-start transient (cache fill runs at
    disk speed) for the split to matter.
    """
    proto = protocol(quick)
    seg = 3 * proto.measure_s
    warm_end = 2 * proto.warmup_s
    return {
        "warm_end": warm_end,
        "read_end": warm_end + seg,
        "write_end": warm_end + 2 * seg,
        "web_end": warm_end + 3 * seg,
    }


class PhaseShiftWorkload(WorkloadBase):
    """Closed-loop NFS load that changes character at fixed sim times.

    Three file populations are created at bind time:

    * ``abd/*`` — the read phase's data set, sized ~1.15x the largest
      chunk-store budget so the read phase is capacity-bound and every
      byte moved into the chunk store pays off linearly;
    * ``abw/*`` — the write phase's overwrite set;
    * ``abm/*`` — the web phase's small files.  Their payloads are tiny
      and hot (the chunk store absorbs them easily); their *metadata* —
      one dirent block per 64 files, one inode block per 32 — is the
      phase's real working set, and only the FS buffer cache can hold
      it.
    """

    def __init__(self, boundaries: Dict[str, float],
                 total_budget_bytes: int,
                 testbed: Optional[NfsTestbed] = None,
                 streams_per_client: int = 8,
                 seed: int = 29) -> None:
        self.boundaries = dict(boundaries)
        self.streams_per_client = streams_per_client
        self.seed = seed
        block = 4 * KB
        self.data_file_size = 256 * KB
        self.n_data_files = max(
            1, int(1.15 * total_budget_bytes) // self.data_file_size)
        self.write_file_size = 256 * KB
        self.n_write_files = 32
        self.web_file_size = block
        # Metadata footprint is ~192 B/file (64 B dirent + 128 B inode
        # slot); size the metadata working set at ~18% of the total
        # budget — above every static split in STATIC_FRACTIONS.
        self.n_web_files = int(0.18 * total_budget_bytes) // 192
        self.n_web_hot = min(2048, self.n_web_files)
        self.read_extent = 16 * KB
        self._data_handles: List[FileHandle] = []
        self._write_handles: List[FileHandle] = []
        self._web_handles: List[FileHandle] = []
        self._web_names: List[str] = []
        self._write_tag = 0xAB5 << 32
        self._processes: List[Process] = []
        super().__init__(testbed)

    def _bind(self, testbed: NfsTestbed) -> None:
        self.testbed = testbed
        self.data_names: List[str] = []
        for i in range(self.n_data_files):
            name = f"abd/{i:04d}"
            testbed.image.create_file(name, self.data_file_size)
            self._data_handles.append(testbed.file_handle(name))
            self.data_names.append(name)
        for i in range(self.n_write_files):
            name = f"abw/{i:03d}"
            testbed.image.create_file(name, self.write_file_size)
            self._write_handles.append(testbed.file_handle(name))
        for i in range(self.n_web_files):
            name = f"abm/{i:06d}"
            testbed.image.create_file(name, self.web_file_size)
            self._web_handles.append(testbed.file_handle(name))
            self._web_names.append(name)

    def _params(self) -> Dict[str, Any]:
        return {"n_data_files": self.n_data_files,
                "n_write_files": self.n_write_files,
                "n_web_files": self.n_web_files,
                "streams_per_client": self.streams_per_client,
                "boundaries": self.boundaries, "seed": self.seed}

    def start(self) -> None:
        for c, client in enumerate(self.testbed.clients):
            for s in range(self.streams_per_client):
                rng = substream(self.seed, "abp", c, s)
                self._processes.append(
                    start(self.testbed.sim, self._worker(client, rng),
                          name=f"abp-{c}-{s}"))

    # -- op generation -------------------------------------------------------

    def _worker(self, client: NfsClient, rng
                ) -> Generator[Event, Any, None]:
        sim = self.testbed.sim
        meters = self.testbed.meters
        read_end = self.boundaries["read_end"]
        write_end = self.boundaries["write_end"]
        while True:
            issued_at = sim.now
            if sim.now < read_end:
                yield from self._read_op(client, rng, meters)
            elif sim.now < write_end:
                yield from self._write_op(client, rng, meters)
            else:
                yield from self._web_op(client, rng, meters)
            meters.record_latency(sim.now - issued_at)

    def _read_op(self, client, rng, meters):
        fh = self._data_handles[rng.randrange(self.n_data_files)]
        slots = self.data_file_size // self.read_extent
        offset = rng.randrange(slots) * self.read_extent
        dgram = yield from client.read(fh, offset, self.read_extent)
        meters.throughput.record(dgram.message.count)

    def _write_op(self, client, rng, meters):
        fh = self._write_handles[rng.randrange(self.n_write_files)]
        slots = self.write_file_size // self.web_file_size
        offset = rng.randrange(slots) * self.web_file_size
        if rng.random() < 0.8:
            self._write_tag += 1
            data = VirtualPayload(self._write_tag, 0, self.web_file_size)
            dgram = yield from client.write(fh, offset, data)
        else:
            dgram = yield from client.read(fh, offset, self.web_file_size)
        meters.throughput.record(dgram.message.count)

    def _web_op(self, client, rng, meters):
        # Skewed popularity (Zipf-like head): re-references concentrate
        # on the warm head of the namespace, so a larger buffer cache
        # both hits more often and — when too small — produces the
        # recently-evicted re-misses the ghost estimator measures.
        if rng.random() < 0.6:
            fidx = int(self.n_web_files * rng.random() ** 3)
            proc = _weighted_choice(rng, METADATA_MIX)
            if proc is NfsProc.LOOKUP:
                yield from client.lookup(self._web_names[fidx])
            elif proc is NfsProc.READDIR:
                yield from client.call(proc, name=self._web_names[fidx])
            else:
                yield from client.call(proc, fh=self._web_handles[fidx])
            meters.throughput.record(0)
        else:
            fidx = int(self.n_web_hot * rng.random() ** 3)
            dgram = yield from client.read(self._web_handles[fidx], 0,
                                           self.web_file_size)
            meters.throughput.record(dgram.message.count)


def measure_point(split: str, quick: bool = True,
                  reports: dict = None) -> dict:
    """One run: ``split`` is ``"ghost"`` or a static fraction string.

    Every point gets the same total cache budget; static points move
    the boundary via ``ncache_fs_cache_bytes``, the adaptive point
    starts from the configuration default and lets the controller move
    bytes.
    """
    t = timeline(quick)
    scale = SCALE_QUICK if quick else SCALE_FULL
    overrides = scaled_memory_config(scale)
    overrides["inode_table_blocks"] = 4096 if quick else 16384
    # Faster disks keep cold-start transients (cache fill, compulsory
    # metadata misses) short relative to the phase segments; every
    # point sees the same disks, so the comparison is unaffected.
    overrides["disk_seek_ms"] = 1.0
    overrides["disk_rotation_ms"] = 0.5
    if split == "ghost":
        overrides["arbiter"] = GHOST_SPEC
    else:
        total = (overrides["server_ram_bytes"]
                 - overrides["server_kernel_carveout"])
        overrides["ncache_fs_cache_bytes"] = int(float(split) * total)
    testbed = nfs_testbed(ServerMode.NCACHE, n_daemons=16, **overrides)

    load = PhaseShiftWorkload(t, testbed.config.cache_memory_bytes,
                              testbed)
    warm_caches(testbed, load.data_names)
    testbed.setup()
    load.start()
    testbed.sim.run(until=t["warm_end"])
    testbed.reset_measurements()

    def ops() -> float:
        return testbed.meters.throughput.ops.value

    segments: Dict[str, Dict[str, float]] = {}
    backend_mark, ops_mark = testbed.target.reads_served, ops()
    for name, until in (("read", t["read_end"]),
                        ("write", t["write_end"]),
                        ("web", t["web_end"])):
        testbed.sim.run(until=until)
        backend_now, ops_now = testbed.target.reads_served, ops()
        segments[name] = {"backend": backend_now - backend_mark,
                          "ops": ops_now - ops_mark}
        backend_mark, ops_mark = backend_now, ops_now

    if reports is not None:
        key = f"adaptive_budget/{split}"
        snapshot = testbed.metrics_snapshot()
        snapshot["segments"] = segments
        reports[key] = snapshot

    def per_kop(segment: Dict[str, float]) -> float:
        if not segment["ops"]:
            return 0.0
        return 1000.0 * segment["backend"] / segment["ops"]

    counters = testbed.server_host.counters
    fs_budget = testbed.arbiter.lease("bcache").budget_bytes
    return {
        "split": split,
        "fs_mb": round(fs_budget / MB, 2),
        "read_bpk": per_kop(segments["read"]),
        "write_bpk": per_kop(segments["write"]),
        "web_bpk": per_kop(segments["web"]),
        "mean_bpk": sum(per_kop(s) for s in segments.values()) / 3.0,
        "ops": int(sum(s["ops"] for s in segments.values())),
        "moves": int(counters["arbiter.moves"].total),
        "moved_mb": round(counters["arbiter.moved_bytes"].total / MB,
                          1),
    }


def grid(quick: bool = True) -> List[RunSpec]:
    """Static sweep plus the adaptive point, as picklable grid points."""
    splits = [f"{f}" for f in STATIC_FRACTIONS] + ["ghost"]
    return [RunSpec(fn="repro.experiments.adaptive_budget:measure_point",
                    args=(split, quick),
                    label=f"adaptive_budget/{split}")
            for split in splits]


def run(quick: bool = True, workers: int = 1,
        trace_sink: list = None, stats: list = None) -> ExperimentResult:
    """The full sweep: every static split vs the GhostGradient point."""
    result = ExperimentResult(
        name="adaptive_budget",
        title="Adaptive cache-budget arbiter vs static splits "
              "(read-heavy -> write-heavy -> web phases, one run)",
        columns=["split", "fs_mb", "read_bpk", "write_bpk", "web_bpk",
                 "mean_bpk", "ops", "moves", "moved_mb"])
    for rr in drain(run_specs(grid(quick), workers=workers,
                              trace=trace_sink is not None),
                    trace_sink, stats):
        result.add_row(**rr.value)
        result.reports.update(rr.report)
    statics = [row for row in result.rows if row["split"] != "ghost"]
    ghost = result.value("mean_bpk", split="ghost")
    best = min(statics, key=lambda row: row["mean_bpk"])
    if best["mean_bpk"]:
        saved = 100.0 * (best["mean_bpk"] - ghost) / best["mean_bpk"]
        result.add_note(
            f"aggregate: the controller's {ghost:.1f} backend reads per "
            f"1000 ops (equal-weight phase mean) beats the best static "
            f"split (fs={best['fs_mb']} MB at {best['mean_bpk']:.1f}) "
            f"by {saved:.1f}% at the same total budget")
    moves = result.value("moves", split="ghost")
    moved = result.value("moved_mb", split="ghost")
    result.add_note(
        f"the controller made {moves:.0f} moves ({moved:.1f} MB total), "
        f"draining the FS cache for the read phase and regrowing it for "
        f"the web phase's metadata working set")
    return result


if __name__ == "__main__":
    print(run(quick=True).render())
