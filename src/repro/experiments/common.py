"""Shared experiment machinery: testbed builders, warm-start, durations.

Every experiment follows the same protocol: build a testbed for one
:class:`ServerMode`, install a workload, warm up, reset meters, measure.
``quick=True`` (the default for tests and CI) shrinks the simulated
windows — and, for the cache-geometry experiments, the memory sizes,
keeping all *ratios* intact while cutting wall-clock time.

Warm-start (:func:`warm_caches`) pre-populates the server's caches with a
ranked file set directly, instead of simulating tens of seconds of cache
fill: measurements start from the steady state the paper measures in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.chunk import Chunk
from ..core.keys import KeyedPayload, LbnKey
from ..net.buffer import JunkPayload
from ..servers.config import MB, ServerMode
from ..servers.spec import TestbedSpec
from ..servers.testbed import NfsTestbed, WebTestbed

ALL_MODES = (ServerMode.ORIGINAL, ServerMode.BASELINE, ServerMode.NCACHE)

#: Request sizes of Figures 4 and 5.
NFS_REQUEST_SIZES = (4096, 8192, 16384, 32768)
#: Request sizes of Figure 6(b).
WEB_REQUEST_SIZES = (16384, 32768, 65536, 131072)


@dataclass(frozen=True)
class Protocol:
    """Measurement windows (simulated seconds)."""

    warmup_s: float
    measure_s: float


QUICK = Protocol(warmup_s=0.15, measure_s=0.35)
FULL = Protocol(warmup_s=0.4, measure_s=1.0)


def protocol(quick: bool) -> Protocol:
    """The measurement windows for quick or full mode."""
    return QUICK if quick else FULL


def nfs_testbed(mode: ServerMode, n_nics: int = 1, n_daemons: int = 16,
                flush_interval_s: Optional[float] = 0.25,
                **config_overrides) -> NfsTestbed:
    """A fully-built NFS testbed for one server mode."""
    spec = TestbedSpec.nfs(mode, flush_interval_s=flush_interval_s,
                           n_server_nics=n_nics, n_daemons=n_daemons,
                           **config_overrides)
    return spec.build()


def web_testbed(mode: ServerMode, n_nics: int = 2,
                connections_per_client: int = 6,
                **config_overrides) -> WebTestbed:
    """A fully-built kHTTPd testbed for one server mode."""
    spec = TestbedSpec.web(mode,
                           connections_per_client=connections_per_client,
                           n_server_nics=n_nics, **config_overrides)
    return spec.build()


def warm_caches(testbed, ranked_names: Sequence[str]) -> None:
    """Pre-populate server caches with files, hottest last (MRU).

    ``ranked_names`` is hottest-first; insertion is coldest-first so the
    LRU order after warm-start matches a long-running steady state.  Only
    what fits stays resident, exactly as eviction would leave it.
    """
    mode = testbed.config.mode
    image = testbed.image
    block_size = image.block_size
    if mode is ServerMode.NCACHE:
        _warm_ncache(testbed, ranked_names)
        return
    # Original/baseline: fill the file-system buffer cache.
    cache = testbed.cache
    capacity = cache.capacity_blocks
    # Collect (hottest-first) blocks until the cache is full.
    blocks: List[tuple] = []
    for name in ranked_names:
        inode = image.lookup(name)
        for b in range(inode.nblocks):
            if len(blocks) >= capacity:
                break
            blocks.append((inode, b))
        if len(blocks) >= capacity:
            break
    for inode, b in reversed(blocks):  # coldest first
        lbn = inode.block_lbn(b)
        if mode is ServerMode.BASELINE:
            payload = JunkPayload(block_size)
        else:
            # All warm blocks are file data, so build the virtual
            # payload directly instead of re-deriving the owner from
            # the LBN (a bisect per block; warm-start fills tens of
            # thousands).
            payload = image.file_payload(inode, b * block_size,
                                         block_size)
        cache.make_room(1)
        cache.insert(lbn, payload)


def _warm_ncache(testbed, ranked_names: Sequence[str]) -> None:
    """NCache warm-start: chunks in the LBN cache, keys in the FS cache."""
    image = testbed.image
    store = testbed.ncache.store
    block_size = image.block_size
    mss = testbed.config.costs.tcp_mss
    lun = testbed.ncache.lun
    # Budget in chunk footprints.
    sample_chunk = Chunk.from_payload(LbnKey(lun, 0),
                                      JunkPayload(block_size), mss)
    footprint = sample_chunk.footprint(store.per_buffer_overhead,
                                       store.per_chunk_overhead)
    capacity = store.capacity_bytes // footprint
    blocks: List[tuple] = []
    for name in ranked_names:
        inode = image.lookup(name)
        for b in range(inode.nblocks):
            if len(blocks) >= capacity:
                break
            blocks.append((inode, b))
        if len(blocks) >= capacity:
            break
    def warm_chunks():
        for inode, b in reversed(blocks):
            lbn = inode.block_lbn(b)
            # All warm blocks are file data: build the virtual payload
            # directly rather than re-deriving the owner from the LBN.
            payload = image.file_payload(inode, b * block_size,
                                         block_size)
            # Compact chunks: one extent descriptor per block; the
            # buffer list (with csum_known set, as if the block arrived
            # over the wire and was verified) only springs into
            # existence for blocks the workload actually touches.
            yield Chunk.from_payload(LbnKey(lun, lbn), payload, mss,
                                     csum_known=True)

    store.bulk_load(warm_chunks(), footprint)
    # FS cache: hottest blocks as key-only pages.
    fs_capacity = testbed.cache.capacity_blocks
    for inode, b in reversed(blocks[:fs_capacity]):
        lbn = inode.block_lbn(b)
        testbed.cache.make_room(1)
        testbed.cache.insert(
            lbn, KeyedPayload(block_size, lbn_key=LbnKey(lun, lbn)))


def scaled_memory_config(scale: int = 1) -> dict:
    """Config overrides shrinking the server memory geometry by ``scale``.

    All cache-size ratios (RAM : carve-out : FS cache) are preserved, so
    working-set sweeps keep their shape while quick runs stay small.
    """
    if scale == 1:
        return {}
    return {
        "server_ram_bytes": 896 * MB // scale,
        "server_kernel_carveout": 96 * MB // scale,
        "ncache_fs_cache_bytes": 64 * MB // scale,
    }
