"""Figure 4: NFS all-miss workload — throughput and server CPU utilization.

Paper: sequential reads of a 2 GB file, request sizes 4–32 KB, three
server configurations.  Expected shape (§5.4):

* NFS-original is server-CPU bound (utilization pinned at 100%);
* NFS-NCache and NFS-baseline track each other and shift the bottleneck
  to the storage server ("the storage server's CPU remains saturated");
* for request sizes ≥16 KB the NCache improvement is 29–36%.
"""

from __future__ import annotations

from typing import List

from ..analysis.tables import ExperimentResult, pct_gain
from ..servers.config import ServerMode
from ..workloads.microbench import SequentialReadWorkload
from .common import ALL_MODES, NFS_REQUEST_SIZES, nfs_testbed, protocol
from .parallel import RunSpec, drain, run_specs

GB = 1 << 30


def measure_point(mode: ServerMode, request_size: int, quick: bool = True,
                  streams_per_client: int = 12,
                  reports: dict = None) -> dict:
    """One (mode, request size) cell of Figure 4.

    When ``reports`` is given, the testbed's full metrics snapshot is
    stored there under ``"<mode>/<request_size>"``.
    """
    proto = protocol(quick)
    file_size = (256 << 20) if quick else 2 * GB
    testbed = nfs_testbed(mode, n_nics=1, n_daemons=24,
                          flush_interval_s=None)
    workload = SequentialReadWorkload(testbed, request_size,
                                      file_size=file_size,
                                      streams_per_client=streams_per_client)
    testbed.setup()
    workload.start()
    testbed.warmup_then_measure(proto.warmup_s, proto.measure_s)
    if reports is not None:
        reports[f"{mode.value}/{request_size}"] = testbed.metrics_snapshot()
    return {
        "mode": mode.label,
        "request_kb": request_size // 1024,
        "throughput_mbps": testbed.meters.throughput.mb_per_second(),
        "server_cpu_pct": testbed.server_cpu_utilization() * 100,
        "storage_cpu_pct": testbed.storage_cpu_utilization() * 100,
    }


def grid(quick: bool = True) -> List[RunSpec]:
    """The sweep as independent, picklable grid points."""
    return [RunSpec(fn="repro.experiments.figure4:measure_point",
                    args=(mode, request_size, quick),
                    label=f"figure4/{mode.value}/{request_size}")
            for mode in ALL_MODES
            for request_size in NFS_REQUEST_SIZES]


def run(quick: bool = True, workers: int = 1,
        trace_sink: list = None, stats: list = None) -> ExperimentResult:
    """The full Figure 4 sweep."""
    result = ExperimentResult(
        name="figure4",
        title="Figure 4: NFS all-miss — throughput (a) and CPU (b)",
        columns=["mode", "request_kb", "throughput_mbps",
                 "server_cpu_pct", "storage_cpu_pct"])
    for rr in drain(run_specs(grid(quick), workers=workers,
                              trace=trace_sink is not None),
                    trace_sink, stats):
        result.add_row(**rr.value)
        result.reports.update(rr.report)
    for request_kb in (16, 32):
        orig = result.value("throughput_mbps", mode="original",
                            request_kb=request_kb)
        ncache = result.value("throughput_mbps", mode="NCache",
                              request_kb=request_kb)
        result.add_note(
            f"{request_kb} KB: NCache vs original "
            f"{pct_gain(ncache, orig):+.1f}% (paper: +29% to +36%)")
    return result


if __name__ == "__main__":
    print(run(quick=True).render())
