"""Figure 5: NFS all-hit workload — CPU (1 NIC) and throughput (2 NICs).

Paper (§5.4): repeated reads of a 5 MB file, everything served from the
server's cache.

* (a) one NIC: the link is the bottleneck; NFS-original's CPU still
  saturates while NCache/baseline CPU falls with request size (up to
  42%/49% lower at <32 KB).
* (b) two NICs: the CPU is the bottleneck; at 32 KB NFS-NCache beats
  NFS-original by 92% and NFS-baseline by up to 143%.
"""

from __future__ import annotations

from typing import List

from ..analysis.tables import ExperimentResult, pct_gain
from ..servers.config import ServerMode
from ..servers.testbed import run_until_complete
from ..workloads.microbench import AllHitReadWorkload
from .common import ALL_MODES, NFS_REQUEST_SIZES, nfs_testbed, protocol
from .parallel import RunSpec, drain, run_specs


def measure_point(mode: ServerMode, request_size: int, n_nics: int,
                  quick: bool = True, streams_per_client: int = 6,
                  reports: dict = None) -> dict:
    """One (mode, request size, NIC count) cell of Figure 5.

    When ``reports`` is given, the testbed's full metrics snapshot is
    stored there under ``"<mode>/<nics>nic/<request_size>"``.
    """
    proto = protocol(quick)
    testbed = nfs_testbed(mode, n_nics=n_nics, n_daemons=8,
                          flush_interval_s=None)
    workload = AllHitReadWorkload(testbed, request_size,
                                  streams_per_client=streams_per_client)
    testbed.setup()
    run_until_complete(testbed.sim, workload.prewarm())
    workload.start()
    testbed.warmup_then_measure(proto.warmup_s, proto.measure_s)
    if reports is not None:
        reports[f"{mode.value}/{n_nics}nic/{request_size}"] = \
            testbed.metrics_snapshot()
    return {
        "mode": mode.label,
        "nics": n_nics,
        "request_kb": request_size // 1024,
        "throughput_mbps": testbed.meters.throughput.mb_per_second(),
        "server_cpu_pct": testbed.server_cpu_utilization() * 100,
    }


def grid(quick: bool = True) -> List[RunSpec]:
    """The sweep as independent, picklable grid points."""
    return [RunSpec(fn="repro.experiments.figure5:measure_point",
                    args=(mode, request_size, n_nics, quick),
                    label=f"figure5/{mode.value}/{n_nics}nic/{request_size}")
            for n_nics in (1, 2)
            for mode in ALL_MODES
            for request_size in NFS_REQUEST_SIZES]


def run(quick: bool = True, workers: int = 1,
        trace_sink: list = None, stats: list = None) -> ExperimentResult:
    """The full Figure 5 sweep, both panels."""
    result = ExperimentResult(
        name="figure5",
        title="Figure 5: NFS all-hit — CPU with 1 NIC (a), "
              "throughput with 2 NICs (b)",
        columns=["mode", "nics", "request_kb", "throughput_mbps",
                 "server_cpu_pct"])
    for rr in drain(run_specs(grid(quick), workers=workers,
                              trace=trace_sink is not None),
                    trace_sink, stats):
        result.add_row(**rr.value)
        result.reports.update(rr.report)
    orig = result.value("throughput_mbps", mode="original", nics=2,
                        request_kb=32)
    ncache = result.value("throughput_mbps", mode="NCache", nics=2,
                          request_kb=32)
    base = result.value("throughput_mbps", mode="baseline", nics=2,
                        request_kb=32)
    result.add_note(f"32 KB, 2 NICs: NCache {pct_gain(ncache, orig):+.1f}% "
                    f"(paper: +92%), baseline {pct_gain(base, orig):+.1f}% "
                    f"(paper: up to +143%)")
    orig_cpu = result.value("server_cpu_pct", mode="original", nics=1,
                            request_kb=32)
    nc_cpu = result.value("server_cpu_pct", mode="NCache", nics=1,
                          request_kb=32)
    result.add_note(f"32 KB, 1 NIC: CPU saving NCache vs original "
                    f"{orig_cpu - nc_cpu:.1f} points at link-bound "
                    f"throughput (paper: up to 42-52)")
    return result


if __name__ == "__main__":
    print(run(quick=True).render())
