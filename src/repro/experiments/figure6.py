"""Figure 6: kHTTPd — SPECweb99 working-set sweep (a), all-hit sizes (b).

Paper (§5.5):

* (a) throughput falls as the working set grows (cache hit ratio drops);
  kHTTPd-NCache improves on kHTTPd-original by 10–20% and kHTTPd-baseline
  by ~40%; NCache's curve drops hardest between 500 MB and 750 MB because
  its chunk descriptors eat into effective cache capacity;
* (b) under the all-hit workload the NCache improvement grows with the
  request size, 8% at 16 KB up to 47% at 128 KB.
"""

from __future__ import annotations

from typing import List

from ..analysis.tables import ExperimentResult, pct_gain
from ..servers.config import MB, ServerMode
from ..servers.testbed import run_until_complete
from ..workloads.specweb import AllHitWebWorkload, SpecWebWorkload
from .common import (
    ALL_MODES,
    WEB_REQUEST_SIZES,
    protocol,
    scaled_memory_config,
    warm_caches,
    web_testbed,
)
from .parallel import RunSpec, drain, run_specs

#: Paper working-set sizes (MB) and the quick-mode scale divisor.
FULL_WORKING_SETS_MB = (250, 500, 650, 750, 900)
QUICK_SCALE = 4


def measure_working_set(mode: ServerMode, working_set_mb: int,
                        quick: bool = True, reports: dict = None) -> dict:
    """One (mode, working set) cell of Figure 6(a).

    When ``reports`` is given, the testbed's full metrics snapshot is
    stored there under ``"<mode>/<working_set_mb>mb"``.
    """
    proto = protocol(quick)
    scale = QUICK_SCALE if quick else 1
    overrides = scaled_memory_config(scale)
    testbed = web_testbed(mode, **overrides)
    workload = SpecWebWorkload(testbed,
                               working_set_bytes=working_set_mb * MB // scale)
    testbed.setup()
    warm_caches(testbed, workload.paths)
    workload.start()
    testbed.warmup_then_measure(proto.warmup_s, proto.measure_s)
    if reports is not None:
        reports[f"{mode.value}/{working_set_mb}mb"] = \
            testbed.metrics_snapshot()
    return {
        "mode": mode.label,
        "working_set_mb": working_set_mb,
        "throughput_mbps": testbed.meters.throughput.mb_per_second(),
        "ops_per_sec": testbed.meters.throughput.ops_per_second(),
        "hit_ratio": testbed.cache.hit_ratio()
        if mode is not ServerMode.NCACHE else _ncache_hit_ratio(testbed),
    }


def _ncache_hit_ratio(testbed) -> float:
    counters = testbed.server_host.counters
    hits = counters["ncache.lbn_hit"].value + counters["ncache.fho_hit"].value
    lookups = hits + counters["ncache.substitute_miss"].value \
        + counters["bcache.miss"].value
    return hits / lookups if lookups else 0.0


def measure_allhit(mode: ServerMode, request_size: int,
                   quick: bool = True, reports: dict = None) -> dict:
    """One (mode, request size) cell of Figure 6(b).

    When ``reports`` is given, the testbed's full metrics snapshot is
    stored there under ``"<mode>/allhit/<request_size>"``.
    """
    proto = protocol(quick)
    testbed = web_testbed(mode)
    workload = AllHitWebWorkload(testbed, request_size)
    testbed.setup()
    run_until_complete(testbed.sim, workload.prewarm())
    workload.start()
    testbed.warmup_then_measure(proto.warmup_s, proto.measure_s)
    if reports is not None:
        reports[f"{mode.value}/allhit/{request_size}"] = \
            testbed.metrics_snapshot()
    return {
        "mode": mode.label,
        "request_kb": request_size // 1024,
        "throughput_mbps": testbed.meters.throughput.mb_per_second(),
        "ops_per_sec": testbed.meters.throughput.ops_per_second(),
    }


def grid_working_set(quick: bool = True) -> List[RunSpec]:
    """The Figure 6(a) sweep as independent grid points."""
    return [RunSpec(fn="repro.experiments.figure6:measure_working_set",
                    args=(mode, ws, quick),
                    label=f"figure6a/{mode.value}/{ws}mb")
            for mode in ALL_MODES
            for ws in FULL_WORKING_SETS_MB]


def grid_allhit(quick: bool = True) -> List[RunSpec]:
    """The Figure 6(b) sweep as independent grid points."""
    return [RunSpec(fn="repro.experiments.figure6:measure_allhit",
                    args=(mode, request_size, quick),
                    label=f"figure6b/{mode.value}/allhit/{request_size}")
            for mode in ALL_MODES
            for request_size in WEB_REQUEST_SIZES]


def run_working_set(quick: bool = True, workers: int = 1,
                    trace_sink: list = None,
                    stats: list = None) -> ExperimentResult:
    """The Figure 6(a) sweep."""
    result = ExperimentResult(
        name="figure6a",
        title="Figure 6(a): kHTTPd SPECweb99-like, working-set sweep",
        columns=["mode", "working_set_mb", "throughput_mbps",
                 "ops_per_sec", "hit_ratio"])
    if quick:
        result.add_note(f"quick mode: memory geometry scaled down by "
                        f"{QUICK_SCALE}x (ratios preserved)")
    for rr in drain(run_specs(grid_working_set(quick), workers=workers,
                              trace=trace_sink is not None),
                    trace_sink, stats):
        result.add_row(**rr.value)
        result.reports.update(rr.report)
    for ws in (500, 750):
        orig = result.value("throughput_mbps", mode="original",
                            working_set_mb=ws)
        ncache = result.value("throughput_mbps", mode="NCache",
                              working_set_mb=ws)
        result.add_note(f"{ws} MB: NCache vs original "
                        f"{pct_gain(ncache, orig):+.1f}% "
                        f"(paper: +10% to +20%)")
    return result


def run_allhit(quick: bool = True, workers: int = 1,
               trace_sink: list = None,
               stats: list = None) -> ExperimentResult:
    """The Figure 6(b) sweep."""
    result = ExperimentResult(
        name="figure6b",
        title="Figure 6(b): kHTTPd all-hit, request-size sweep",
        columns=["mode", "request_kb", "throughput_mbps", "ops_per_sec"])
    for rr in drain(run_specs(grid_allhit(quick), workers=workers,
                              trace=trace_sink is not None),
                    trace_sink, stats):
        result.add_row(**rr.value)
        result.reports.update(rr.report)
    for request_kb in (16, 128):
        orig = result.value("throughput_mbps", mode="original",
                            request_kb=request_kb)
        ncache = result.value("throughput_mbps", mode="NCache",
                              request_kb=request_kb)
        result.add_note(
            f"{request_kb} KB: NCache vs original "
            f"{pct_gain(ncache, orig):+.1f}% "
            f"(paper: +8% at 16 KB up to +47% at 128 KB)")
    return result


def run(quick: bool = True, workers: int = 1,
        trace_sink: list = None, stats: list = None) -> ExperimentResult:
    """Both panels merged (rows carry a ``panel`` column)."""
    a = run_working_set(quick, workers, trace_sink, stats)
    b = run_allhit(quick, workers, trace_sink, stats)
    merged = ExperimentResult(
        name="figure6",
        title="Figure 6: kHTTPd throughput",
        columns=["panel", "mode", "working_set_mb", "request_kb",
                 "throughput_mbps", "ops_per_sec"])
    for row in a.rows:
        merged.add_row(panel="a", request_kb="", **{
            k: v for k, v in row.items() if k != "hit_ratio"})
    for row in b.rows:
        merged.add_row(panel="b", working_set_mb="", **row)
    merged.notes = a.notes + b.notes
    merged.reports.update(a.reports)
    merged.reports.update(b.reports)
    return merged


if __name__ == "__main__":
    print(run_working_set(quick=True).render())
    print()
    print(run_allhit(quick=True).render())
