"""Figure 7: SPECsfs-like macro-benchmark — ops/s vs % regular-data ops.

Paper (§5.4): 2 GB filesystem, accessed file set 10% of it, read:write
held at 5:1.  NFS-NCache sustains 16.3% more ops/s than NFS-original when
30% of requests access regular data, 18.6% more at 75%; the gain grows
with the regular-data fraction because NCache does not help metadata or
small-request processing, which dominate SPECsfs.
"""

from __future__ import annotations

from typing import List

from ..analysis.tables import ExperimentResult, pct_gain
from ..servers.config import ServerMode
from ..workloads.specsfs import SpecSfsWorkload
from .common import ALL_MODES, nfs_testbed, protocol, warm_caches
from .parallel import RunSpec, drain, run_specs

GB = 1 << 30

#: The regular-data percentages swept (paper quotes 30% and 75%).
REGULAR_PERCENTAGES = (30, 45, 60, 75)


def measure_point(mode: ServerMode, pct_regular: int,
                  quick: bool = True, reports: dict = None) -> dict:
    """One (mode, regular-data %) cell of Figure 7.

    When ``reports`` is given, the testbed's full metrics snapshot is
    stored there under ``"<mode>/<pct_regular>pct"``.
    """
    proto = protocol(quick)
    fs_size = (GB // 2) if quick else 2 * GB
    testbed = nfs_testbed(mode, n_nics=1, n_daemons=16,
                          flush_interval_s=0.05)
    if testbed.flush_daemon is not None:
        testbed.flush_daemon.max_blocks_per_pass = 16
    workload = SpecSfsWorkload(testbed, pct_regular=pct_regular / 100.0,
                               fs_size_bytes=fs_size,
                               outstanding_per_client=8)
    testbed.setup()
    warm_caches(testbed, workload.names)
    workload.start()
    testbed.warmup_then_measure(proto.warmup_s, proto.measure_s)
    if reports is not None:
        reports[f"{mode.value}/{pct_regular}pct"] = \
            testbed.metrics_snapshot()
    return {
        "mode": mode.label,
        "pct_regular": pct_regular,
        "ops_per_sec": testbed.meters.throughput.ops_per_second(),
        "throughput_mbps": testbed.meters.throughput.mb_per_second(),
        "server_cpu_pct": testbed.server_cpu_utilization() * 100,
    }


def grid(quick: bool = True) -> List[RunSpec]:
    """The sweep as independent, picklable grid points."""
    return [RunSpec(fn="repro.experiments.figure7:measure_point",
                    args=(mode, pct, quick),
                    label=f"figure7/{mode.value}/{pct}pct")
            for mode in ALL_MODES
            for pct in REGULAR_PERCENTAGES]


def run(quick: bool = True, workers: int = 1,
        trace_sink: list = None, stats: list = None) -> ExperimentResult:
    """The full Figure 7 sweep."""
    result = ExperimentResult(
        name="figure7",
        title="Figure 7: SPECsfs-like ops/s vs % regular-data requests",
        columns=["mode", "pct_regular", "ops_per_sec", "throughput_mbps",
                 "server_cpu_pct"])
    for rr in drain(run_specs(grid(quick), workers=workers,
                              trace=trace_sink is not None),
                    trace_sink, stats):
        result.add_row(**rr.value)
        result.reports.update(rr.report)
    for pct, paper in ((30, 16.3), (75, 18.6)):
        orig = result.value("ops_per_sec", mode="original", pct_regular=pct)
        ncache = result.value("ops_per_sec", mode="NCache", pct_regular=pct)
        result.add_note(f"{pct}% regular: NCache vs original "
                        f"{pct_gain(ncache, orig):+.1f}% "
                        f"(paper: +{paper}%)")
    return result


if __name__ == "__main__":
    print(run(quick=True).render())
