"""Fleet churn: crash, failover and cold-restart warmup (beyond the paper).

:mod:`~repro.experiments.fleet_scaling` measures the static fleet; this
experiment measures the *dynamic* one.  A four-node cooperative fleet
runs the Zipf population workload with a hot-key storm, a flash crowd
and a slow diurnal drift layered on, and a declarative
:class:`~repro.servers.spec.ChurnSchedule` crashes one node mid-run and
rejoins it cold one segment later.  The run is split into three measured
segments:

* **pre** — steady state before the outage;
* **outage** — the crashed node is dark: its share of the keyspace
  fails over to the salted replica set (or, without replication, to
  whatever live node the ring walk reaches), and cooperative caching
  absorbs what it can of the miss storm;
* **recovery** — the node is back with a cold cache, warming up under a
  flash crowd; ``fleet.warmup_ops`` and the store's ghost-hit estimator
  measure the refill.

The question each row answers: how far do replication and cooperation
keep backend iSCSI reads during the outage below the no-replication
baseline, and what does the cold restart cost on the way back up?
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.tables import ExperimentResult
from ..servers.config import ServerMode
from ..servers.spec import ChurnEvent, ChurnSchedule, ClusterSpec, TestbedSpec
from ..workloads.fleetzipf import FlashCrowd, FleetZipfWorkload, HotKeyStorm
from .common import protocol, scaled_memory_config
from .fleet_scaling import BASE_SCALE
from .parallel import RunSpec, drain, run_specs

KB = 1024

#: Cluster size for every point; the churn story needs surviving nodes,
#: not scale (fleet_scaling owns the scale axis).
N_SERVERS = 4

#: The node the schedule crashes and rejoins.
CRASH_NODE = 1


def timeline(quick: bool = True) -> Dict[str, float]:
    """Absolute segment boundaries shared by the schedule, the workload
    phases and the measurement windows."""
    proto = protocol(quick)
    seg = proto.measure_s
    warm_end = 2 * proto.warmup_s
    pre_end = warm_end + seg
    outage_end = pre_end + seg
    return {
        "warm_end": warm_end,
        "pre_end": pre_end,          # crash fires here
        "outage_end": outage_end,    # rejoin fires here
        "recovery_end": outage_end + 2 * seg,
    }


def cluster_spec(replication: int, cooperative: bool, group_blocks: int,
                 quick: bool = True) -> ClusterSpec:
    """Four NCache nodes with a crash/rejoin schedule baked in."""
    t = timeline(quick)
    memory = scaled_memory_config(BASE_SCALE * N_SERVERS)
    return ClusterSpec(
        testbed=TestbedSpec.nfs(ServerMode.NCACHE, flush_interval_s=None,
                                **memory),
        n_servers=N_SERVERS,
        replication=replication,
        cooperative=cooperative,
        group_blocks=group_blocks,
        churn=ChurnSchedule((
            ChurnEvent(t["pre_end"], "crash", CRASH_NODE),
            ChurnEvent(t["outage_end"], "rejoin", CRASH_NODE),
        )))


def workload(quick: bool = True) -> FleetZipfWorkload:
    """The Zipf population with all three phase phenomena active:
    a hot-key storm during the outage (worst case for failover), a
    flash crowd during the cold node's warmup, and a slow diurnal
    drift across the whole run."""
    t = timeline(quick)
    seg = t["outage_end"] - t["pre_end"]
    n_files = 192 if quick else 512
    return FleetZipfWorkload(
        n_files=n_files, file_size=128 * KB, request_size=32 * KB,
        zipf_alpha=0.9, n_logical_clients=1_000_000,
        n_streams=32, think_time_s=0.0005,
        storm=HotKeyStorm(t["pre_end"], t["outage_end"], fraction=0.3),
        crowd=FlashCrowd(t["outage_end"], t["outage_end"] + seg,
                         think_scale=0.5),
        diurnal_period_s=2 * t["recovery_end"])


def measure_point(replication: int, cooperative: bool,
                  group_blocks: int, quick: bool = True,
                  reports: dict = None) -> dict:
    """One (replication, cooperation, group size) churn run."""
    t = timeline(quick)
    fleet = cluster_spec(replication, cooperative, group_blocks,
                         quick).build()
    load = workload(quick).bind(fleet)
    fleet.setup()
    load.start()
    fleet.sim.run(until=t["warm_end"])
    fleet.reset_measurements()

    def ops() -> float:
        return sum(tb.meters.throughput.ops.value
                   for tb in fleet.testbeds)

    segments: Dict[str, Dict[str, float]] = {}
    backend_mark, ops_mark = fleet.backend_reads(), ops()
    for name, until in (("pre", t["pre_end"]),
                        ("outage", t["outage_end"]),
                        ("recovery", t["recovery_end"])):
        fleet.sim.run(until=until)
        backend_now, ops_now = fleet.backend_reads(), ops()
        segments[name] = {
            "backend": backend_now - backend_mark,
            "ops": ops_now - ops_mark,
        }
        backend_mark, ops_mark = backend_now, ops_now

    if reports is not None:
        key = f"r{replication}/g{group_blocks}/" \
              f"{'coop' if cooperative else 'solo'}"
        snapshot = fleet.metrics_snapshot()
        snapshot["churn"] = fleet.churn_stats()
        snapshot["segments"] = segments
        reports[key] = snapshot

    def per_kop(segment: Dict[str, float]) -> float:
        if not segment["ops"]:
            return 0.0
        return 1000.0 * segment["backend"] / segment["ops"]

    stats = fleet.churn_stats()
    measured_s = t["recovery_end"] - t["warm_end"]
    return {
        "repl": replication,
        "coop": "on" if cooperative else "off",
        "group": group_blocks,
        "ops_per_s": ops() / measured_s,
        "pre_bpk": per_kop(segments["pre"]),
        "outage_bpk": per_kop(segments["outage"]),
        "recovery_bpk": per_kop(segments["recovery"]),
        "failover": int(stats["failover_reroute"]),
        "retries": int(stats["inflight_retry"]),
        "warmup_ops": int(stats["warmup_ops"]),
        "ghost_hits": int(fleet.counter_sum("cache.ncache.ghost_hit")),
    }


def grid(quick: bool = True) -> List[RunSpec]:
    """The sweep as independent, picklable grid points."""
    points = [(1, True, 16), (2, True, 16), (2, False, 16), (2, True, 8)]
    if not quick:
        points += [(1, False, 16), (3, True, 16), (3, False, 16),
                   (2, False, 8)]
    return [RunSpec(fn="repro.experiments.fleet_churn:measure_point",
                    args=(repl, coop, group, quick),
                    label=f"fleet_churn/r{repl}/g{group}/"
                          f"{'coop' if coop else 'solo'}")
            for repl, coop, group in points]


def run(quick: bool = True, workers: int = 1,
        trace_sink: list = None, stats: list = None) -> ExperimentResult:
    """The full churn sweep."""
    result = ExperimentResult(
        name="fleet_churn",
        title="Fleet churn: crash/failover/cold-restart under storm "
              f"({N_SERVERS} servers, node {CRASH_NODE} crashes)",
        columns=["repl", "coop", "group", "ops_per_s", "pre_bpk",
                 "outage_bpk", "recovery_bpk", "failover", "retries",
                 "warmup_ops", "ghost_hits"])
    for rr in drain(run_specs(grid(quick), workers=workers,
                              trace=trace_sink is not None),
                    trace_sink, stats):
        result.add_row(**rr.value)
        result.reports.update(rr.report)
    repl2 = result.value("outage_bpk", repl=2, coop="on", group=16)
    repl1 = result.value("outage_bpk", repl=1, coop="on", group=16)
    if repl1:
        saved = 100.0 * (repl1 - repl2) / repl1
        result.add_note(
            f"outage: replication 2 keeps backend reads per 1000 ops "
            f"{saved:.1f}% below the no-replication baseline "
            f"({repl1:.0f} -> {repl2:.0f})")
    warm = result.value("warmup_ops", repl=2, coop="on", group=16)
    ghosts = result.value("ghost_hits", repl=2, coop="on", group=16)
    result.add_note(
        f"cold restart: {warm:.0f} requests served while node "
        f"{CRASH_NODE} refilled; {ghosts:.0f} ghost hits flagged "
        f"re-misses on pre-crash residents")
    return result


if __name__ == "__main__":
    print(run(quick=True).render())
