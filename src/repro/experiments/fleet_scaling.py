"""Fleet scaling: cooperative NCache across a cluster (beyond the paper).

The paper evaluates one server; this experiment scales the NCache
organization out to an N-server fleet behind a consistent-hash load
balancer (:mod:`repro.fleet`) and asks the question the single-node
testbed cannot: at a *fixed aggregate cache budget*, does letting the
nodes serve each other's misses out of their network-centric caches
reduce reads against the shared iSCSI backend?

Every point drives the same Zipf-skewed population workload
(:class:`~repro.workloads.fleetzipf.FleetZipfWorkload`) and reports

* aggregate throughput and operation rate across the fleet;
* load imbalance (max/mean of per-node routed requests);
* the cooperative-caching peer traffic (probe hit rate, bytes moved);
* backend iSCSI reads during the measurement window.

Per-node memory shrinks as ``1/n_servers`` so the *aggregate* budget is
identical across cluster sizes — any backend-read reduction is due to
cooperation, not extra RAM.
"""

from __future__ import annotations

from typing import List

from ..analysis.tables import ExperimentResult
from ..servers.config import ServerMode
from ..servers.spec import ClusterSpec, TestbedSpec
from ..workloads.fleetzipf import FleetZipfWorkload
from .common import protocol, scaled_memory_config
from .parallel import RunSpec, drain, run_specs

KB = 1024
MB = 1 << 20

#: Aggregate memory budget = the standard testbed scaled by this factor,
#: split evenly across the fleet (per-node scale = BASE_SCALE * n).
BASE_SCALE = 32

#: Consistent-hash granularity: contiguous LBN runs routed as one unit.
GROUP_BLOCKS = 16


def cluster_spec(n_servers: int, cooperative: bool, replication: int,
                 quick: bool = True) -> ClusterSpec:
    """The cluster under test, at equal aggregate cache budget."""
    memory = scaled_memory_config(BASE_SCALE * n_servers)
    return ClusterSpec(
        testbed=TestbedSpec.nfs(ServerMode.NCACHE, flush_interval_s=None,
                                **memory),
        n_servers=n_servers,
        replication=replication,
        cooperative=cooperative,
        group_blocks=GROUP_BLOCKS)


def workload(quick: bool = True) -> FleetZipfWorkload:
    """The shared Zipf population workload (working set ≫ one node's
    cache, comparable to the fleet's aggregate budget)."""
    n_files = 192 if quick else 512
    return FleetZipfWorkload(
        n_files=n_files, file_size=128 * KB, request_size=32 * KB,
        zipf_alpha=0.9, n_logical_clients=1_000_000,
        n_streams=32, think_time_s=0.0005)


def measure_point(n_servers: int, cooperative: bool, replication: int = 1,
                  quick: bool = True, reports: dict = None) -> dict:
    """One (cluster size, cooperation, replication) cell."""
    proto = protocol(quick)
    fleet = cluster_spec(n_servers, cooperative, replication, quick).build()
    load = workload(quick).bind(fleet)
    fleet.setup()
    load.start()
    # Double the standard warmup: the fleet must reach cache steady
    # state before backend reads are attributable to cooperation.
    fleet.sim.run(until=fleet.sim.now + 2 * proto.warmup_s)
    fleet.reset_measurements()
    backend_before = fleet.backend_reads()
    fleet.sim.run(until=fleet.sim.now + proto.measure_s)
    backend_reads = fleet.backend_reads() - backend_before
    if reports is not None:
        key = f"n{n_servers}/r{replication}/" \
              f"{'coop' if cooperative else 'solo'}"
        reports[key] = fleet.metrics_snapshot()
    probes = fleet.counter_sum("fleet.peer_probe")
    hits = fleet.counter_sum("fleet.peer_hit")
    ops = sum(tb.meters.throughput.ops.value for tb in fleet.testbeds)
    return {
        "n_servers": n_servers,
        "coop": "on" if cooperative else "off",
        "repl": replication,
        "throughput_mbps": sum(tb.meters.throughput.mb_per_second()
                               for tb in fleet.testbeds),
        "ops_per_s": sum(tb.meters.throughput.ops_per_second()
                         for tb in fleet.testbeds),
        "imbalance": fleet.imbalance(),
        "peer_hit_pct": 100.0 * hits / probes if probes else 0.0,
        "peer_mb": fleet.counter_sum("fleet.peer_bytes") / MB,
        "backend_reads": int(backend_reads),
        # Closed-loop normalization: cooperation speeds the fleet up, so
        # raw backend counts understate the saving per unit of work.
        "backend_per_kop": 1000.0 * backend_reads / ops if ops else 0.0,
    }


def grid(quick: bool = True) -> List[RunSpec]:
    """The sweep as independent, picklable grid points."""
    points = [(1, False, 1), (4, True, 2), (4, False, 2),
              (8, True, 2), (8, False, 2)]
    if not quick:
        points += [(8, True, 3), (8, False, 3),
                   (16, True, 2), (16, False, 2)]
    return [RunSpec(fn="repro.experiments.fleet_scaling:measure_point",
                    args=(n, coop, repl, quick),
                    label=f"fleet_scaling/n{n}/r{repl}/"
                          f"{'coop' if coop else 'solo'}")
            for n, coop, repl in points]


def run(quick: bool = True, workers: int = 1,
        trace_sink: list = None, stats: list = None) -> ExperimentResult:
    """The full fleet-scaling sweep."""
    result = ExperimentResult(
        name="fleet_scaling",
        title="Fleet scaling: cooperative NCache vs. cluster size "
              "(equal aggregate cache budget)",
        columns=["n_servers", "coop", "repl", "throughput_mbps",
                 "ops_per_s", "imbalance", "peer_hit_pct", "peer_mb",
                 "backend_reads", "backend_per_kop"])
    for rr in drain(run_specs(grid(quick), workers=workers,
                              trace=trace_sink is not None),
                    trace_sink, stats):
        result.add_row(**rr.value)
        result.reports.update(rr.report)
    for n in (4, 8):
        coop = result.value("backend_per_kop", n_servers=n, coop="on",
                            repl=2)
        solo = result.value("backend_per_kop", n_servers=n, coop="off",
                            repl=2)
        saved = 100.0 * (solo - coop) / solo if solo else 0.0
        result.add_note(
            f"{n} servers: cooperation cuts backend reads per 1000 ops "
            f"by {saved:.1f}% ({solo:.0f} -> {coop:.0f})")
    return result


if __name__ == "__main__":
    print(run(quick=True).render())
