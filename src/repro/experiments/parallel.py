"""Process-pool experiment runner.

Every figure/table sweep is a grid of independent data points: one
testbed, one workload, one measurement window, no shared state.  This
module fans those points out over a :class:`~concurrent.futures.\
ProcessPoolExecutor` and merges the results **deterministically**: the
merged rows, metrics reports and trace artifacts are byte-identical for
any ``--workers`` value, because

* each point simulates in a fresh :class:`~repro.sim.engine.Simulator`
  whose only inputs are the :class:`RunSpec` (seeds included), never
  wall-clock or pool scheduling;
* results are reassembled in *spec order* (``executor.map`` preserves
  input order), so merge order does not depend on completion order;
* trace buses are serialized per point and assigned Chrome pids by spec
  position during the merge, not by adoption order inside a worker.

``DESIGN.md`` §7 states the argument in full; the lock is
``tests/test_parallel_determinism.py``.

Wall-clock use: this module intentionally measures host time
(``time.perf_counter``) — it times the *runner*, never the simulation.
It is allow-listed in :data:`repro.check.vocabulary.WALLCLOCK_ALLOWED_PATHS`.
"""

from __future__ import annotations

import gc
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from importlib import import_module
from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..obs import trace as _trace
from ..sim import engine as _engine


@dataclass(frozen=True)
class RunSpec:
    """One picklable unit of experiment work.

    ``fn`` is a ``"module:callable"`` string rather than a function
    object so specs stay picklable and printable; the callable is
    resolved in the worker process.  When ``capture_reports`` is true
    the callable must accept a ``reports`` keyword (the convention all
    ``measure_*`` functions follow) and the dict it fills is carried
    back on the :class:`RunResult`.
    """

    fn: str
    args: tuple = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    label: str = ""
    capture_reports: bool = True


@dataclass
class RunResult:
    """What came back from one :class:`RunSpec`.

    ``value`` is whatever the spec's callable returned (a row dict for
    ``measure_*`` functions, an ``ExperimentResult`` for whole-ablation
    specs).  ``wall_s`` and ``sim_events`` describe the *worker's* cost
    of producing it; ``trace`` is a list of serialized trace buses when
    tracing was requested, else ``None``.
    """

    label: str
    value: Any
    report: Dict[str, Any] = field(default_factory=dict)
    wall_s: float = 0.0
    sim_events: int = 0
    trace: Optional[List[Dict[str, Any]]] = None


def _resolve(fn: str):
    module_name, _, attr = fn.partition(":")
    if not attr:
        raise ValueError(f"RunSpec.fn must be 'module:callable', got {fn!r}")
    return getattr(import_module(module_name), attr)


def _serialize_bus(bus: "_trace.TraceBus") -> Dict[str, Any]:
    """A TraceBus as plain data (cheap to pickle across the pool)."""
    return {
        "process_name": bus.process_name,
        "tids": dict(bus._tids),
        "events": [(ev.name, ev.cat, ev.ph, ev.ts, ev.dur, ev.tid, ev.args)
                   for ev in bus.events],
    }


def _execute(spec: RunSpec, trace: bool = False) -> RunResult:
    """Run one spec in this process (pool worker or serial caller)."""
    fn = _resolve(spec.fn)
    kwargs = dict(spec.kwargs)
    reports: Dict[str, Any] = {}
    if spec.capture_reports:
        kwargs["reports"] = reports
    session = _trace.start_tracing() if trace else None
    before = _engine.dispatch_count()
    t0 = time.perf_counter()
    try:
        value = fn(*spec.args, **kwargs)
    finally:
        if session is not None:
            _trace.stop_tracing()
    wall = time.perf_counter() - t0
    return RunResult(
        label=spec.label,
        value=value,
        report=reports,
        wall_s=wall,
        sim_events=_engine.dispatch_count() - before,
        trace=([_serialize_bus(b) for b in session.buses]
               if session is not None else None),
    )


def run_specs(specs: Sequence[RunSpec], workers: int = 1,
              trace: bool = False) -> List[RunResult]:
    """Run every spec; results come back in spec order.

    ``workers <= 1`` runs serially in this process (no pool, easier to
    debug/profile, identical results).  Tracing uses a per-point session
    in whichever process runs the point, so a *global* trace session
    must not be active around this call.
    """
    if trace and _trace.active_session() is not None:
        raise RuntimeError(
            "run_specs(trace=True) manages per-point trace sessions; "
            "stop the global session first")
    if workers <= 1 or len(specs) <= 1:
        results = []
        for spec in specs:
            results.append(_execute(spec, trace))
            # Drop the just-finished point's testbed before building the
            # next one: without this the process high-water mark counts
            # two full testbeds at once (collection is results-neutral —
            # it frees garbage, it never touches live simulation state).
            gc.collect()
        return results
    with ProcessPoolExecutor(max_workers=min(workers, len(specs))) as pool:
        return list(pool.map(_execute, specs, [trace] * len(specs)))


def drain(results: Sequence[RunResult],
          trace_sink: Optional[List[Dict[str, Any]]] = None,
          stats: Optional[List[Dict[str, Any]]] = None) -> Sequence[RunResult]:
    """Common sweep bookkeeping: route traces and perf stats to sinks.

    ``trace_sink`` receives serialized buses in spec order (feed it to
    :func:`write_merged_chrome`); ``stats`` receives one
    ``{label, wall_s, sim_events}`` entry per point (``repro.perf``
    aggregates these).  Returns ``results`` unchanged for chaining.
    """
    for rr in results:
        if trace_sink is not None and rr.trace:
            trace_sink.extend(rr.trace)
        if stats is not None:
            stats.append({"label": rr.label, "wall_s": rr.wall_s,
                          "sim_events": rr.sim_events})
    return results


# -- trace merging ----------------------------------------------------------

def collect_traces(results: Iterable[RunResult]) -> List[Dict[str, Any]]:
    """All serialized buses from ``results``, in result (= spec) order."""
    buses: List[Dict[str, Any]] = []
    for rr in results:
        if rr is not None and rr.trace:
            buses.extend(rr.trace)
    return buses


def merged_chrome_events(buses: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Chrome-trace events with pids assigned by merge position."""
    out: List[Dict[str, Any]] = []
    for pid, bus in enumerate(buses, start=1):
        out.append({"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                    "args": {"name": bus["process_name"]}})
        for tname, tid in sorted(bus["tids"].items(), key=lambda kv: kv[1]):
            out.append({"name": "thread_name", "ph": "M", "pid": pid,
                        "tid": tid, "args": {"name": tname}})
        for name, cat, ph, ts, dur, tid, args in bus["events"]:
            ev: Dict[str, Any] = {"name": name, "cat": cat, "ph": ph,
                                  "ts": ts * 1e6, "pid": pid, "tid": tid}
            if dur is not None:
                ev["dur"] = dur * 1e6
            if args:
                ev["args"] = args
            out.append(ev)
    return out


def merged_jsonl_events(buses: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Plain JSON event objects with pids assigned by merge position."""
    out: List[Dict[str, Any]] = []
    for pid, bus in enumerate(buses, start=1):
        for name, cat, ph, ts, dur, tid, args in bus["events"]:
            ev: Dict[str, Any] = {"name": name, "cat": cat, "ph": ph,
                                  "t": ts, "pid": pid, "tid": tid}
            if dur is not None:
                ev["dur"] = dur
            if args:
                ev["args"] = args
            out.append(ev)
    return out


def write_merged_chrome(path: Any, buses: Sequence[Dict[str, Any]]) -> None:
    """Write merged buses as one Chrome-trace / Perfetto JSON file."""
    import json
    document = {"traceEvents": merged_chrome_events(buses),
                "displayTimeUnit": "ms"}
    with open(path, "w") as fh:
        json.dump(document, fh)


def write_merged_jsonl(path: Any, buses: Sequence[Dict[str, Any]]) -> None:
    """Write merged buses as JSONL (one event object per line)."""
    import json
    with open(path, "w") as fh:
        for obj in merged_jsonl_events(buses):
            fh.write(json.dumps(obj))
            fh.write("\n")


def n_trace_events(buses: Sequence[Dict[str, Any]]) -> int:
    """Total captured events across serialized buses."""
    return sum(len(bus["events"]) for bus in buses)
