"""Policy ablation: replacement policy × shard count on the NCache store.

The paper fixes replacement at classic LRU over fixed-size chunks (§3.4)
and never revisits the choice; NetCAS (arXiv:2510.02323) and the
in-network storage-cache study (arXiv:2307.11069) both show hit-ratio
behavior under real workloads is policy-sensitive.  With replacement now
a kernel parameter (DESIGN.md §9) this sweep measures what the paper
could not: every :data:`repro.cache.POLICIES` entry × shard count, on
the two macro workloads (SPECsfs-like NFS, SPECweb99-like kHTTPd), under
memory pressure (working sets larger than the carve-out, the Figure 6a
pressure regime).

Reported per cell: throughput, the store's hit ratio
(``cache.ncache.{hit,miss}``), the ghost-list hit share (the fraction of
misses a modestly larger cache would have absorbed —
``cache.ncache.ghost_hit``, plus the FS page cache's
``cache.bcache.ghost_hit`` where most re-misses actually land, since the
reclaim listener invalidates placeholder pages when their chunk is
evicted), and the physical-copy cost per operation
(``copies.physical_bytes``, the §3.1 currency).  ``lru × 1`` is the
paper's configuration and doubles as the refactor's fidelity control:
its ``sim_events`` are identical to the pre-kernel code.
"""

from __future__ import annotations

from typing import List

from ..analysis.tables import ExperimentResult
from ..cache import POLICIES
from ..servers.config import GB, MB, ServerMode
from ..workloads.specsfs import SpecSfsWorkload
from ..workloads.specweb import SpecWebWorkload
from .common import (
    nfs_testbed,
    protocol,
    scaled_memory_config,
    warm_caches,
    web_testbed,
)
from .parallel import RunSpec, drain, run_specs

#: Every registered policy, in registry (insertion) order — LRU first.
POLICY_NAMES = tuple(POLICIES)
#: Shard counts swept; 1 is the paper's unsharded layout.
SHARD_COUNTS = (1, 4)
#: The two macro workloads of §5.4/§5.5.
WORKLOADS = ("specsfs", "specweb")

#: Memory-scale divisor for quick mode (same as Figure 6a).
QUICK_SCALE = 4
#: SPECweb working set (MB, full-scale) — Figure 6a's deepest point,
#: where the working set decisively outgrows the cache.
WEB_WORKING_SET_MB = 900


def measure_point(workload: str, policy: str, shards: int,
                  quick: bool = True, reports: dict = None) -> dict:
    """One (workload, policy, shards) cell of the ablation grid.

    When ``reports`` is given, the testbed's full metrics snapshot is
    stored there under ``"<workload>/<policy>/<shards>shard"``.
    """
    proto = protocol(quick)
    scale = QUICK_SCALE if quick else 1
    overrides = scaled_memory_config(scale)
    overrides.update(cache_policy=policy, cache_shards=shards)
    if workload == "specsfs":
        testbed = nfs_testbed(ServerMode.NCACHE, n_nics=1, n_daemons=16,
                              flush_interval_s=0.05, **overrides)
        fs_size = (GB // 2) if quick else 2 * GB
        wl = SpecSfsWorkload(testbed, pct_regular=0.75,
                             fs_size_bytes=fs_size,
                             outstanding_per_client=8)
        ranked = wl.names
    elif workload == "specweb":
        testbed = web_testbed(ServerMode.NCACHE, **overrides)
        wl = SpecWebWorkload(
            testbed,
            working_set_bytes=WEB_WORKING_SET_MB * MB // scale)
        ranked = wl.paths
    else:
        raise ValueError(f"unknown workload {workload!r}")
    testbed.setup()
    warm_caches(testbed, ranked)
    wl.start()
    testbed.warmup_then_measure(proto.warmup_s, proto.measure_s)
    if reports is not None:
        reports[f"{workload}/{policy}/{shards}shard"] = \
            testbed.metrics_snapshot()
    counters = testbed.server_host.counters
    hits = counters["cache.ncache.hit"].value
    misses = counters["cache.ncache.miss"].value
    ghost_hits = counters["cache.ncache.ghost_hit"].value
    probes = hits + misses
    fs_misses = counters["cache.bcache.miss"].value
    fs_ghost_hits = counters["cache.bcache.ghost_hit"].value
    ops = testbed.meters.throughput.ops.value
    phys_bytes = counters["copies.physical_bytes"].value
    return {
        "workload": workload,
        "policy": policy,
        "shards": shards,
        "ops_per_sec": testbed.meters.throughput.ops_per_second(),
        "throughput_mbps": testbed.meters.throughput.mb_per_second(),
        "hit_pct": 100.0 * hits / probes if probes else 0.0,
        "ghost_hit_pct": 100.0 * ghost_hits / misses if misses else 0.0,
        "fs_ghost_pct": (100.0 * fs_ghost_hits / fs_misses
                         if fs_misses else 0.0),
        "copied_kb_per_op": phys_bytes / 1024.0 / ops if ops else 0.0,
    }


def grid(quick: bool = True) -> List[RunSpec]:
    """The sweep as independent, picklable grid points."""
    return [RunSpec(fn="repro.experiments.policy_ablation:measure_point",
                    args=(workload, policy, shards, quick),
                    label=f"policy_ablation/{workload}/{policy}/"
                          f"{shards}shard")
            for workload in WORKLOADS
            for policy in POLICY_NAMES
            for shards in SHARD_COUNTS]


def run(quick: bool = True, workers: int = 1,
        trace_sink: list = None, stats: list = None) -> ExperimentResult:
    """The full policy × shard sweep on both macro workloads."""
    result = ExperimentResult(
        name="policy_ablation",
        title="Policy ablation: replacement policy x NCache shard count",
        columns=["workload", "policy", "shards", "ops_per_sec",
                 "throughput_mbps", "hit_pct", "ghost_hit_pct",
                 "fs_ghost_pct", "copied_kb_per_op"])
    rows = []
    for rr in drain(run_specs(grid(quick), workers=workers,
                              trace=trace_sink is not None),
                    trace_sink, stats):
        rows.append(rr.value)
        result.add_row(**rr.value)
        result.reports.update(rr.report)
    baseline = {r["workload"]: r for r in rows
                if r["policy"] == "lru" and r["shards"] == 1}
    for workload, base in sorted(baseline.items()):
        best = max((r for r in rows if r["workload"] == workload),
                   key=lambda r: r["hit_pct"])
        result.add_note(
            f"{workload}: paper LRU x1 hit {base['hit_pct']:.1f}% "
            f"({base['ops_per_sec']:.0f} ops/s); best "
            f"{best['policy']} x{best['shards']} hit "
            f"{best['hit_pct']:.1f}% ({best['ops_per_sec']:.0f} ops/s)")
    return result
