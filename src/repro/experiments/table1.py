"""Table 1: how little of the stack NCache touches (transparency audit).

The paper's Table 1 lists the kernel components NCache modifies: the
NFS/Web daemon and the buffer cache are untouched; the iSCSI initiator's
two socket-invoking functions and the TCP/IP socket interfaces are
slightly extended; everything else lives in the standalone module.

In this codebase the same claim is *checkable*: the NCache implementation
is ``repro.core`` plus a wiring function, and nothing in the daemon,
buffer cache, or protocol substrate imports it.  This experiment walks the
import graph of the installed sources (via ``ast``) and reports, per
component, which modules reference ``repro.core`` — regenerating Table 1
as a property of the code rather than a claim.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List

import repro

from ..analysis.tables import ExperimentResult

#: Component -> (modules, paper's "locations modified" entry).
COMPONENTS = {
    "NFS/Web server daemon": (
        ["nfs/server.py", "http/khttpd.py"], "None"),
    "buffer cache": (
        ["fs/buffer_cache.py", "fs/vfs.py"], "None"),
    "iSCSI initiator": (
        ["iscsi/initiator.py"],
        "two functions invoking socket interface changed"),
    "network stack": (
        ["net/stack.py", "net/host.py"],
        "TCP/IP socket interfaces extended"),
    "NCache module (standalone)": (
        ["core/ncache.py", "core/store.py", "core/classifier.py",
         "core/keys.py", "core/chunk.py", "core/resize.py",
         "core/wiring.py"], "loadable module, no kernel edits"),
}


def _imports_of(path: Path) -> List[str]:
    tree = ast.parse(path.read_text())
    names: List[str] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            names.extend(alias.name for alias in node.names)
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            level = node.level
            names.append(("." * level) + module)
    return names


def _references_core(path: Path, package_root: Path) -> bool:
    """True if the module imports repro.core (resolving relative forms)."""
    rel = path.relative_to(package_root)
    pkg_parts = ("repro",) + rel.parts[:-1]
    for name in _imports_of(path):
        if name.startswith("repro.core") or name == "repro.core":
            return True
        if name.startswith("."):
            level = len(name) - len(name.lstrip("."))
            remainder = name.lstrip(".")
            base = pkg_parts[:len(pkg_parts) - (level - 1)] if level > 1 \
                else pkg_parts
            absolute = ".".join(base + tuple(
                p for p in remainder.split(".") if p))
            if absolute.startswith("repro.core"):
                return True
    return False


def audit() -> Dict[str, Dict]:
    """Compute the per-component NCache-import report."""
    package_root = Path(repro.__file__).parent
    report: Dict[str, Dict] = {}
    for component, (modules, paper_entry) in COMPONENTS.items():
        touching = []
        for module in modules:
            path = package_root / module
            if _references_core(path, package_root):
                touching.append(module)
        report[component] = {
            "modules": modules,
            "paper": paper_entry,
            "imports_ncache": touching,
        }
    return report


def run(quick: bool = True) -> ExperimentResult:
    """Table 1 as an ExperimentResult."""
    result = ExperimentResult(
        name="table1",
        title="Table 1: components referencing the NCache module "
              "(import-graph audit)",
        columns=["component", "paper_entry", "modules_importing_ncache"])
    report = audit()
    for component, info in report.items():
        expected_clean = component != "NCache module (standalone)"
        touching = info["imports_ncache"]
        result.add_row(
            component=component,
            paper_entry=info["paper"],
            modules_importing_ncache=", ".join(touching) if touching
            else ("none (verified)" if expected_clean else "(is the module)"))
    result.add_note("the daemon, buffer cache, initiator and stack are "
                    "NCache-free; integration happens in "
                    "servers/testbed.py + core/wiring.py, mirroring the "
                    "paper's <150 modified lines")
    return result


if __name__ == "__main__":
    print(run().render())
