"""Table 2: data copying operations per request, by path and server.

Paper values (physical copies of regular data inside the pass-through
server, per request):

===========  ====  ====  ===========  =======
             read path   write path
-----------  ----------  --------------------
server       hit   miss  overwritten  flushed
===========  ====  ====  ===========  =======
NFS server    2     3         1          2
kHTTPd        1     2        n/a        n/a
===========  ====  ====  ===========  =======

This experiment *measures* those counts by tracing single requests
through the full simulated stack, for all three server modes — NCache and
the ideal baseline must show zero.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.tables import ExperimentResult
from ..copymodel.accounting import RequestTrace
from ..net.buffer import VirtualPayload
from ..servers.config import ServerMode, TestbedConfig
from ..servers.testbed import NfsTestbed, WebTestbed, run_until_complete
from ..sim.process import start
from .common import ALL_MODES
from .parallel import RunSpec, drain, run_specs

SERVER = "server"


def nfs_copy_counts(mode: ServerMode) -> Dict[str, int]:
    """Trace the four NFS paths; returns path -> physical copies."""
    cfg = TestbedConfig(mode=mode, ncache_strict=True)
    testbed = NfsTestbed(cfg, flush_interval_s=None)
    testbed.image.create_file("t2file", 16 << 20)
    fh = testbed.file_handle("t2file")
    inode = testbed.image.lookup("t2file")
    client = testbed.clients[0]
    counts: Dict[str, int] = {}

    def scenario():
        miss = RequestTrace("read-miss")
        yield from client.read(fh, 0, 32768, trace=miss)
        counts["read_miss"] = miss.physical_copies(where=SERVER)

        hit = RequestTrace("read-hit")
        yield from client.read(fh, 0, 32768, trace=hit)
        counts["read_hit"] = hit.physical_copies(where=SERVER)

        first = RequestTrace("write-1")
        yield from client.write(fh, 65536, VirtualPayload(1, 0, 8192),
                                trace=first)
        overwrite = RequestTrace("write-2")
        yield from client.write(fh, 65536, VirtualPayload(2, 0, 8192),
                                trace=overwrite)
        counts["write_overwritten"] = overwrite.physical_copies(where=SERVER)

        flush = RequestTrace("flush")
        yield from testbed.vfs.flush_lbn(inode.block_lbn(16), flush)
        yield from testbed.vfs.flush_lbn(inode.block_lbn(17), flush)
        counts["write_flushed"] = (first.physical_copies(where=SERVER)
                                   + flush.physical_copies(where=SERVER) // 2)

    testbed.setup()
    run_until_complete(testbed.sim, start(testbed.sim, scenario()))
    return counts


def web_copy_counts(mode: ServerMode) -> Dict[str, int]:
    """Trace the two kHTTPd paths; returns path -> physical copies."""
    cfg = TestbedConfig(mode=mode, ncache_strict=True)
    testbed = WebTestbed(cfg, connections_per_client=1)
    testbed.image.create_file("page.html", 65536)
    client = testbed.http_clients[0]
    counts: Dict[str, int] = {}

    def scenario():
        miss = RequestTrace("http-miss")
        yield from client.get("page.html", trace=miss)
        counts["read_miss"] = miss.physical_copies(where=SERVER)
        hit = RequestTrace("http-hit")
        yield from client.get("page.html", trace=hit)
        counts["read_hit"] = hit.physical_copies(where=SERVER)

    testbed.setup()
    run_until_complete(testbed.sim, start(testbed.sim, scenario()))
    return counts


#: Paper values for the original servers.
PAPER_ORIGINAL = {
    "NFS server": {"read_hit": 2, "read_miss": 3,
                   "write_overwritten": 1, "write_flushed": 2},
    "kHTTPd": {"read_hit": 1, "read_miss": 2},
}


def grid(quick: bool = True) -> List[RunSpec]:
    """Both trace scenarios for every mode, as independent grid points.

    The trace functions take no ``reports`` dict (they return copy
    counts, not throughput metrics), hence ``capture_reports=False``.
    """
    specs: List[RunSpec] = []
    for mode in ALL_MODES:
        specs.append(RunSpec(fn="repro.experiments.table2:nfs_copy_counts",
                             args=(mode,), capture_reports=False,
                             label=f"table2/nfs/{mode.value}"))
        specs.append(RunSpec(fn="repro.experiments.table2:web_copy_counts",
                             args=(mode,), capture_reports=False,
                             label=f"table2/web/{mode.value}"))
    return specs


def run(quick: bool = True, workers: int = 1,
        trace_sink: list = None, stats: list = None) -> ExperimentResult:
    """Table 2 (all modes) as an ExperimentResult."""
    result = ExperimentResult(
        name="table2",
        title="Table 2: physical data copies per request "
              "(regular data, inside the server)",
        columns=["server", "mode", "read_hit", "read_miss",
                 "write_overwritten", "write_flushed"])
    results = drain(run_specs(grid(quick), workers=workers,
                              trace=trace_sink is not None),
                    trace_sink, stats)
    for mode, (nfs_rr, web_rr) in zip(ALL_MODES,
                                      zip(results[0::2], results[1::2])):
        result.add_row(server="NFS server", mode=mode.label, **nfs_rr.value)
        result.add_row(server="kHTTPd", mode=mode.label,
                       write_overwritten="n/a", write_flushed="n/a",
                       **web_rr.value)
    result.add_note("paper (original): NFS 2/3/1/2, kHTTPd 1/2; "
                    "NCache and baseline rows must be all zero")
    return result


if __name__ == "__main__":
    print(run().render())
