"""Fleet-scale NCache: N testbeds behind a consistent-hash router.

The paper's NCache serves one pass-through server; this package scales
it out.  A :class:`~repro.servers.spec.ClusterSpec` describes the fleet,
:class:`FleetBuilder` composes it (shared simulator and switch, one
testbed per node, peer cache wiring), and :class:`Fleet` is the wired
result the workloads and experiments drive.
"""

from ..servers.spec import ChurnEvent, ChurnSchedule, ClusterSpec
from .builder import Fleet, FleetBuilder, FleetNode
from .hashring import HashRing
from .peer import PeerCacheClient, PeerCacheService

__all__ = [
    "ChurnEvent",
    "ChurnSchedule",
    "ClusterSpec",
    "Fleet",
    "FleetBuilder",
    "FleetNode",
    "HashRing",
    "PeerCacheClient",
    "PeerCacheService",
]
