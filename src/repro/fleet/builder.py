"""Composing a wired fleet from a :class:`~repro.servers.spec.ClusterSpec`.

A fleet is N identically-specified testbeds sharing one simulator and
one switch, plus the simulated load balancer: consistent-hash routing
of requests to nodes by the block *group* they touch, and (optionally)
the cooperative-caching peer wiring from :mod:`repro.fleet.peer`.

A single-node cluster takes a fast path — ``spec.testbed.build()``
verbatim, own simulator, no prefix, no peer machinery — so its event
stream is byte-identical to the standalone testbed the spec describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..net.addresses import Endpoint, PEER_PORT
from ..net.network import Network
from ..obs.metrics import MetricsRegistry
from ..servers.spec import ClusterSpec
from ..servers.testbed import BaseTestbed
from ..sim.engine import Simulator
from .hashring import HashRing
from .peer import PeerCacheClient, PeerCacheService, cooperative_interceptor


@dataclass
class FleetNode:
    """One server position in the fleet."""

    index: int
    testbed: BaseTestbed
    service: Optional[PeerCacheService] = None
    client: Optional[PeerCacheClient] = None

    @property
    def name(self) -> str:
        return f"s{self.index}"


class Fleet:
    """The wired cluster: route requests, measure, aggregate."""

    def __init__(self, spec: ClusterSpec, sim: Simulator, network: Network,
                 nodes: List[FleetNode], ring: HashRing) -> None:
        self.spec = spec
        self.sim = sim
        self.network = network
        self.nodes = nodes
        self.ring = ring
        #: fleet-level declared metrics (routing counts, imbalance gauge).
        self.metrics = MetricsRegistry()
        self._routed = [self.metrics.counter(f"fleet.routed.n{n.index}")
                        for n in nodes]
        self._imbalance = self.metrics.gauge("fleet.imbalance")
        self.block_size = nodes[0].testbed.image.block_size

    # -- assembly ------------------------------------------------------------

    @property
    def testbeds(self) -> List[BaseTestbed]:
        return [node.testbed for node in self.nodes]

    def __len__(self) -> int:
        return len(self.nodes)

    def create_file(self, name: str, size: int):
        """Create a file on every node's (identical) image."""
        inode = None
        for node in self.nodes:
            inode = node.testbed.image.create_file(name, size)
        return inode

    def setup(self) -> None:
        """Establish every node's sessions (iSCSI login etc.)."""
        for node in self.nodes:
            node.testbed.setup()

    # -- load balancing ------------------------------------------------------

    def group_of(self, lbn: int) -> int:
        return lbn // self.spec.group_blocks

    def owners_of(self, lbn: int) -> List[int]:
        return self.ring.owners(self.group_of(lbn), self.spec.replication)

    def route_block(self, lbn: int, salt: int = 0) -> int:
        """Node index serving requests for ``lbn``.

        ``salt`` (e.g. a logical client id) spreads a replicated group's
        load across its owners deterministically.
        """
        owners = self.owners_of(lbn)
        return owners[salt % len(owners)]

    def route(self, path: str, offset: int = 0, salt: int = 0) -> FleetNode:
        """The node a request for ``path``/``offset`` is balanced to."""
        inode = self.nodes[0].testbed.image.lookup(path)
        lbn = inode.block_lbn(min(offset // self.block_size,
                                  inode.nblocks - 1))
        node = self.nodes[self.route_block(lbn, salt)]
        self._routed[node.index].add()
        return node

    def peer_endpoints(self, lbn: int, exclude: int) -> List[Endpoint]:
        """The group's other owners, as peer-service endpoints."""
        return [Endpoint(f"s{j}.server-0", PEER_PORT)
                for j in self.owners_of(lbn) if j != exclude]

    # -- measurement protocol ------------------------------------------------

    def reset_measurements(self) -> None:
        for node in self.nodes:
            node.testbed.reset_measurements()
        self.metrics.reset()

    def warmup_then_measure(self, warmup_s: float, measure_s: float) -> None:
        self.sim.run(until=self.sim.now + warmup_s)
        self.reset_measurements()
        self.sim.run(until=self.sim.now + measure_s)

    def backend_reads(self) -> int:
        """Total iSCSI commands served by the nodes' storage backends.

        ``commands_served`` is a lifetime total — diff two calls around
        the measurement window.
        """
        return sum(node.testbed.target.commands_served
                   for node in self.nodes)

    def routed_counts(self) -> List[float]:
        return [c.value for c in self._routed]

    def imbalance(self) -> float:
        """max/mean of per-node routed requests (1.0 = perfectly even)."""
        counts = self.routed_counts()
        mean = sum(counts) / len(counts)
        value = (max(counts) / mean) if mean else 0.0
        self._imbalance.set(value)
        return value

    def counter_sum(self, name: str) -> float:
        """Sum one server-host counter across the fleet."""
        return sum(node.testbed.server_host.counters[name].value
                   for node in self.nodes)

    def metrics_snapshot(self) -> Dict[str, Any]:
        self.imbalance()
        return {
            "n_servers": len(self.nodes),
            "replication": self.spec.replication,
            "cooperative": self.spec.cooperative,
            "sim_time_s": self.sim.now,
            "fleet": self.metrics.snapshot(),
            "nodes": {node.name: node.testbed.metrics_snapshot()
                      for node in self.nodes},
        }


class FleetBuilder:
    """Builds the testbeds, the ring, and the cooperative wiring."""

    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec

    def build(self) -> Fleet:
        spec = self.spec
        n = spec.n_servers
        ring = HashRing(range(n), vnodes=spec.vnodes, seed=spec.hash_seed)
        if n == 1:
            # Fast path: exactly the standalone testbed, event-for-event.
            testbed = spec.testbed.build()
            return Fleet(spec, testbed.sim, testbed.network,
                         [FleetNode(0, testbed)], ring)
        sim = Simulator()
        sim.trace.process_name = (
            f"Fleet[{n}x{spec.testbed.kind}/{spec.testbed.mode.label}]")
        network = Network(sim)
        nodes = [FleetNode(i, spec.testbed.build(
                     sim=sim, network=network, name_prefix=f"s{i}."))
                 for i in range(n)]
        fleet = Fleet(spec, sim, network, nodes, ring)
        if spec.cooperative:
            for node in nodes:
                node.service = PeerCacheService(node.testbed)
            for node in nodes:
                node.client = PeerCacheClient(
                    node.testbed,
                    peers_for=self._peers_for(fleet, node.index))
                # Local NCache first, then the group's other owners,
                # then (back in the initiator) the wire to iSCSI.
                node.testbed.initiator.read_interceptor = \
                    cooperative_interceptor(node.testbed.ncache, node.client)
        return fleet

    @staticmethod
    def _peers_for(fleet: Fleet, index: int):
        def peers(lbn: int) -> List[Endpoint]:
            return fleet.peer_endpoints(lbn, exclude=index)
        return peers
