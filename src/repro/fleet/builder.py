"""Composing a wired fleet from a :class:`~repro.servers.spec.ClusterSpec`.

A fleet is N identically-specified testbeds sharing one simulator and
one switch, plus the simulated load balancer: consistent-hash routing
of requests to nodes by the block *group* they touch, and (optionally)
the cooperative-caching peer wiring from :mod:`repro.fleet.peer`.

A single-node cluster takes a fast path — ``spec.testbed.build()``
verbatim, own simulator, no prefix, no peer machinery — so its event
stream is byte-identical to the standalone testbed the spec describes.

**Membership dynamics.**  With dynamics enabled (explicitly via
:meth:`Fleet.enable_dynamics`, or implicitly by installing a non-empty
:class:`~repro.servers.spec.ChurnSchedule`), membership becomes a
first-class simulated event:

* :meth:`Fleet.crash` — fail-stop at the switch: the node's UDP ports
  go dark instantly, in-flight requests to it are rerouted by their
  issuing streams (the per-node ``down_event``), and peer probes to it
  run into the existing RTO timeout instead of hanging.
* :meth:`Fleet.rejoin` — the crashed node returns with a *cold* NCache:
  the store is resized through zero (seeding the policy ghost lists, so
  post-restart misses on previously-hot keys register as ghost hits)
  and the FS buffer cache is cleared; warmup is measured by
  ``fleet.warmup_ops`` until occupancy recovers 90% of its pre-crash
  level.
* :meth:`Fleet.leave` — graceful drain: the node is withdrawn from the
  ring first (no new requests), dirty chunks are written back, clean
  pinned chunks are handed to each block group's new owner over the
  simulated network (:class:`PeerPushCall`), then the ports close.
* :meth:`Fleet.join` — a fresh node is built mid-run on the shared
  simulator/switch, replays the fleet's files, logs into iSCSI, gets
  the cooperative wiring, and enters the ring.

Routing is replication-aware: a block group's requests spread over its
ring owners salted by logical client; when the salted pick is down the
balancer re-salts over the group's *live* owners (widening the ring
walk if the whole owner set is down) and counts a
``fleet.failover_reroute``.  With dynamics off, none of these paths
run — the static fleet's event stream is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..core.keys import KeyedPayload, LbnKey
from ..net.addresses import Endpoint, PEER_PORT
from ..net.network import Network
from ..obs.metrics import MetricsRegistry
from ..servers.config import ServerMode
from ..servers.spec import ChurnSchedule, ClusterSpec, TestbedSpec
from ..servers.testbed import BaseTestbed
from ..sim.engine import Event, SimulationError, Simulator
from ..sim.process import start
from .hashring import HashRing
from .peer import PeerCacheClient, PeerCacheService, cooperative_interceptor

#: Rejoin warmup target: the fraction of pre-crash occupancy at which a
#: rejoined node stops counting as "warming".
WARM_FRACTION = 0.9


@dataclass
class FleetNode:
    """One server position in the fleet."""

    index: int
    testbed: BaseTestbed
    service: Optional[PeerCacheService] = None
    client: Optional[PeerCacheClient] = None
    #: ``up`` | ``down`` (crashed) | ``left`` (gracefully departed).
    status: str = "up"
    #: triggered when the node crashes or finishes leaving, so streams
    #: racing an in-flight request against it can reroute immediately
    #: instead of riding the NFS retransmission schedule.  Only created
    #: when fleet dynamics are enabled.
    down_event: Optional[Event] = field(default=None, repr=False)
    #: rejoined-and-refilling: requests routed here count as warmup ops
    #: until occupancy recovers ``WARM_FRACTION`` of the crash snapshot.
    warming: bool = False
    warm_target_bytes: int = 0

    @property
    def name(self) -> str:
        return f"s{self.index}"


class Fleet:
    """The wired cluster: route requests, measure, aggregate."""

    def __init__(self, spec: ClusterSpec, sim: Simulator, network: Network,
                 nodes: List[FleetNode], ring: HashRing) -> None:
        self.spec = spec
        self.sim = sim
        self.network = network
        self.nodes = nodes
        self.ring = ring
        #: fleet-level declared metrics (routing counts, imbalance gauge,
        #: churn accounting).
        self.metrics = MetricsRegistry()
        self._routed = [self.metrics.counter(f"fleet.routed.n{n.index}")
                        for n in nodes]
        self._imbalance = self.metrics.gauge("fleet.imbalance")
        self._failover = self.metrics.counter("fleet.failover_reroute")
        self._warmup_ops = self.metrics.counter("fleet.warmup_ops")
        self._rebalanced = self.metrics.counter("fleet.rebalance_moved_keys")
        self._drained = self.metrics.counter("fleet.drain_pushed")
        self._retries = self.metrics.counter("fleet.inflight_retry")
        self.block_size = nodes[0].testbed.image.block_size
        self._dynamic = False
        #: files created through :meth:`create_file`, in creation order —
        #: replayed onto joining nodes' images and enumerated for the
        #: rebalance (moved-keys) accounting.
        self._files: List[Tuple[str, int]] = []
        self._groups_cache: Optional[List[int]] = None

    # -- assembly ------------------------------------------------------------

    @property
    def testbeds(self) -> List[BaseTestbed]:
        return [node.testbed for node in self.nodes]

    def __len__(self) -> int:
        return len(self.nodes)

    def create_file(self, name: str, size: int):
        """Create a file on every node's (identical) image."""
        inode = None
        for node in self.nodes:
            inode = node.testbed.image.create_file(name, size)
        self._files.append((name, size))
        self._groups_cache = None
        return inode

    def setup(self) -> None:
        """Establish every node's sessions (iSCSI login etc.)."""
        for node in self.nodes:
            node.testbed.setup()

    # -- membership dynamics -------------------------------------------------

    @property
    def dynamic(self) -> bool:
        return self._dynamic

    def enable_dynamics(self) -> None:
        """Arm the membership machinery (idempotent).

        Must be on *before* load starts if membership will change
        mid-run: streams issued under dynamics race each request against
        the serving node's ``down_event`` so a crash reroutes them
        instead of stranding them on the NFS retransmission schedule.
        """
        if self._dynamic:
            return
        self._dynamic = True
        for node in self.nodes:
            if node.status == "up" and node.down_event is None:
                node.down_event = self.sim.event()

    def install_churn(self, schedule: ChurnSchedule) -> None:
        """Drive ``schedule`` inside the simulation (builder hook).

        An empty schedule is a no-op — the fleet stays byte-identical
        to the static build.
        """
        if schedule.empty:
            return
        self.enable_dynamics()
        start(self.sim, self._churn_driver(schedule), name="fleet-churn")

    def _churn_driver(self, schedule: ChurnSchedule
                      ) -> Generator[Any, Any, None]:
        for event in schedule.events:
            delay = event.at_s - self.sim.now
            if delay > 0:
                yield delay
            if event.action == "crash":
                self.crash(event.node)
            elif event.action == "rejoin":
                self.rejoin(event.node)
            elif event.action == "leave":
                yield from self.leave(event.node)
            else:
                yield from self.join()

    def _node(self, node_id: Optional[int]) -> FleetNode:
        if node_id is None or not 0 <= node_id < len(self.nodes):
            raise SimulationError(f"no fleet node {node_id!r}")
        return self.nodes[node_id]

    def _require_dynamic(self, op: str) -> None:
        if not self._dynamic:
            raise SimulationError(
                f"{op} needs fleet dynamics: call enable_dynamics() "
                f"before starting load, or install a ChurnSchedule")

    def _trace_churn(self, action: str, node_id: int) -> None:
        if self.sim.trace.enabled:
            self.sim.trace.emit("fleet.churn", cat="fleet",
                                action=action, node=node_id)

    def crash(self, node_id: int) -> None:
        """Fail-stop ``node_id``: its UDP ports go dark at the switch.

        Instantaneous — no drain, no handoff.  The node's cached data
        is lost to the fleet (dirty chunks die with it); its in-flight
        backend I/O completes internally but nothing escapes to clients
        or peers.  Occupancy at the instant of the crash is snapshotted
        as the rejoin warmup target.
        """
        self._require_dynamic("crash")
        node = self._node(node_id)
        if node.status != "up":
            raise SimulationError(
                f"crash: node {node_id} is {node.status}")
        node.status = "down"
        module = node.testbed.ncache
        if module is not None:
            node.warm_target_bytes = int(
                WARM_FRACTION * module.store.used_bytes)
        for ip in node.testbed.server_ips:
            self.network.set_port_down(ip)
        down, node.down_event = node.down_event, None
        if down is not None:
            down.succeed(None)
        self._trace_churn("crash", node_id)

    def rejoin(self, node_id: int) -> None:
        """Bring a crashed node back with a cold NCache.

        The store is resized through zero — evictions pass the policy's
        ghost lists, so the first post-restart misses on previously-hot
        keys show up on the ``cache.ncache.ghost_hit`` estimator — and
        the FS buffer cache is cleared.  The node then serves traffic
        again, counting ``fleet.warmup_ops`` until occupancy recovers.
        """
        self._require_dynamic("rejoin")
        node = self._node(node_id)
        if node.status != "down":
            raise SimulationError(
                f"rejoin: node {node_id} is {node.status}, not down")
        module = node.testbed.ncache
        if module is not None:
            module.store.cold_restart()
        node.testbed.cache.clear()
        for ip in node.testbed.server_ips:
            self.network.set_port_down(ip, down=False)
        node.status = "up"
        node.warming = True
        node.down_event = self.sim.event()
        self._trace_churn("rejoin", node_id)

    def leave(self, node_id: int) -> Generator[Any, Any, None]:
        """Gracefully drain ``node_id`` and detach it (a process).

        The node comes off the ring *first* so no new requests land on
        it, then hands its pinned chunks over: dirty chunks are written
        back to the backend, clean LBN chunks are pushed to their block
        group's new owner over the simulated network.  Only then do its
        ports close.
        """
        self._require_dynamic("leave")
        node = self._node(node_id)
        if node.status != "up":
            raise SimulationError(
                f"leave: node {node_id} is {node.status}")
        if sum(1 for n in self.nodes if n.status == "up") <= 1:
            raise SimulationError("cannot drain the last live node")
        before = self._owner_map()
        self.ring.remove_node(node_id)
        self._note_rebalance(before)
        self._trace_churn("leave", node_id)
        module = node.testbed.ncache
        if module is not None:
            yield from self._drain(node, module)
        node.status = "left"
        for ip in node.testbed.server_ips:
            self.network.set_port_down(ip)
        down, node.down_event = node.down_event, None
        if down is not None:
            down.succeed(None)

    def _drain(self, node: FleetNode, module: Any
               ) -> Generator[Any, Any, None]:
        store = module.store
        for chunk in list(store.chunks()):
            if chunk.dirty:
                yield from module._write_back_chunk(chunk)
                chunk.dirty = False
            if node.client is None:
                continue  # no peer wiring -> nothing to hand over
            key = chunk.key
            if not isinstance(key, LbnKey):
                continue
            if store.lookup_lbn(key, touch=False) is not chunk:
                continue  # evicted while earlier pushes were in flight
            target = self.route_block(key.lbn)
            peer = Endpoint(f"s{target}.server-0", PEER_PORT)
            ok = yield from node.client.push(
                peer, key.lbn, 1, KeyedPayload(chunk.length, lbn_key=key))
            if ok:
                self._drained.add()

    def join(self, spec: Optional[TestbedSpec] = None
             ) -> Generator[Any, Any, FleetNode]:
        """Grow the fleet by one node mid-run (a process).

        The new node is built on the shared simulator and switch under
        the next free ``s<i>.`` prefix, replays every file the fleet has
        created (the images are identical by construction), logs into
        iSCSI, gets the cooperative wiring, and finally enters the ring
        — taking over ~1/n of the keyspace.
        """
        self._require_dynamic("join")
        tb_spec = spec if spec is not None else self.spec.testbed
        base = self.spec.testbed
        if (tb_spec.kind != base.kind or tb_spec.seed != base.seed
                or tb_spec.image_capacity_blocks
                != base.image_capacity_blocks):
            raise SimulationError(
                "joining spec must match the fleet's kind and image "
                "geometry (identical images are what make the "
                "consistent-hash placement coherent)")
        if self.spec.cooperative and tb_spec.mode is not ServerMode.NCACHE:
            raise SimulationError(
                "a cooperative fleet needs NCACHE-mode joiners")
        index = len(self.nodes)
        testbed = tb_spec.build(sim=self.sim, network=self.network,
                                name_prefix=f"s{index}.")
        for name, size in self._files:
            testbed.image.create_file(name, size)
        node = FleetNode(index, testbed)
        node.down_event = self.sim.event()
        yield from testbed.initiator.connect()
        if self.spec.cooperative:
            node.service = PeerCacheService(testbed)
            node.client = PeerCacheClient(
                testbed, peers_for=FleetBuilder._peers_for(self, index))
            testbed.initiator.read_interceptor = cooperative_interceptor(
                testbed.ncache, node.client)
        self.nodes.append(node)
        self._routed.append(self.metrics.counter(f"fleet.routed.n{index}"))
        before = self._owner_map()
        self.ring.add_node(index)
        self._note_rebalance(before)
        self._trace_churn("join", index)
        return node

    # -- rebalance accounting ------------------------------------------------

    def _tracked_groups(self) -> List[int]:
        if self._groups_cache is None:
            groups = set()
            image = self.nodes[0].testbed.image
            for name, _size in self._files:
                inode = image.lookup(name)
                for b in range(inode.nblocks):
                    groups.add(self.group_of(inode.block_lbn(b)))
            self._groups_cache = sorted(groups)
        return self._groups_cache

    def _owner_map(self) -> Dict[int, int]:
        return {group: self.ring.owner(group)
                for group in self._tracked_groups()}

    def _note_rebalance(self, before: Dict[int, int]) -> None:
        after = self._owner_map()
        moved = sum(1 for group, owner in before.items()
                    if after.get(group) != owner)
        if moved:
            self._rebalanced.add(moved)

    # -- load balancing ------------------------------------------------------

    def group_of(self, lbn: int) -> int:
        return lbn // self.spec.group_blocks

    def owners_of(self, lbn: int) -> List[int]:
        # Replication is capped by the current ring membership: a leave
        # can shrink the ring below the configured factor.
        count = self.spec.replication
        if count > len(self.ring.nodes):
            count = len(self.ring.nodes)
        return self.ring.owners(self.group_of(lbn), count)

    def route_block(self, lbn: int, salt: int = 0) -> int:
        """Node index serving requests for ``lbn``.

        ``salt`` (e.g. a logical client id) spreads a replicated group's
        load across its owners deterministically.  Under dynamics, a
        down owner is skipped: the pick re-salts over the group's live
        owners (cooperative caching then absorbs the miss storm), or
        over the live nodes further clockwise when the whole owner set
        is dark.
        """
        owners = self.owners_of(lbn)
        pick = owners[salt % len(owners)]
        if self._dynamic and self.nodes[pick].status != "up":
            live = [o for o in owners if self.nodes[o].status == "up"]
            if not live:
                walked = self.ring.owners(self.group_of(lbn),
                                          len(self.ring.nodes))
                live = [o for o in walked
                        if self.nodes[o].status == "up"]
                if not live:
                    raise SimulationError(
                        f"no live node for lbn {lbn} "
                        f"(group {self.group_of(lbn)})")
            self._failover.add()
            pick = live[salt % len(live)]
        return pick

    def route(self, path: str, offset: int = 0, salt: int = 0) -> FleetNode:
        """The node a request for ``path``/``offset`` is balanced to."""
        inode = self.nodes[0].testbed.image.lookup(path)
        lbn = inode.block_lbn(min(offset // self.block_size,
                                  inode.nblocks - 1))
        node = self.nodes[self.route_block(lbn, salt)]
        self._routed[node.index].add()
        if self._dynamic and node.warming:
            self._warmup_ops.add()
            module = node.testbed.ncache
            if module is None \
                    or module.store.used_bytes >= node.warm_target_bytes:
                node.warming = False
        return node

    def note_inflight_retry(self) -> None:
        """A stream's in-flight request raced a node crash and is being
        rerouted (called by fleet-aware workloads)."""
        self._retries.add()

    def peer_endpoints(self, lbn: int, exclude: int) -> List[Endpoint]:
        """The group's other *live* owners, as peer-service endpoints.

        Down owners are skipped so a probe never chases a crashed node;
        a probe already in flight when its peer dies runs into the
        client's RTO and counts a ``fleet.peer_timeout``.
        """
        return [Endpoint(f"s{j}.server-0", PEER_PORT)
                for j in self.owners_of(lbn)
                if j != exclude and self.nodes[j].status == "up"]

    # -- measurement protocol ------------------------------------------------

    def reset_measurements(self) -> None:
        for node in self.nodes:
            node.testbed.reset_measurements()
        self.metrics.reset()

    def warmup_then_measure(self, warmup_s: float, measure_s: float) -> None:
        self.sim.run(until=self.sim.now + warmup_s)
        self.reset_measurements()
        self.sim.run(until=self.sim.now + measure_s)

    def backend_reads(self) -> int:
        """Total iSCSI commands served by the nodes' storage backends.

        ``commands_served`` is a lifetime total — diff two calls around
        the measurement window.
        """
        return sum(node.testbed.target.commands_served
                   for node in self.nodes)

    def routed_counts(self) -> List[float]:
        return [c.value for c in self._routed]

    def imbalance(self) -> float:
        """max/mean of per-node routed requests (1.0 = perfectly even)."""
        counts = self.routed_counts()
        mean = sum(counts) / len(counts)
        value = (max(counts) / mean) if mean else 0.0
        self._imbalance.set(value)
        return value

    def counter_sum(self, name: str) -> float:
        """Sum one server-host counter across the fleet."""
        return sum(node.testbed.server_host.counters[name].value
                   for node in self.nodes)

    def churn_stats(self) -> Dict[str, float]:
        """The membership-dynamics counters, as plain numbers."""
        return {
            "failover_reroute": self._failover.value,
            "warmup_ops": self._warmup_ops.value,
            "rebalance_moved_keys": self._rebalanced.value,
            "drain_pushed": self._drained.value,
            "inflight_retry": self._retries.value,
        }

    def metrics_snapshot(self) -> Dict[str, Any]:
        self.imbalance()
        return {
            "n_servers": len(self.nodes),
            "replication": self.spec.replication,
            "cooperative": self.spec.cooperative,
            "sim_time_s": self.sim.now,
            "fleet": self.metrics.snapshot(),
            "nodes": {node.name: node.testbed.metrics_snapshot()
                      for node in self.nodes},
        }


class FleetBuilder:
    """Builds the testbeds, the ring, and the cooperative wiring."""

    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec

    def build(self) -> Fleet:
        spec = self.spec
        n = spec.n_servers
        ring = HashRing(range(n), vnodes=spec.vnodes, seed=spec.hash_seed)
        if n == 1:
            # Fast path: exactly the standalone testbed, event-for-event.
            testbed = spec.testbed.build()
            return Fleet(spec, testbed.sim, testbed.network,
                         [FleetNode(0, testbed)], ring)
        sim = Simulator()
        sim.trace.process_name = (
            f"Fleet[{n}x{spec.testbed.kind}/{spec.testbed.mode.label}]")
        network = Network(sim)
        nodes = [FleetNode(i, spec.testbed.build(
                     sim=sim, network=network, name_prefix=f"s{i}."))
                 for i in range(n)]
        fleet = Fleet(spec, sim, network, nodes, ring)
        if spec.cooperative:
            for node in nodes:
                node.service = PeerCacheService(node.testbed)
            for node in nodes:
                node.client = PeerCacheClient(
                    node.testbed,
                    peers_for=self._peers_for(fleet, node.index))
                # Local NCache first, then the group's other owners,
                # then (back in the initiator) the wire to iSCSI.
                node.testbed.initiator.read_interceptor = \
                    cooperative_interceptor(node.testbed.ncache, node.client)
        if spec.churn is not None:
            fleet.install_churn(spec.churn)
        return fleet

    @staticmethod
    def _peers_for(fleet: Fleet, index: int):
        def peers(lbn: int) -> List[Endpoint]:
            return fleet.peer_endpoints(lbn, exclude=index)
        return peers
