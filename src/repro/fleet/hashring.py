"""Consistent-hash ring for request routing and block-group placement.

Standard construction: every node contributes ``vnodes`` points on a
2^64 ring (SHA-256 of a salted label — deterministic across processes,
unlike Python's randomized ``hash``); a key routes to the first point
clockwise from its own hash.  ``owners(key, n)`` keeps walking to the
next *distinct* nodes, which is how a replicated block group names its
``n`` owner servers.  Adding or removing one node moves only ~1/N of
the keyspace, the property the fleet's cache placement relies on.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import List, Sequence, Tuple


def _hash64(label: str) -> int:
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Maps hashable keys to one or more of a fixed set of nodes."""

    def __init__(self, nodes: Sequence[int], vnodes: int = 64,
                 seed: int = 0) -> None:
        if not nodes:
            raise ValueError("ring needs at least one node")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.nodes = list(nodes)
        self.vnodes = vnodes
        self.seed = seed
        points: List[Tuple[int, int]] = []
        for node in self.nodes:
            for v in range(vnodes):
                points.append((_hash64(f"{seed}/n{node}/v{v}"), node))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [n for _, n in points]

    def owners(self, key: object, count: int = 1) -> List[int]:
        """The first ``count`` distinct nodes clockwise from ``key``."""
        if not 1 <= count <= len(self.nodes):
            raise ValueError(
                f"count must be in [1, {len(self.nodes)}], got {count}")
        start = bisect.bisect_right(self._hashes,
                                    _hash64(f"{self.seed}/k{key}"))
        found: List[int] = []
        for i in range(len(self._owners)):
            node = self._owners[(start + i) % len(self._owners)]
            if node not in found:
                found.append(node)
                if len(found) == count:
                    break
        return found

    def owner(self, key: object) -> int:
        return self.owners(key, 1)[0]
