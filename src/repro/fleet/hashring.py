"""Consistent-hash ring for request routing and block-group placement.

Standard construction: every node contributes ``vnodes`` points on a
2^64 ring (SHA-256 of a salted label — deterministic across processes,
unlike Python's randomized ``hash``); a key routes to the first point
clockwise from its own hash.  ``owners(key, n)`` keeps walking to the
next *distinct* nodes, which is how a replicated block group names its
``n`` owner servers.  Adding or removing one node moves only ~1/N of
the keyspace, the property the fleet's cache placement relies on.

Membership is mutable: :meth:`add_node` / :meth:`remove_node` insert or
withdraw one node's points in place.  A node's points depend only on
``(seed, node, vnodes)``, so any add/remove sequence lands on exactly
the ring a fresh construction over the same member set would build —
removing a node and adding it back restores the prior assignment
bit-for-bit (the rejoin property the churn tests lock down).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import List, Sequence, Tuple


def _hash64(label: str) -> int:
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Maps hashable keys to one or more of a mutable set of nodes."""

    def __init__(self, nodes: Sequence[int], vnodes: int = 64,
                 seed: int = 0) -> None:
        if not nodes:
            raise ValueError("ring needs at least one node")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.nodes = list(nodes)
        self.vnodes = vnodes
        self.seed = seed
        points: List[Tuple[int, int]] = []
        for node in self.nodes:
            points.extend(self._points_for(node))
        points.sort()
        self._points = points
        self._reindex()

    def _points_for(self, node: int) -> List[Tuple[int, int]]:
        return [(_hash64(f"{self.seed}/n{node}/v{v}"), node)
                for v in range(self.vnodes)]

    def _reindex(self) -> None:
        self._hashes = [h for h, _ in self._points]
        self._owners = [n for _, n in self._points]

    # -- membership ----------------------------------------------------------

    def add_node(self, node: int) -> None:
        """Insert ``node``'s points; identical to a fresh construction
        over the resulting member set."""
        if node in self.nodes:
            raise ValueError(f"node {node} already on the ring")
        self.nodes.append(node)
        for point in self._points_for(node):
            bisect.insort(self._points, point)
        self._reindex()

    def remove_node(self, node: int) -> None:
        """Withdraw ``node``'s points from the ring."""
        if node not in self.nodes:
            raise ValueError(f"node {node} not on the ring")
        if len(self.nodes) == 1:
            raise ValueError("cannot remove the last node")
        self.nodes.remove(node)
        self._points = [p for p in self._points if p[1] != node]
        self._reindex()

    def owners(self, key: object, count: int = 1) -> List[int]:
        """The first ``count`` distinct nodes clockwise from ``key``."""
        if not 1 <= count <= len(self.nodes):
            raise ValueError(
                f"count must be in [1, {len(self.nodes)}], got {count}")
        start = bisect.bisect_right(self._hashes,
                                    _hash64(f"{self.seed}/k{key}"))
        found: List[int] = []
        for i in range(len(self._owners)):
            node = self._owners[(start + i) % len(self._owners)]
            if node not in found:
                found.append(node)
                if len(found) == count:
                    break
        return found

    def owner(self, key: object) -> int:
        return self.owners(key, 1)[0]
