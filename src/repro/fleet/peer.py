"""Cooperative caching: the peer cache-fetch service and its client.

Each fleet node runs a :class:`PeerCacheService` (answering probes from
its own LBN cache, zero-copy via TX substitution) and a
:class:`PeerCacheClient` (probing the block group's other owners on a
local NCache miss).  :func:`cooperative_interceptor` chains the two
behind the initiator's ``read_interceptor`` seam: local NCache first,
then peers, then the wire to iSCSI — the paper's second-level cache
(§3.4) stretched across the fleet.

All fleet counters live in the owning host's registry under ``fleet.*``.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from ..copymodel.accounting import RequestTrace
from ..core.keys import KeyedPayload, LbnKey
from ..net.addresses import Endpoint, PEER_CLIENT_PORT, PEER_PORT
from ..net.buffer import BytesPayload, JunkPayload, Payload, concat
from ..net.network import Datagram
from ..rpc.messages import XidMatcher
from ..rpc.peer import (PeerFetchCall, PeerFetchReply, PeerPushCall,
                        PeerPushReply)
from ..sim.engine import Event, SimulationError

#: Sentinel delivered to a pending reply waiter when its RTO expires.
_RTO_EXPIRED = object()

#: ``fn(lbn) -> peer endpoints to probe``, owner order, self excluded.
PeersForFn = Callable[[int], List[Endpoint]]


class PeerCacheService:
    """Answers peer probes from this node's network-centric cache."""

    def __init__(self, testbed: Any) -> None:
        if testbed.ncache is None:
            raise SimulationError("peer service needs an NCache module")
        self.testbed = testbed
        self.host = testbed.server_host
        self.module = testbed.ncache
        self.discipline = testbed.config.mode.discipline
        self.host.stack.udp_bind(PEER_PORT, self._handle)

    def _handle(self, dgram: Datagram) -> Generator[Event, Any, None]:
        call = dgram.message
        if isinstance(call, PeerPushCall):
            yield from self._handle_push(dgram, call)
            return
        if not isinstance(call, PeerFetchCall):
            raise SimulationError(f"peer service got {call!r}")
        host = self.host
        store = self.module.store
        costs = host.costs
        yield from host.acct.compute(
            call.nblocks * costs.ncache_lookup_ns, "fleet.peer_lookup")
        keys = [LbnKey(call.lun, call.lbn + i) for i in range(call.nblocks)]
        chunks = [store.lookup_lbn(key) for key in keys]
        if all(chunk is not None for chunk in chunks):
            host.counters.add("fleet.peer_served_hit")
            yield from host.acct.compute(
                call.nblocks * costs.ncache_mgmt_ns, "fleet.peer_serve")
            data: Payload = concat([
                KeyedPayload(chunk.length, lbn_key=key)
                for key, chunk in zip(keys, chunks)])
            reply = PeerFetchReply(call.xid, hit=True, lun=call.lun,
                                   lba=call.lbn, nblocks=call.nblocks)
            is_metadata = False
        else:
            host.counters.add("fleet.peer_served_miss")
            data = BytesPayload(b"")
            reply = PeerFetchReply(call.xid, hit=False, lun=call.lun,
                                   lba=call.lbn, nblocks=0)
            is_metadata = True
        if host.sim.trace.enabled:
            host.sim.trace.emit("fleet.peer_serve", cat="fleet",
                                tid=host.sim.trace.tid_for(host.name),
                                lbn=call.lbn, nblocks=call.nblocks,
                                hit=reply.hit)
        # A hit reply's data part is keyed placeholders; the TX hook
        # substitutes the cached buffers on the way out (zero-copy).
        yield from host.stack.udp_send(
            src_ip=dgram.dst.ip, src_port=PEER_PORT, dst=dgram.src,
            message=reply, data=data,
            header=JunkPayload(reply.header_size),
            discipline=self.discipline, is_metadata=is_metadata)

    def _handle_push(self, dgram: Datagram, call: PeerPushCall
                     ) -> Generator[Event, Any, None]:
        """Acknowledge a drained chunk from a leaving peer.

        The RX hook already classified the push as cacheable data and
        chunked its payload into this node's LBN cache; the service's
        only job is the management charge and the ack.
        """
        host = self.host
        host.counters.add("fleet.peer_push", call.nblocks)
        yield from host.acct.compute(
            call.nblocks * host.costs.ncache_mgmt_ns, "fleet.peer_push")
        reply = PeerPushReply(call.xid)
        yield from host.stack.udp_send(
            src_ip=dgram.dst.ip, src_port=PEER_PORT, dst=dgram.src,
            message=reply, data=BytesPayload(b""),
            header=JunkPayload(reply.header_size),
            discipline=self.discipline, is_metadata=True)


class PeerCacheClient:
    """Probes the other owners of a block group on a local miss."""

    def __init__(self, testbed: Any, peers_for: PeersForFn,
                 rto_s: float = 0.02) -> None:
        if testbed.ncache is None:
            raise SimulationError("peer client needs an NCache module")
        self.host = testbed.server_host
        self.local_ip = testbed.server_ips[0]
        self.lun = testbed.ncache.lun
        self.discipline = testbed.config.mode.discipline
        self.peers_for = peers_for
        self.rto_s = rto_s
        self.matcher = XidMatcher(self.host.sim)
        self.host.stack.udp_bind(PEER_CLIENT_PORT, self._on_reply)

    def _on_reply(self, dgram: Datagram) -> Generator[Event, Any, None]:
        reply = dgram.message
        if not isinstance(reply, (PeerFetchReply, PeerPushReply)):
            raise SimulationError(f"peer client got {reply!r}")
        if self.matcher.is_pending(reply.xid):
            self.matcher.resolve(reply.xid, dgram)
        return
        yield  # pragma: no cover - generator marker

    def _rto_expire(self, xid: int, waiter: Event) -> None:
        if waiter.triggered:
            return  # the reply landed at this exact instant; it wins
        self.matcher.cancel(xid)
        self.host.counters.add("fleet.peer_timeout")
        waiter.succeed(_RTO_EXPIRED)

    def fetch(self, lbn: int, nblocks: int,
              trace: Optional[RequestTrace] = None
              ) -> Generator[Event, Any, Optional[Payload]]:
        """Probe peers in owner order; the first full hit wins."""
        for peer in self.peers_for(lbn):
            payload = yield from self._fetch_one(peer, lbn, nblocks, trace)
            if payload is not None:
                return payload
        return None

    def _fetch_one(self, peer: Endpoint, lbn: int, nblocks: int,
                   trace: Optional[RequestTrace]
                   ) -> Generator[Event, Any, Optional[Payload]]:
        host = self.host
        host.counters.add("fleet.peer_probe")
        xid = self.matcher.new_xid()
        call = PeerFetchCall(xid, self.lun, lbn, nblocks)
        waiter = self.matcher.expect(xid)
        yield from host.stack.udp_send(
            src_ip=self.local_ip, src_port=PEER_CLIENT_PORT, dst=peer,
            message=call, data=BytesPayload(b""),
            header=JunkPayload(call.header_size), trace=trace,
            is_metadata=True,
            meta={"trace": trace} if trace is not None else None)
        timer = host.sim.call_later(self.rto_s, self._rto_expire,
                                    xid, waiter)
        value = yield waiter
        if value is _RTO_EXPIRED:
            return None
        timer.cancel()
        reply = value.message
        if not reply.hit:
            host.counters.add("fleet.peer_miss")
            return None
        # The RX hook already chunked the reply payload into the local
        # LBN cache and left the keyed placeholder, Data-In style.
        payload = value.meta.get("keyed_payload")
        if payload is None:
            host.counters.add("fleet.peer_miss")
            return None
        host.counters.add("fleet.peer_hit")
        host.counters.add("fleet.peer_bytes", payload.length)
        if host.sim.trace.enabled:
            host.sim.trace.emit("fleet.peer_hit", cat="fleet",
                                tid=host.sim.trace.tid_for(host.name),
                                lbn=lbn, nblocks=nblocks, peer=str(peer))
        return payload

    def push(self, peer: Endpoint, lbn: int, nblocks: int, data: Payload
             ) -> Generator[Event, Any, bool]:
        """Hand cached blocks to ``peer`` (graceful-leave drain).

        ``data`` is keyed placeholders over this node's resident chunks;
        the TX hook substitutes the real buffers on the way out.  Waits
        for the ack so the caller knows the chunk landed before it
        detaches; a timeout counts against ``fleet.peer_timeout`` and
        the chunk is simply lost to the fleet (it is clean).
        """
        host = self.host
        xid = self.matcher.new_xid()
        call = PeerPushCall(xid, self.lun, lbn, nblocks)
        waiter = self.matcher.expect(xid)
        yield from host.stack.udp_send(
            src_ip=self.local_ip, src_port=PEER_CLIENT_PORT, dst=peer,
            message=call, data=data,
            header=JunkPayload(call.header_size),
            discipline=self.discipline, is_metadata=False)
        timer = host.sim.call_later(self.rto_s, self._rto_expire,
                                    xid, waiter)
        value = yield waiter
        if value is _RTO_EXPIRED:
            return False
        timer.cancel()
        return True


def cooperative_interceptor(module: Any, client: PeerCacheClient
                            ) -> Callable[..., Generator]:
    """Chain local NCache, then peer probing, behind the read seam."""

    def interceptor(lbn: int, nblocks: int,
                    trace: Optional[RequestTrace]
                    ) -> Generator[Event, Any, Optional[Payload]]:
        payload = yield from module.try_serve_read(lbn, nblocks, trace)
        if payload is not None:
            return payload
        return (yield from client.fetch(lbn, nblocks, trace))

    return interceptor
