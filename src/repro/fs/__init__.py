"""Filesystem substrate: disks, image, buffer cache, VFS."""

from .buffer_cache import BufferCache, CacheEntry
from .disk import BLOCK_SIZE, DiskModel, Raid0, make_paper_raid
from .image import DiskStore, FileType, FsImage, Inode, LbnOwner
from .localdev import LocalBlockDevice
from .vfs import VFS, BlockDevice

__all__ = [
    "BLOCK_SIZE",
    "BlockDevice",
    "BufferCache",
    "CacheEntry",
    "DiskModel",
    "DiskStore",
    "FileType",
    "FsImage",
    "Inode",
    "LbnOwner",
    "LocalBlockDevice",
    "Raid0",
    "VFS",
    "make_paper_raid",
]
