"""The file-system buffer/page cache (Linux page-cache analog).

A recency-managed cache of fixed-size blocks keyed by LBN.  Under NCache
the entries hold :class:`~repro.core.keys.KeyedPayload` placeholders
("the retrieved block contains only a key and some 'junk' data", §3.2) —
but they still occupy a full page each, which is exactly the
double-buffering problem the paper controls by *limiting this cache's
size* (§3.4/§4.1).

Eviction follows the paper: "first clean buffers are reclaimed and then
dirty buffers are flushed and reclaimed".  The cache itself never performs
I/O: :meth:`make_room` hands dirty victims back to the caller (the VFS),
which writes them back through the block device — under NCache that
writeback is what triggers FHO→LBN *remapping*.

The cache is a thin adapter over the unified :mod:`repro.cache` eviction
kernel (DESIGN.md §9): the kernel owns the byte budget, recency order
(``clean_first`` victim preference, page-lock pinning) and the
``cache.bcache.*`` metrics; this class keeps the LBN index, the
``bcache.*`` counters/trace events and the sanitizer hook.  When only
pinned pages remain the reclaim loop cannot make progress — the kernel
emits a ``bcache.evict_stalled`` trace event and raises
:class:`~repro.cache.CacheStallError` (a RuntimeError) instead of
silently spinning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..cache import CacheKernel
from ..check import sanitizer as _sanitizer
from ..net.buffer import Payload
from ..obs.trace import TraceBus
from ..sim.stats import CounterSet
from .disk import BLOCK_SIZE


@dataclass(slots=True)
class CacheEntry:
    """One cached block.

    Slotted: warmed full-mode caches hold tens of thousands of entries,
    and the per-instance ``__dict__`` was measurable in the grid's heap
    profile.
    """

    lbn: int
    payload: Payload
    dirty: bool = False
    is_metadata: bool = False
    #: page-lock count: pinned pages are skipped by eviction, exactly like
    #: locked pages during in-flight I/O in a real kernel.
    pins: int = 0
    #: the eviction kernel's handle while resident, else None.
    cache_handle: Optional[int] = None

    @property
    def pinned(self) -> bool:
        return self.pins > 0

    @property
    def size(self) -> int:
        return BLOCK_SIZE


class BufferCache:
    """Page cache with byte capacity and clean-first eviction."""

    def __init__(self, capacity_bytes: int, block_size: int = BLOCK_SIZE,
                 counters: Optional[CounterSet] = None,
                 trace: Optional[TraceBus] = None,
                 policy: str = "lru") -> None:
        if capacity_bytes < block_size:
            raise ValueError("cache smaller than one block")
        self.block_size = block_size
        self.counters = counters if counters is not None else CounterSet()
        #: structured trace bus — optional so the cache stays standalone.
        self.trace = trace
        self._entries: Dict[int, CacheEntry] = {}
        self._kernel = CacheKernel(
            "bcache", capacity_bytes, policy, clean_first=True,
            counters=self.counters, trace=trace,
            stall_event="bcache.evict_stalled", trace_cat="fs")
        # Hot path: every simulated read probes this cache, so resolve
        # the kernel indirection (kernel.touch -> policy.touch ->
        # counter bump) into direct callables and Counter objects once.
        self._promote = self._kernel.policy.touch
        self._ghost_probe = self._kernel.policy.ghost_hit
        metrics = self._kernel.metrics
        self._m_hit = metrics.hit
        self._m_miss = metrics.miss
        self._m_ghost = metrics.ghost_hit
        self._c_hit = self.counters["bcache.hit"]
        self._c_miss = self.counters["bcache.miss"]

    # -- inspection ---------------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        return self._kernel.capacity_bytes

    @capacity_bytes.setter
    def capacity_bytes(self, nbytes: int) -> None:
        # No immediate eviction: an over-budget cache sheds entries at
        # the next make_room, exactly as before the kernel refactor.
        self._kernel.capacity_bytes = nbytes

    @property
    def policy_name(self) -> str:
        return self._kernel.policy_name

    @property
    def kernel_metrics(self):
        """The ``cache.bcache.*`` metric family (arbiter lease input)."""
        return self._kernel.metrics

    def set_ghost_admit(self, admit) -> None:
        """Restrict which evicted pages ghost-record (arbiter hook).

        Under NCache most pages are :class:`~repro.core.keys.KeyedPayload`
        placeholders whose data still lives in the chunk store; letting
        them ghost-record would let this cache claim miss-savings the
        store already provides.  The adaptive arbiter installs a
        predicate admitting only pages with standalone value (physical
        metadata blocks, dirty pages).
        """
        self._kernel.set_ghost_admit(admit)

    @property
    def used_bytes(self) -> int:
        return len(self._entries) * self.block_size

    @property
    def capacity_blocks(self) -> int:
        return self.capacity_bytes // self.block_size

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, lbn: int) -> bool:
        return lbn in self._entries

    def dirty_lbns(self) -> List[int]:
        """Dirty blocks, coldest (best victim) first."""
        return [entry.lbn for _, entry in self._kernel.items()
                if entry.dirty]

    # -- lookup / insert ------------------------------------------------------

    def lookup(self, lbn: int, touch: bool = True) -> Optional[CacheEntry]:
        entry = self._entries.get(lbn)
        if entry is None:
            self._c_miss._total += 1
            self._m_miss._total += 1
            if self._ghost_probe(lbn):
                self._m_ghost._total += 1
            if self.trace is not None and self.trace.enabled:
                self.trace.emit("bcache.miss", cat="fs", lbn=lbn)
            return None
        self._c_hit._total += 1
        self._m_hit._total += 1
        if self.trace is not None and self.trace.enabled:
            self.trace.emit("bcache.hit", cat="fs", lbn=lbn)
        if touch:
            assert entry.cache_handle is not None
            self._promote(entry.cache_handle)
        return entry

    def peek(self, lbn: int) -> Optional[CacheEntry]:
        """Lookup without recency side effects or hit/miss accounting."""
        return self._entries.get(lbn)

    def has_room(self, nblocks: int = 1) -> bool:
        """Whether ``nblocks`` more blocks fit without eviction."""
        return (self._kernel.capacity_bytes
                - len(self._entries) * self.block_size
                >= nblocks * self.block_size)

    def make_room(self, nblocks: int = 1,
                  lbn: Optional[int] = None) -> List[CacheEntry]:
        """Evict until ``nblocks`` fit; return dirty victims to write back.

        Clean victims are reclaimed silently (coldest first); dirty
        victims are removed from the cache and returned — the caller must
        flush them before their memory is considered reusable (the
        simulation enforces this by having the VFS write them back before
        inserting).  When every remaining page is pinned the kernel
        emits ``bcache.evict_stalled`` and raises
        :class:`~repro.cache.CacheStallError`.
        """
        return self._kernel.make_room(nblocks * self.block_size, key=lbn,
                                      on_evict=self._evicted)

    def resize(self, new_capacity_bytes: int) -> List[CacheEntry]:
        """Change the byte budget (the NCache-squeezes-FS-cache side of
        §3.4); returns dirty victims exactly like :meth:`make_room`."""
        return self._kernel.resize(new_capacity_bytes,
                                   on_evict=self._evicted)

    def _evicted(self, entry: CacheEntry) -> None:
        entry.cache_handle = None
        del self._entries[entry.lbn]
        if entry.dirty:
            self.counters.add("bcache.evict_dirty")
        else:
            self.counters.add("bcache.evict_clean")
        if self.trace is not None and self.trace.enabled:
            self.trace.emit("bcache.evict", cat="fs", lbn=entry.lbn,
                            dirty=entry.dirty)

    def pin(self, lbn: int) -> bool:
        """Page-lock a block against eviction; True if it was present."""
        entry = self._entries.get(lbn)
        if entry is None:
            return False
        entry.pins += 1
        return True

    def unpin(self, lbn: int) -> None:
        entry = self._entries.get(lbn)
        if entry is not None and entry.pins > 0:
            entry.pins -= 1

    def insert(self, lbn: int, payload: Payload, dirty: bool = False,
               is_metadata: bool = False) -> CacheEntry:
        """Insert or replace a block; caller must have made room first."""
        # len()-based arithmetic, not the properties: this path runs once
        # per block entering the cache.
        if self._kernel.capacity_bytes - len(self._entries) * self.block_size \
                < self.block_size and lbn not in self._entries:
            raise RuntimeError(
                "insert without room; call make_room() and flush victims")
        san = _sanitizer.active()
        if san is not None:
            san.fs_page_inserted(lbn, payload)
        old = self._entries.get(lbn)
        if old is not None:
            assert old.cache_handle is not None
            self._kernel.remove(old.cache_handle)
            old.cache_handle = None
        entry = CacheEntry(lbn=lbn, payload=payload, dirty=dirty,
                           is_metadata=is_metadata)
        entry.cache_handle = self._kernel.insert(lbn, entry,
                                                 self.block_size)
        self._entries[lbn] = entry
        return entry

    # -- state changes -----------------------------------------------------------

    def mark_clean(self, lbn: int) -> None:
        entry = self._entries.get(lbn)
        if entry is not None:
            entry.dirty = False

    def invalidate(self, lbn: int) -> None:
        entry = self._entries.pop(lbn, None)
        if entry is not None and entry.cache_handle is not None:
            self._kernel.remove(entry.cache_handle)
            entry.cache_handle = None

    def clear(self) -> None:
        self._entries.clear()
        self._kernel.clear()

    def hit_ratio(self) -> float:
        hits = self.counters["bcache.hit"].value
        misses = self.counters["bcache.miss"].value
        total = hits + misses
        return hits / total if total else 0.0
