"""The file-system buffer/page cache (Linux page-cache analog).

An LRU cache of fixed-size blocks keyed by LBN.  Under NCache the entries
hold :class:`~repro.core.keys.KeyedPayload` placeholders ("the retrieved
block contains only a key and some 'junk' data", §3.2) — but they still
occupy a full page each, which is exactly the double-buffering problem the
paper controls by *limiting this cache's size* (§3.4/§4.1).

Eviction follows the paper: "first clean buffers are reclaimed and then
dirty buffers are flushed and reclaimed".  The cache itself never performs
I/O: :meth:`make_room` hands dirty victims back to the caller (the VFS),
which writes them back through the block device — under NCache that
writeback is what triggers FHO→LBN *remapping*.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

from ..check import sanitizer as _sanitizer
from ..net.buffer import Payload
from ..obs.trace import TraceBus
from ..sim.stats import CounterSet
from .disk import BLOCK_SIZE


@dataclass(slots=True)
class CacheEntry:
    """One cached block.

    Slotted: warmed full-mode caches hold tens of thousands of entries,
    and the per-instance ``__dict__`` was measurable in the grid's heap
    profile.
    """

    lbn: int
    payload: Payload
    dirty: bool = False
    is_metadata: bool = False
    #: page-lock count: pinned pages are skipped by eviction, exactly like
    #: locked pages during in-flight I/O in a real kernel.
    pins: int = 0

    @property
    def pinned(self) -> bool:
        return self.pins > 0

    @property
    def size(self) -> int:
        return BLOCK_SIZE


class BufferCache:
    """LRU page cache with byte capacity and clean-first eviction."""

    def __init__(self, capacity_bytes: int, block_size: int = BLOCK_SIZE,
                 counters: Optional[CounterSet] = None,
                 trace: Optional[TraceBus] = None) -> None:
        if capacity_bytes < block_size:
            raise ValueError("cache smaller than one block")
        self.capacity_bytes = capacity_bytes
        self.block_size = block_size
        self.counters = counters if counters is not None else CounterSet()
        #: structured trace bus — optional so the cache stays standalone.
        self.trace = trace
        self._entries: "OrderedDict[int, CacheEntry]" = OrderedDict()

    # -- inspection ---------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return len(self._entries) * self.block_size

    @property
    def capacity_blocks(self) -> int:
        return self.capacity_bytes // self.block_size

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, lbn: int) -> bool:
        return lbn in self._entries

    def dirty_lbns(self) -> List[int]:
        """Dirty blocks, least-recently-used first."""
        return [e.lbn for e in self._entries.values() if e.dirty]

    # -- lookup / insert ------------------------------------------------------

    def lookup(self, lbn: int, touch: bool = True) -> Optional[CacheEntry]:
        entry = self._entries.get(lbn)
        if entry is None:
            self.counters.add("bcache.miss")
            if self.trace is not None and self.trace.enabled:
                self.trace.emit("bcache.miss", cat="fs", lbn=lbn)
            return None
        self.counters.add("bcache.hit")
        if self.trace is not None and self.trace.enabled:
            self.trace.emit("bcache.hit", cat="fs", lbn=lbn)
        if touch:
            self._entries.move_to_end(lbn)
        return entry

    def peek(self, lbn: int) -> Optional[CacheEntry]:
        """Lookup without LRU side effects or hit/miss accounting."""
        return self._entries.get(lbn)

    def make_room(self, nblocks: int = 1) -> List[CacheEntry]:
        """Evict until ``nblocks`` fit; return dirty victims to write back.

        Clean victims are reclaimed silently (oldest first); dirty victims
        are removed from the cache and returned — the caller must flush
        them before their memory is considered reusable (the simulation
        enforces this by having the VFS write them back before inserting).
        """
        needed = nblocks * self.block_size
        dirty_victims: List[CacheEntry] = []
        while self.capacity_bytes - self.used_bytes < needed:
            victim = self._pick_victim()
            if victim is None:
                raise RuntimeError("buffer cache cannot make room")
            del self._entries[victim.lbn]
            if victim.dirty:
                dirty_victims.append(victim)
                self.counters.add("bcache.evict_dirty")
            else:
                self.counters.add("bcache.evict_clean")
            if self.trace is not None and self.trace.enabled:
                self.trace.emit("bcache.evict", cat="fs", lbn=victim.lbn,
                                dirty=victim.dirty)
        return dirty_victims

    def _pick_victim(self) -> Optional[CacheEntry]:
        chosen: Optional[CacheEntry] = None
        for entry in self._entries.values():  # LRU order
            if not entry.dirty and not entry.pinned:
                chosen = entry
                break
        if chosen is None:
            # No clean buffer: reclaim the LRU unpinned dirty one.
            chosen = next((e for e in self._entries.values()
                           if not e.pinned), None)
        return chosen

    def pin(self, lbn: int) -> bool:
        """Page-lock a block against eviction; True if it was present."""
        entry = self._entries.get(lbn)
        if entry is None:
            return False
        entry.pins += 1
        return True

    def unpin(self, lbn: int) -> None:
        entry = self._entries.get(lbn)
        if entry is not None and entry.pins > 0:
            entry.pins -= 1

    def insert(self, lbn: int, payload: Payload, dirty: bool = False,
               is_metadata: bool = False) -> CacheEntry:
        """Insert or replace a block; caller must have made room first."""
        if self.capacity_bytes - self.used_bytes < self.block_size \
                and lbn not in self._entries:
            raise RuntimeError(
                "insert without room; call make_room() and flush victims")
        san = _sanitizer.active()
        if san is not None:
            san.fs_page_inserted(lbn, payload)
        entry = CacheEntry(lbn=lbn, payload=payload, dirty=dirty,
                           is_metadata=is_metadata)
        self._entries[lbn] = entry
        self._entries.move_to_end(lbn)
        return entry

    # -- state changes -----------------------------------------------------------

    def mark_clean(self, lbn: int) -> None:
        entry = self._entries.get(lbn)
        if entry is not None:
            entry.dirty = False

    def invalidate(self, lbn: int) -> None:
        self._entries.pop(lbn, None)

    def clear(self) -> None:
        self._entries.clear()

    def hit_ratio(self) -> float:
        hits = self.counters["bcache.hit"].value
        misses = self.counters["bcache.miss"].value
        total = hits + misses
        return hits / total if total else 0.0
