"""Disk and RAID-0 models.

The paper's storage server uses four IDE disks (IBM DTLA-307075, 7200 rpm)
behind Promise controllers as RAID-0.  We model each disk with a classic
seek + rotation + transfer service time and a sequential-access fast path
(no seek/rotation when the request continues the previous one), and RAID-0
as striping with the component reads in parallel.

Times are computed in **block** units; the filesystem block (4 KB) is the
unit of LBNs throughout the library.
"""

from __future__ import annotations

from typing import Any, Generator, List

from ..sim.engine import AllOf, Event, Simulator
from ..sim.process import start
from ..sim.resources import Resource

#: Filesystem block size used across the library (Linux 4 KB pages).
BLOCK_SIZE = 4096


class DiskModel:
    """A single disk with FIFO service and sequential detection."""

    #: Concurrent sequential streams the drive+elevator can keep sequential
    #: (track buffer segments, firmware readahead, request-queue sorting).
    #: Interleaved sequential streams from multiple clients stay seek-free
    #: up to this many cursors.
    STREAM_CURSORS = 64

    def __init__(self, sim: Simulator, name: str = "disk",
                 seek_ms: float = 8.5, rotation_ms: float = 4.17,
                 transfer_mbps: float = 35.0,
                 block_size: int = BLOCK_SIZE) -> None:
        self.sim = sim
        self.name = name
        self.seek_s = seek_ms * 1e-3
        self.rotation_s = rotation_ms * 1e-3
        self.transfer_bps = transfer_mbps * 1024 * 1024
        self.block_size = block_size
        self._resource = Resource(sim, capacity=1, name=name)
        self._cursors: list[int] = []  # expected next LBN per live stream
        self.reads = 0
        self.writes = 0
        self.sequential_hits = 0

    def service_time(self, lbn: int, nblocks: int) -> float:
        """Service time for one request, given the head position state."""
        transfer = nblocks * self.block_size / self.transfer_bps
        if lbn in self._cursors:
            return transfer
        return self.seek_s + self.rotation_s + transfer

    def _advance_cursor(self, lbn: int, nblocks: int) -> None:
        if lbn in self._cursors:
            self._cursors.remove(lbn)
            self.sequential_hits += 1
        self._cursors.append(lbn + nblocks)
        if len(self._cursors) > self.STREAM_CURSORS:
            self._cursors.pop(0)

    def io(self, lbn: int, nblocks: int, write: bool = False
           ) -> Generator[Event, Any, None]:
        """Perform one I/O (process helper); FIFO queueing on the disk."""
        if nblocks <= 0:
            raise ValueError("nblocks must be positive")
        yield self._resource.acquire()
        try:
            hold = self.service_time(lbn, nblocks)
            self._advance_cursor(lbn, nblocks)
            if write:
                self.writes += 1
            else:
                self.reads += 1
            yield hold  # plain delay: no Event, one dispatch
        finally:
            self._resource.release()

    def busy_time(self) -> float:
        return self._resource.busy_time()

    def utilization(self, since_busy: float, since_time: float) -> float:
        return self._resource.utilization(since_busy, since_time)


class Raid0:
    """RAID-0 striping over identical disks; component I/Os run in parallel.

    ``stripe_blocks`` is the stripe unit in filesystem blocks (the paper
    does not give the chunk size; 16 blocks = 64 KB is a typical default).
    """

    def __init__(self, disks: List[DiskModel], stripe_blocks: int = 16) -> None:
        if not disks:
            raise ValueError("need at least one disk")
        if stripe_blocks <= 0:
            raise ValueError("stripe_blocks must be positive")
        self.disks = disks
        self.stripe_blocks = stripe_blocks
        self.sim = disks[0].sim

    def _split(self, lbn: int, nblocks: int) -> List[tuple]:
        """Split a logical extent into per-disk (disk, disk_lbn, n) pieces."""
        pieces = []
        remaining = nblocks
        cursor = lbn
        while remaining > 0:
            stripe_index = cursor // self.stripe_blocks
            within = cursor % self.stripe_blocks
            disk = self.disks[stripe_index % len(self.disks)]
            row = stripe_index // len(self.disks)
            disk_lbn = row * self.stripe_blocks + within
            take = min(self.stripe_blocks - within, remaining)
            pieces.append((disk, disk_lbn, take))
            cursor += take
            remaining -= take
        return pieces

    def io(self, lbn: int, nblocks: int, write: bool = False
           ) -> Generator[Event, Any, None]:
        """One logical I/O; component disk I/Os proceed in parallel."""
        pieces = self._split(lbn, nblocks)
        if len(pieces) == 1:
            disk, disk_lbn, take = pieces[0]
            yield from disk.io(disk_lbn, take, write)
            return
        procs = [start(self.sim, disk.io(disk_lbn, take, write),
                       name=f"raid-{disk.name}")
                 for disk, disk_lbn, take in pieces]
        yield AllOf(self.sim, procs)

    def busy_time(self) -> float:
        return sum(d.busy_time() for d in self.disks)


def make_paper_raid(sim: Simulator) -> Raid0:
    """The paper's storage: 4 IDE disks as RAID-0."""
    disks = [DiskModel(sim, name=f"ide{i}") for i in range(4)]
    return Raid0(disks)
