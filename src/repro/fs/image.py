"""Filesystem image: inodes, directories, superblock, block allocation.

The NFS server interprets an ext2-flavoured filesystem that lives on the
iSCSI block device.  ``FsImage`` is the authoritative description of that
on-disk layout — both the server's filesystem code (which *interprets*
metadata) and the storage target (which resolves an LBN to its content)
reference it, exactly as both ends of a real deployment see the same
on-disk bytes.

Layout (in 4 KB blocks):

* LBN 0 — superblock (metadata)
* LBN 1 .. inode_table_blocks — inode table (metadata)
* then alternating directory blocks and file extents as allocated.

Regular-file content is *virtual*: block ``b`` of inode ``i`` materializes
deterministic bytes derived from ``(image seed, i)`` (see
:func:`repro.net.buffer.pattern_bytes`), so a 2 GB benchmark file costs no
real memory but every byte is still checkable.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..net.buffer import ExtentPayload, Payload, VirtualPayload
from .disk import BLOCK_SIZE


class FileType(enum.Enum):
    """Inode type — the metadata/data distinction hangs off this."""

    REGULAR = "regular"
    DIRECTORY = "directory"


@dataclass
class Inode:
    """An inode: identity, type, size and a contiguous extent."""

    ino: int
    ftype: FileType
    size: int
    start_lbn: int
    nblocks: int
    generation: int = 1
    name: str = ""

    @property
    def is_regular(self) -> bool:
        return self.ftype is FileType.REGULAR

    def block_lbn(self, block_index: int) -> int:
        if not 0 <= block_index < self.nblocks:
            raise ValueError(
                f"block {block_index} out of extent (inode {self.ino}, "
                f"{self.nblocks} blocks)")
        return self.start_lbn + block_index


@dataclass(frozen=True)
class LbnOwner:
    """What a given LBN holds.

    ``kind`` is "super" | "inode_table" | "dir" | "data" | "free"; for
    data blocks, ``inode``/``block_index`` identify the file block.
    """

    kind: str
    inode: Optional[int] = None
    block_index: int = 0

    @property
    def is_metadata(self) -> bool:
        return self.kind in ("super", "inode_table", "dir")


class FsImage:
    """The on-disk filesystem layout and initial contents."""

    INODES_PER_BLOCK = 32
    DIRENTS_PER_BLOCK = 64

    def __init__(self, capacity_blocks: int, seed: int = 1,
                 block_size: int = BLOCK_SIZE,
                 inode_table_blocks: int = 128) -> None:
        if capacity_blocks <= 1 + inode_table_blocks:
            raise ValueError("capacity too small for metadata regions")
        self.block_size = block_size
        self.capacity_blocks = capacity_blocks
        self.seed = seed
        self.inode_table_blocks = inode_table_blocks
        self._next_lbn = 1 + inode_table_blocks
        self._next_ino = 2  # 1 is the root directory, ext2-style
        self.inodes: Dict[int, Inode] = {}
        self.by_name: Dict[str, int] = {}
        self._dir_blocks: List[int] = []
        self._dir_block_set: set[int] = set()
        # Sorted extent index for O(log n) lbn_owner: parallel arrays of
        # (extent start, extent end, inode number), starts strictly increasing
        # because allocation is sequential.
        self._extent_starts: List[int] = []
        self._extent_ends: List[int] = []
        self._extent_inos: List[int] = []
        root = Inode(ino=1, ftype=FileType.DIRECTORY, size=0,
                     start_lbn=0, nblocks=0, name="/")
        self.inodes[1] = root

    # -- allocation ---------------------------------------------------------

    def _allocate_blocks(self, nblocks: int) -> int:
        start = self._next_lbn
        if start + nblocks > self.capacity_blocks:
            raise RuntimeError(
                f"filesystem full: need {nblocks} blocks at {start}, "
                f"capacity {self.capacity_blocks}")
        self._next_lbn += nblocks
        return start

    def blocks_for(self, nbytes: int) -> int:
        return max(1, -(-nbytes // self.block_size))

    def create_file(self, name: str, size: int) -> Inode:
        """Create a regular file of ``size`` bytes with initial content."""
        if name in self.by_name:
            raise ValueError(f"file {name!r} exists")
        nblocks = self.blocks_for(size)
        start = self._allocate_blocks(nblocks)
        inode = Inode(ino=self._next_ino, ftype=FileType.REGULAR, size=size,
                      start_lbn=start, nblocks=nblocks, name=name)
        self._next_ino += 1
        self.inodes[inode.ino] = inode
        self.by_name[name] = inode.ino
        self._extent_starts.append(start)
        self._extent_ends.append(start + nblocks)
        self._extent_inos.append(inode.ino)
        # Grow the root directory by one block per DIRENTS_PER_BLOCK files.
        if (len(self.by_name) - 1) % self.DIRENTS_PER_BLOCK == 0:
            lbn = self._allocate_blocks(1)
            self._dir_blocks.append(lbn)
            self._dir_block_set.add(lbn)
        return inode

    # -- lookups --------------------------------------------------------------

    def lookup(self, name: str) -> Inode:
        ino = self.by_name.get(name)
        if ino is None:
            raise FileNotFoundError(name)
        return self.inodes[ino]

    def inode(self, ino: int) -> Inode:
        try:
            return self.inodes[ino]
        except KeyError:
            raise FileNotFoundError(f"inode {ino}") from None

    # -- lifecycle -----------------------------------------------------------

    def truncate(self, inode: Inode, new_size: int) -> None:
        """Shrink a file.  The extent is kept (blocks are never reused by
        this allocator, so stale cached chunks can never alias new data);
        only the logical size changes."""
        if new_size < 0 or new_size > inode.size:
            raise ValueError(
                f"truncate to {new_size} outside [0, {inode.size}]")
        inode.size = new_size

    def remove_file(self, name: str) -> Inode:
        """Remove a file: the name disappears and the inode goes stale.

        The generation bumps so outstanding file handles (which carry the
        old generation) fail with ESTALE, NFS-style.  Blocks are not
        reclaimed — the sequential allocator never reuses them, which is
        what makes lingering NCache chunks for dead files harmless (they
        simply age out of the LRU).
        """
        inode = self.lookup(name)
        del self.by_name[name]
        inode.generation += 1
        inode.name = ""
        return inode

    def is_stale(self, ino: int, generation: int) -> bool:
        """True if a file handle no longer names a live file."""
        inode = self.inodes.get(ino)
        if inode is None:
            return True
        if inode.generation != generation:
            return True
        return inode.ino != 1 and not inode.name  # removed, same object

    def inode_table_lbn(self, ino: int) -> int:
        """The inode-table block holding this inode's metadata."""
        return 1 + (ino // self.INODES_PER_BLOCK) % self.inode_table_blocks

    def dir_block_lbn(self, name: str) -> int:
        """The directory block holding the entry for ``name``."""
        if not self._dir_blocks:
            return 0  # superblock stands in before any dir block exists
        index = (self.by_name.get(name, 0) // self.DIRENTS_PER_BLOCK)
        return self._dir_blocks[index % len(self._dir_blocks)]

    def lbn_owner(self, lbn: int) -> LbnOwner:
        if lbn == 0:
            return LbnOwner("super")
        if 1 <= lbn <= self.inode_table_blocks:
            return LbnOwner("inode_table")
        if lbn in self._dir_block_set:
            return LbnOwner("dir")
        i = bisect.bisect_right(self._extent_starts, lbn) - 1
        if i >= 0 and lbn < self._extent_ends[i]:
            ino = self._extent_inos[i]
            return LbnOwner("data", ino, lbn - self._extent_starts[i])
        return LbnOwner("free")

    # -- content ----------------------------------------------------------------

    def file_tag(self, ino: int) -> int:
        """Virtual-payload tag for a file's initial content."""
        return (self.seed * 0x1000003) ^ (ino * 0x9E3779B1)

    def file_payload(self, inode: Inode, offset: int, length: int) -> Payload:
        """Initial content of a byte range of a regular file."""
        if offset < 0 or length < 0:
            raise ValueError("negative offset/length")
        return VirtualPayload(self.file_tag(inode.ino), offset, length)

    def initial_block_payload(self, lbn: int) -> Payload:
        """Initial content of an arbitrary LBN (what the disks hold)."""
        owner = self.lbn_owner(lbn)
        if owner.kind == "data":
            inode = self.inodes[owner.inode]
            return VirtualPayload(self.file_tag(inode.ino),
                                  owner.block_index * self.block_size,
                                  self.block_size)
        # Metadata/free blocks: deterministic filler tagged by region.
        return VirtualPayload(self.seed ^ 0x4D455441, lbn * self.block_size,
                              self.block_size)


class DiskStore:
    """Target-side authoritative block contents: image defaults + writes.

    Each overwrite of a block bumps that LBN's **generation**; extent
    payloads stored for the block are restamped with it.  Generations
    never affect content — they let staleness checks compare a small
    integer instead of 4 KB of bytes.
    """

    def __init__(self, image: FsImage) -> None:
        self.image = image
        self._written: Dict[int, Payload] = {}
        self._generations: Dict[int, int] = {}

    def read_block(self, lbn: int) -> Payload:
        payload = self._written.get(lbn)
        if payload is not None:
            return payload
        return self.image.initial_block_payload(lbn)

    def read_blocks(self, lbn: int, nblocks: int) -> List[Payload]:
        return [self.read_block(lbn + i) for i in range(nblocks)]

    def block_generation(self, lbn: int) -> int:
        """How many times ``lbn`` has been overwritten (0 = pristine)."""
        return self._generations.get(lbn, 0)

    def write_block(self, lbn: int, payload: Payload) -> None:
        if payload.length != self.image.block_size:
            raise ValueError(
                f"write of {payload.length} bytes to block-sized store")
        generation = self._generations.get(lbn, 0) + 1
        self._generations[lbn] = generation
        if isinstance(payload, ExtentPayload):
            payload = payload.with_generation(generation)
        self._written[lbn] = payload

    def write_extent(self, lbn: int, payload: Payload) -> None:
        """Write a block-aligned multi-block payload."""
        bs = self.image.block_size
        if payload.length % bs:
            raise ValueError("extent write must be block-aligned")
        for i in range(payload.length // bs):
            self.write_block(lbn + i, payload.slice(i * bs, bs))

    @property
    def written_blocks(self) -> int:
        return len(self._written)
