"""A block device backed by local disks (used inside the storage server)."""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..copymodel.accounting import RequestTrace
from ..net.buffer import Payload, concat
from ..sim.engine import Event
from .disk import Raid0
from .image import DiskStore


class LocalBlockDevice:
    """Raid-backed block device: disk service time + authoritative contents.

    Data transfer between disk and memory is DMA and costs no CPU; the
    iSCSI target charges its own copies on top of this device.
    """

    def __init__(self, store: DiskStore, raid: Raid0) -> None:
        self.store = store
        self.raid = raid
        self.block_size = store.image.block_size

    def read(self, lbn: int, nblocks: int, is_metadata: bool = False,
             trace: Optional[RequestTrace] = None
             ) -> Generator[Event, Any, Payload]:
        yield from self.raid.io(lbn, nblocks, write=False)
        return concat(self.store.read_blocks(lbn, nblocks))

    def write(self, lbn: int, payload: Payload, is_metadata: bool = False,
              trace: Optional[RequestTrace] = None
              ) -> Generator[Event, Any, None]:
        if payload.length % self.block_size:
            raise ValueError("block device writes must be block-aligned")
        nblocks = payload.length // self.block_size
        yield from self.raid.io(lbn, nblocks, write=True)
        self.store.write_extent(lbn, payload)
