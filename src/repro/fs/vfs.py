"""VFS: read / write / sendfile over the buffer cache and a block device.

This is where the server-side data path copies live, so the copy counts of
the paper's Table 2 fall out of this module plus the socket layer:

* ``cache_fill`` — block-device payload → buffer cache (read miss, +1);
* ``fs_read``    — buffer cache → daemon reply buffer (NFS read, +1);
* ``cache_write``— received payload → buffer cache (NFS write, +1);
* the socket-boundary ``sock_tx`` copy is charged by the network stack.

``sendfile`` skips ``fs_read`` (data goes straight from the cache to the
socket), which is why kHTTPd's read path has one copy fewer than the NFS
server's (Table 2).

Every movement honours the VFS's :class:`CopyDiscipline` — PHYSICAL for
the original servers, LOGICAL under NCache, ZERO for the ideal baseline —
except metadata, which always moves physically (§3.3).
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Protocol

from ..copymodel.accounting import CopyDiscipline, RequestTrace
from ..net.buffer import Payload, apply_discipline, concat
from ..net.host import Host
from ..sim.engine import Event
from .buffer_cache import BufferCache, CacheEntry
from .image import FsImage, Inode


class BlockDevice(Protocol):
    """What the VFS needs from the storage below it."""

    def read(self, lbn: int, nblocks: int, is_metadata: bool = False,
             trace: Optional[RequestTrace] = None
             ) -> Generator[Event, Any, Payload]:
        ...

    def write(self, lbn: int, payload: Payload, is_metadata: bool = False,
              trace: Optional[RequestTrace] = None
              ) -> Generator[Event, Any, None]:
        ...


class VFS:
    """One host's filesystem layer."""

    def __init__(self, host: Host, image: FsImage, cache: BufferCache,
                 blockdev: BlockDevice,
                 discipline: CopyDiscipline = CopyDiscipline.PHYSICAL,
                 readahead_blocks: int = 0) -> None:
        self.host = host
        self.image = image
        self.cache = cache
        self.blockdev = blockdev
        self.discipline = discipline
        self.readahead_blocks = readahead_blocks
        self.block_size = image.block_size
        #: Optional hook ``fn(block_payload, lbn) -> payload`` applied to
        #: each block stored by :meth:`write`.  The NCache wiring uses it
        #: to stamp the block's LBN key onto key-carrying placeholders so
        #: post-remap lookups succeed ("some NFS read replies may contain
        #: both an FHO key and an LBN key", §3.4).
        self.lbn_annotator = None

    # ------------------------------------------------------------------
    # Regular data path
    # ------------------------------------------------------------------

    def read(self, inode: Inode, offset: int, length: int,
             trace: Optional[RequestTrace] = None
             ) -> Generator[Event, Any, Payload]:
        """Read a byte range into a (virtual) daemon buffer.

        Performs the ``fs_read`` move: buffer cache → reply buffer.
        """
        assembled, nblocks = yield from self._cached_range(
            inode, offset, length, trace)
        yield from self.host.acct.move(
            self.discipline, assembled.length, "fs_read", trace,
            nkeys=nblocks)
        return apply_discipline(assembled, self.discipline)

    def sendfile_payload(self, inode: Inode, offset: int, length: int,
                         trace: Optional[RequestTrace] = None
                         ) -> Generator[Event, Any, Payload]:
        """The sendfile path: cache → socket directly, no ``fs_read`` copy.

        Returns the cache-resident payload; the caller hands it to the
        socket layer, which performs the single data movement.
        """
        assembled, _ = yield from self._cached_range(
            inode, offset, length, trace)
        return assembled

    def write(self, inode: Inode, offset: int, payload: Payload,
              trace: Optional[RequestTrace] = None
              ) -> Generator[Event, Any, None]:
        """Write a block-aligned payload into the cache (dirty blocks).

        Performs the ``cache_write`` move: received buffers → page cache.
        Blocks already present are *overwritten* in place (the cheap write
        path of Table 2); absent blocks are inserted dirty.
        """
        bs = self.block_size
        if offset % bs or payload.length % bs:
            raise ValueError(
                f"unaligned write (offset={offset}, len={payload.length}); "
                "the simulated NFS server issues block-aligned writes")
        first = offset // bs
        nblocks = payload.length // bs
        if first + nblocks > inode.nblocks:
            raise ValueError("write beyond file extent")
        yield from self.host.acct.compute(
            nblocks * self.host.costs.cache_lookup_ns, "fs.lookup")
        yield from self.host.acct.move(
            self.discipline, payload.length, "cache_write", trace,
            nkeys=nblocks)
        stored = apply_discipline(payload, self.discipline)
        for i in range(nblocks):
            lbn = inode.block_lbn(first + i)
            block_payload = stored.slice(i * bs, bs)
            if self.lbn_annotator is not None:
                block_payload = self.lbn_annotator(block_payload, lbn)
            entry = self.cache.peek(lbn)
            if entry is not None:
                entry.payload = block_payload
                entry.dirty = True
                self.cache.lookup(lbn)  # LRU touch + hit accounting
            else:
                yield from self._evict_for(1)
                self.cache.insert(lbn, block_payload, dirty=True)
                self.cache.counters.add("bcache.write_alloc")

    # ------------------------------------------------------------------
    # Metadata path
    # ------------------------------------------------------------------

    def read_inode_metadata(self, ino: int,
                            trace: Optional[RequestTrace] = None
                            ) -> Generator[Event, Any, None]:
        """Bring the inode-table block for ``ino`` into the cache."""
        yield from self._ensure_metadata_block(
            self.image.inode_table_lbn(ino), trace)

    def read_dir_metadata(self, name: str,
                          trace: Optional[RequestTrace] = None
                          ) -> Generator[Event, Any, None]:
        """Bring the directory block holding ``name`` into the cache."""
        yield from self._ensure_metadata_block(
            self.image.dir_block_lbn(name), trace)

    def _ensure_metadata_block(self, lbn: int,
                               trace: Optional[RequestTrace]
                               ) -> Generator[Event, Any, None]:
        yield from self.host.acct.compute(
            self.host.costs.cache_lookup_ns, "fs.lookup")
        if self.cache.lookup(lbn) is not None:
            return
        payload = yield from self.blockdev.read(lbn, 1, is_metadata=True,
                                                trace=trace)
        # Metadata is always physically copied into the cache (§3.3).
        yield from self.host.acct.physical_copy(
            payload.length, "cache_fill", trace, is_metadata=True)
        yield from self._evict_for(1)
        self.cache.insert(lbn, payload.physical_copy(),  # check: ignore[copy-discipline] -- metadata cache fill (§3.3), charged just above
                          is_metadata=True)

    # ------------------------------------------------------------------
    # File lifecycle
    # ------------------------------------------------------------------

    def truncate(self, inode: Inode, new_size: int,
                 trace: Optional[RequestTrace] = None
                 ) -> Generator[Event, Any, None]:
        """Shrink a file and invalidate cached pages beyond the new end.

        Dirty pages past the truncation point are discarded, not flushed —
        their data is gone by definition.
        """
        yield from self.host.acct.compute(
            self.host.costs.nfs_meta_op_ns, "fs.truncate")
        old_blocks = inode.nblocks
        self.image.truncate(inode, new_size)
        keep = self.image.blocks_for(new_size) if new_size else 0
        for b in range(keep, old_blocks):
            self.cache.invalidate(inode.block_lbn(b))
        yield from self.read_inode_metadata(inode.ino, trace)

    def remove(self, inode: Inode, trace: Optional[RequestTrace] = None
               ) -> Generator[Event, Any, None]:
        """Drop every cached page of a removed file (no writeback)."""
        yield from self.host.acct.compute(
            self.host.costs.nfs_meta_op_ns, "fs.remove")
        for b in range(inode.nblocks):
            self.cache.invalidate(inode.block_lbn(b))
        yield from self.read_dir_metadata(inode.name or "", trace)
        yield from self.read_inode_metadata(inode.ino, trace)

    # ------------------------------------------------------------------
    # Writeback
    # ------------------------------------------------------------------

    def flush_lbn(self, lbn: int, trace: Optional[RequestTrace] = None
                  ) -> Generator[Event, Any, bool]:
        """Write one dirty cached block back to storage; True if flushed."""
        entry = self.cache.peek(lbn)
        if entry is None or not entry.dirty:
            return False
        yield from self._write_back(entry, trace)
        self.cache.mark_clean(lbn)
        return True

    def flush_oldest(self, max_blocks: int,
                     trace: Optional[RequestTrace] = None
                     ) -> Generator[Event, Any, int]:
        """Flush up to ``max_blocks`` of the oldest dirty blocks.

        Contiguous dirty blocks are clustered into one block-device write
        each (kupdated-style writeback clustering), so a burst of dirty
        data costs one storage seek per extent instead of one per block.
        """
        victims = sorted(self.cache.dirty_lbns()[:max_blocks])
        flushed = 0
        run: List[int] = []
        for lbn in victims:
            if run and lbn != run[-1] + 1:
                flushed += yield from self._flush_run(run, trace)
                run = []
            run.append(lbn)
        if run:
            flushed += yield from self._flush_run(run, trace)
        return flushed

    def _flush_run(self, lbns: List[int],
                   trace: Optional[RequestTrace]
                   ) -> Generator[Event, Any, int]:
        """Write one contiguous run of dirty blocks as a single extent."""
        entries = []
        for lbn in lbns:
            entry = self.cache.peek(lbn)
            if entry is not None and entry.dirty:
                entries.append(entry)
        if not entries:
            return 0
        if len(entries) != len(lbns):
            # A block went clean/evicted meanwhile; fall back per block.
            count = 0
            for entry in entries:
                yield from self._write_back(entry, trace)
                self.cache.mark_clean(entry.lbn)
                count += 1
            return count
        self.cache.counters.add("bcache.writeback", len(entries))
        payload = concat([e.payload for e in entries])
        yield from self.blockdev.write(lbns[0], payload,
                                       is_metadata=False, trace=trace)
        for entry in entries:
            self.cache.mark_clean(entry.lbn)
        return len(entries)

    def _write_back(self, entry: CacheEntry,
                    trace: Optional[RequestTrace]
                    ) -> Generator[Event, Any, None]:
        self.cache.counters.add("bcache.writeback")
        yield from self.blockdev.write(entry.lbn, entry.payload,
                                       is_metadata=entry.is_metadata,
                                       trace=trace)

    def write_back_entry(self, entry: CacheEntry
                         ) -> Generator[Event, Any, None]:
        """Flush one evicted dirty page through the block device.

        The arbiter's writeback routine for pages its squeeze dislodges
        from the buffer cache — under NCache the write path remaps the
        backing FHO chunk exactly as ordinary eviction writeback does.
        """
        yield from self._write_back(entry, None)

    def _evict_for(self, nblocks: int) -> Generator[Event, Any, None]:
        """Make room, writing back any dirty victims first.

        ``make_room`` frees space synchronously, but writing back a
        dirty victim yields — a concurrent request can claim the freed
        slot before our insert runs.  Re-check and re-evict until the
        room survives the writebacks (clean victims never yield, so the
        common path is a single pass with no extra events).
        """
        while True:
            for victim in self.cache.make_room(nblocks):
                yield from self._write_back(victim, None)
            if self.cache.has_room(nblocks):
                return

    # ------------------------------------------------------------------
    # Shared read machinery
    # ------------------------------------------------------------------

    def _cached_range(self, inode: Inode, offset: int, length: int,
                      trace: Optional[RequestTrace]
                      ) -> Generator[Event, Any, tuple]:
        """Ensure [offset, offset+length) is cached; return its payload.

        Misses are batched into contiguous block-device reads, extended by
        the readahead window (clamped to the file extent).
        """
        if length <= 0:
            raise ValueError("read length must be positive")
        if offset < 0 or offset + length > inode.size:
            raise ValueError(
                f"read [{offset}, {offset + length}) beyond EOF "
                f"({inode.size}) of inode {inode.ino}")
        bs = self.block_size
        first = offset // bs
        last = (offset + length - 1) // bs
        nblocks = last - first + 1
        yield from self.host.acct.compute(
            nblocks * self.host.costs.cache_lookup_ns, "fs.lookup")

        # Probe every block first (recency touch + hit/miss accounting as
        # usual).  Page pinning only matters once a fill yields control —
        # nothing can evict between here and use otherwise — so the
        # all-present steady state skips the pin/peek/unpin bookkeeping
        # entirely.
        probed = []
        missing = False
        for b in range(first, last + 1):
            entry = self.cache.lookup(inode.block_lbn(b))
            probed.append(entry)
            if entry is None:
                missing = True
        if not missing:
            whole = concat([e.payload for e in probed])
            within = offset - first * bs
            return whole.slice(within, length), nblocks

        # Pin present pages (page locks) so later fills in this same
        # request cannot evict them, then fill the missing runs.  No
        # simulated time has passed since the probe, so the presence map
        # is still exact.
        pinned: List[int] = []
        try:
            missing_runs: List[tuple] = []
            run_start = None
            for i, b in enumerate(range(first, last + 1)):
                present = probed[i] is not None
                if present:
                    lbn = inode.block_lbn(b)
                    self.cache.pin(lbn)
                    pinned.append(lbn)
                if not present and run_start is None:
                    run_start = b
                elif present and run_start is not None:
                    missing_runs.append((run_start, b - run_start))
                    run_start = None
            if run_start is not None:
                missing_runs.append((run_start, last + 1 - run_start))

            for start_b, count in missing_runs:
                # Readahead: extend the tail run to prefetch ahead.
                extra = 0
                if self.readahead_blocks and start_b + count == last + 1:
                    extra = min(self.readahead_blocks,
                                inode.nblocks - (start_b + count))
                yield from self._fill_blocks(inode, start_b, count + extra,
                                             trace)
                for b in range(start_b, start_b + count):
                    lbn = inode.block_lbn(b)
                    if self.cache.pin(lbn):
                        pinned.append(lbn)

            parts = []
            for b in range(first, last + 1):
                entry = self.cache.peek(inode.block_lbn(b))
                if entry is None:
                    raise RuntimeError(
                        f"block {b} of inode {inode.ino} lost despite "
                        "page pinning; cache smaller than one request")
                parts.append(entry.payload)
        finally:
            for lbn in pinned:
                self.cache.unpin(lbn)
        whole = concat(parts)
        within = offset - first * bs
        return whole.slice(within, length), nblocks

    def _fill_blocks(self, inode: Inode, first_block: int, nblocks: int,
                     trace: Optional[RequestTrace]
                     ) -> Generator[Event, Any, None]:
        lbn = inode.block_lbn(first_block)
        yield from self.host.acct.compute(
            self.host.costs.blockio_ns, "fs.blockio")
        payload = yield from self.blockdev.read(lbn, nblocks,
                                                is_metadata=False,
                                                trace=trace)
        yield from self.host.acct.move(
            self.discipline, payload.length, "cache_fill", trace,
            nkeys=nblocks)
        stored = apply_discipline(payload, self.discipline)
        bs = self.block_size
        yield from self._evict_for(nblocks)
        for i in range(nblocks):
            self.cache.insert(lbn + i, stored.slice(i * bs, bs))
