"""HTTP: messages, kHTTPd in-kernel static server, measurement client."""

from .client import HttpClient, response_body
from .khttpd import KHttpd
from .messages import (
    HEADER_TERMINATOR,
    HttpRequest,
    HttpResponse,
    find_body_offset,
)

__all__ = [
    "HEADER_TERMINATOR",
    "HttpClient",
    "HttpRequest",
    "HttpResponse",
    "KHttpd",
    "find_body_offset",
    "response_body",
]
