"""HTTP measurement client (keep-alive, one request outstanding per call)."""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional, Tuple

from ..copymodel.accounting import RequestTrace
from ..copymodel.materialize import materialize
from ..net.addresses import Endpoint
from ..net.buffer import BytesPayload
from ..net.host import Host
from ..net.network import Datagram
from ..net.stack import TCPConnection
from ..sim.engine import Event, SimulationError
from .messages import HttpRequest, HttpResponse


class HttpClient:
    """One persistent connection to a web server.

    Responses on a connection arrive in request order (our TCP is lossless
    and ordered), so a FIFO of waiters pairs them up; callers may pipeline.
    """

    def __init__(self, host: Host, local_ip: str, server: Endpoint,
                 local_port: int = 40000) -> None:
        self.host = host
        self.local_ip = local_ip
        self.server = server
        self.local_port = local_port
        self.conn: Optional[TCPConnection] = None
        self._waiters: Deque = deque()

    def connect(self) -> Generator[Event, Any, None]:
        self.conn = yield from self.host.stack.tcp_connect(
            self.local_ip, self.local_port, self.server)
        self.conn.on_message = self._on_response

    def _on_response(self, conn: TCPConnection, dgram: Datagram
                     ) -> Generator[Event, Any, None]:
        if not self._waiters:
            raise SimulationError("HTTP response with no request outstanding")
        self._waiters.popleft().succeed(dgram)
        return
        yield  # pragma: no cover - generator marker

    def get(self, path: str, trace: Optional[RequestTrace] = None
            ) -> Generator[Event, Any, Tuple[HttpResponse, Datagram]]:
        """GET ``path``; returns (response, datagram-with-body)."""
        if self.conn is None:
            raise SimulationError("client used before connect()")
        request = HttpRequest("GET", "/" + path.lstrip("/"))
        waiter = self.host.sim.event()
        self._waiters.append(waiter)
        meta = {"trace": trace} if trace is not None else None
        yield from self.conn.send(
            request, data=BytesPayload(b""),
            header=BytesPayload(request.serialize()),
            trace=trace, is_metadata=True, meta=meta)
        dgram = yield waiter
        return dgram.message, dgram


def response_body(dgram: Datagram, bus: Optional[Any] = None) -> "bytes":
    """Materialize the body bytes of a response datagram (tests only).

    A verification point: goes through the copymodel chokepoint so the
    materialization is lint-visible and traced.
    """
    response: HttpResponse = dgram.message
    whole = dgram.chain.payload()
    data = materialize(whole, why="client_verify", bus=bus)
    return data[response.header_size:]
