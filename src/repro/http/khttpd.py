"""kHTTPd: the in-kernel static web server.

Serves whole static files over persistent TCP connections using the
``sendfile`` path: data moves directly from the file-system buffer cache
into the network stack — one copy on a hit, two on a miss (Table 2).
Non-static requests would be punted to user space in the real kHTTPd; the
simulated workloads are all static, matching §5.3 ("only static web page
requests were used").
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..copymodel.accounting import CopyDiscipline, RequestTrace
from ..fs.vfs import VFS
from ..net.addresses import HTTP_PORT
from ..net.buffer import BytesPayload
from ..net.host import Host
from ..net.network import Datagram
from ..net.stack import TCPConnection
from ..sim.engine import Event, SimulationError
from ..sim.process import start
from ..sim.resources import Store
from .messages import HttpRequest, HttpResponse


class KHttpd:
    """In-kernel static web server over the host's VFS.

    HTTP/1.1 responses on a connection must be delivered in request order,
    so each connection gets a FIFO queue drained by one worker process;
    pipelined requests queue up behind each other exactly as they would in
    the real single-threaded kHTTPd connection handler.
    """

    def __init__(self, host: Host, vfs: VFS,
                 discipline: CopyDiscipline = CopyDiscipline.PHYSICAL,
                 port: int = HTTP_PORT) -> None:
        self.host = host
        self.vfs = vfs
        self.discipline = discipline
        self.port = port
        self.requests_served = 0
        self.not_found = 0
        #: server-side GET service time distribution.
        self._get_latency = host.counters.registry.histogram(
            "http.get.latency", unit="s")
        host.stack.tcp_listen(port, self._accept)

    def _accept(self, conn: TCPConnection) -> None:
        queue: Store = Store(self.host.sim, name="khttpd-conn")

        def enqueue(conn_, dgram):
            queue.put(dgram)
            return
            yield  # pragma: no cover - generator marker

        conn.on_message = enqueue
        start(self.host.sim, self._conn_worker(conn, queue),
              name="khttpd-worker")

    def _conn_worker(self, conn: TCPConnection, queue: Store
                     ) -> Generator[Event, Any, None]:
        while True:
            dgram = yield queue.get()
            yield from self._on_request(conn, dgram)

    def _on_request(self, conn: TCPConnection, dgram: Datagram
                    ) -> Generator[Event, Any, None]:
        request = dgram.message
        if not isinstance(request, HttpRequest):
            raise SimulationError(f"kHTTPd got {request!r}")
        trace: Optional[RequestTrace] = dgram.meta.get("trace")
        t0 = self.host.sim.now
        yield from self.host.acct.compute(
            self.host.costs.http_request_ns, "http.request")
        path = request.path.lstrip("/")
        try:
            inode = self.vfs.image.lookup(path)
        except FileNotFoundError:
            self.not_found += 1
            response = HttpResponse(status=404, content_length=0)
            yield from conn.send(
                response, data=BytesPayload(b""),
                header=BytesPayload(response.serialize_header()),
                trace=trace, is_metadata=True,
                meta={"trace": trace} if trace is not None else None)
            return
        yield from self.vfs.read_inode_metadata(inode.ino, trace)
        payload = yield from self.vfs.sendfile_payload(
            inode, 0, inode.size, trace)
        response = HttpResponse(status=200, content_length=inode.size)
        self.requests_served += 1
        yield from conn.send(
            response, data=payload,
            header=BytesPayload(response.serialize_header()),
            discipline=self.discipline, trace=trace, is_metadata=False,
            meta={"trace": trace} if trace is not None else None)
        self._get_latency.record(self.host.sim.now - t0)
        bus = self.host.sim.trace
        if bus.enabled:
            bus.complete("http.get", t0, cat="http",
                         tid=bus.tid_for(self.host.name),
                         path=request.path, bytes=inode.size,
                         client=str(conn.remote))
