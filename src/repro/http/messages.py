"""HTTP/1.1 messages with *real* header bytes.

Unlike NFS and iSCSI (whose headers we model by size), HTTP headers are
materialized as actual bytes: the NCache classifier for kHTTPd finds the
header/body boundary by scanning for ``\\r\\n\\r\\n`` in the outgoing
stream, exactly as §3.5 describes ("for HTTP some specific string patterns
in HTTP response header, like '\\r\\n\\r\\n'").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

HEADER_TERMINATOR = b"\r\n\r\n"


@dataclass
class HttpRequest:
    """An HTTP request line plus headers (real bytes on the wire)."""

    method: str
    path: str
    version: str = "HTTP/1.1"
    headers: Dict[str, str] = field(default_factory=dict)

    def serialize(self) -> bytes:
        lines = [f"{self.method} {self.path} {self.version}"]
        base = {"Host": "server", "Connection": "keep-alive"}
        base.update(self.headers)
        lines.extend(f"{k}: {v}" for k, v in base.items())
        return ("\r\n".join(lines)).encode("ascii") + HEADER_TERMINATOR

    @property
    def header_size(self) -> int:
        return len(self.serialize())

    @property
    def is_metadata(self) -> bool:
        return True  # requests carry no file data


@dataclass
class HttpResponse:
    """An HTTP response header; the body rides in the datagram."""

    status: int
    content_length: int
    content_type: str = "text/html"
    headers: Dict[str, str] = field(default_factory=dict)

    REASONS = {200: "OK", 404: "Not Found", 416: "Range Not Satisfiable"}

    def serialize_header(self) -> bytes:
        reason = self.REASONS.get(self.status, "Unknown")
        lines = [f"HTTP/1.1 {self.status} {reason}",
                 "Server: kHTTPd/1.0 (simulated)",
                 f"Content-Length: {self.content_length}",
                 f"Content-Type: {self.content_type}",
                 "Connection: keep-alive"]
        lines.extend(f"{k}: {v}" for k, v in self.headers.items())
        return ("\r\n".join(lines)).encode("ascii") + HEADER_TERMINATOR

    @property
    def header_size(self) -> int:
        return len(self.serialize_header())

    @property
    def ok(self) -> bool:
        return self.status == 200


def find_body_offset(first_fragment: bytes) -> int:
    """Offset of the body within a response stream, or -1 if no terminator.

    This is the classifier's pattern scan over the first packet's bytes.
    """
    idx = first_fragment.find(HEADER_TERMINATOR)
    if idx < 0:
        return -1
    return idx + len(HEADER_TERMINATOR)
