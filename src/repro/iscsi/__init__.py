"""iSCSI: PDUs, initiator (block device), target (storage server)."""

from .initiator import IscsiInitiator, default_target_endpoint
from .pdu import BHS_SIZE, DataIn, ScsiCommand, ScsiResponse
from .target import IscsiTarget

__all__ = [
    "BHS_SIZE",
    "DataIn",
    "IscsiInitiator",
    "IscsiTarget",
    "ScsiCommand",
    "ScsiResponse",
    "default_target_endpoint",
]
