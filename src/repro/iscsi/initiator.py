"""iSCSI initiator: the block device under the pass-through server's VFS.

The paper modifies the initiator in exactly one way: "two functions
invoking socket interface changed" (Table 1) so it can use the logical-
copy socket interface.  Here that corresponds to the ``discipline``
carried on reads and writes — everything else is the stock data path.

An inbound Data-In burst traverses the host's RX hooks *before* reaching
this code; under NCache the hook caches the payload buffers and leaves a
key-carrying placeholder in ``dgram.meta["keyed_payload"]``, which this
initiator hands up to the VFS in place of the raw chain payload.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Generator, Optional

from ..copymodel.accounting import CopyDiscipline, RequestTrace
from ..fs.disk import BLOCK_SIZE
from ..net.addresses import Endpoint, ISCSI_PORT
from ..net.buffer import BytesPayload, JunkPayload, Payload
from ..net.host import Host
from ..net.network import Datagram
from ..net.stack import TCPConnection
from ..sim.engine import Event, SimulationError
from ..sim.resources import Resource
from .pdu import BHS_SIZE, DataIn, ScsiCommand


class IscsiInitiator:
    """Implements the :class:`repro.fs.vfs.BlockDevice` protocol over TCP."""

    #: Default command-window depth (MaxCmdSN - ExpCmdSN in RFC 3720
    #: terms): how many SCSI commands may be outstanding on the session.
    DEFAULT_QUEUE_DEPTH = 64

    def __init__(self, host: Host, local_ip: str, target: Endpoint,
                 lun: int = 0,
                 discipline: CopyDiscipline = CopyDiscipline.PHYSICAL,
                 queue_depth: int = DEFAULT_QUEUE_DEPTH) -> None:
        if queue_depth < 1:
            raise SimulationError("queue_depth must be >= 1")
        self.host = host
        self.local_ip = local_ip
        self.target = target
        self.lun = lun
        self.discipline = discipline
        self._window = Resource(host.sim, capacity=queue_depth,
                                name="iscsi-cmd-window")
        self.conn: Optional[TCPConnection] = None
        self._tags = itertools.count(1)
        self._pending: Dict[int, Event] = {}
        #: Optional ``fn(lbn, nblocks, trace) -> payload | None`` consulted
        #: before a read goes on the wire.  This is NCache's second-level
        #: cache seam (§3.4): file-system cache misses "are caught and
        #: serviced by a much larger network-centric cache".
        self.read_interceptor = None

    # -- session ------------------------------------------------------------

    def connect(self) -> Generator[Event, Any, None]:
        self.conn = yield from self.host.stack.tcp_connect(
            self.local_ip, 33000, self.target)
        self.conn.on_message = self._on_message

    def _require_conn(self) -> TCPConnection:
        if self.conn is None:
            raise SimulationError("initiator used before connect()")
        return self.conn

    # -- BlockDevice API -----------------------------------------------------

    def read(self, lbn: int, nblocks: int, is_metadata: bool = False,
             trace: Optional[RequestTrace] = None
             ) -> Generator[Event, Any, Payload]:
        """Issue a SCSI read; returns the response payload.

        Under NCache the returned payload is the keyed placeholder left by
        the RX hook; otherwise it is the received data itself.
        """
        if self.read_interceptor is not None and not is_metadata:
            served = yield from self.read_interceptor(lbn, nblocks, trace)
            if served is not None:
                return served
        conn = self._require_conn()
        yield self._window.acquire()
        try:
            tag = next(self._tags)
            cmd = ScsiCommand("read", tag, self.lun, lbn, nblocks,
                              is_metadata=is_metadata)
            yield from self.host.acct.compute(
                self.host.costs.iscsi_pdu_ns, "iscsi.cmd")
            done = self.host.sim.event()
            self._pending[tag] = done
            yield from conn.send(cmd, data=BytesPayload(b""),
                                 header=JunkPayload(BHS_SIZE), trace=trace)
            dgram: Datagram = yield done
        finally:
            self._window.release()
        response = dgram.message
        if not isinstance(response, DataIn) or response.status != 0:
            raise SimulationError(f"read tag {tag} failed: {response!r}")
        keyed = dgram.meta.get("keyed_payload")
        if keyed is not None:
            return keyed
        payload = dgram.chain.payload()
        return payload.slice(BHS_SIZE, payload.length - BHS_SIZE)

    def write(self, lbn: int, payload: Payload, is_metadata: bool = False,
              trace: Optional[RequestTrace] = None
              ) -> Generator[Event, Any, None]:
        """Issue a SCSI write with immediate data.

        The data movement into the outbound socket buffers honours the
        initiator's discipline: a physical copy in the original server,
        a logical (key) copy under NCache — whose TX hook then remaps and
        substitutes the real buffers below the stack (§3.4).
        """
        conn = self._require_conn()
        if payload.length == 0:
            raise SimulationError("empty write")
        if payload.length % BLOCK_SIZE:
            raise SimulationError("iSCSI writes must be block-aligned")
        nblocks = payload.length // BLOCK_SIZE
        yield self._window.acquire()
        try:
            tag = next(self._tags)
            cmd = ScsiCommand("write", tag, self.lun, lbn, nblocks,
                              is_metadata=is_metadata)
            yield from self.host.acct.compute(
                self.host.costs.iscsi_pdu_ns, "iscsi.cmd")
            done = self.host.sim.event()
            self._pending[tag] = done
            yield from conn.send(cmd, data=payload,
                                 header=JunkPayload(BHS_SIZE),
                                 discipline=self.discipline, trace=trace,
                                 is_metadata=is_metadata)
            dgram: Datagram = yield done
        finally:
            self._window.release()
        response = dgram.message
        status = getattr(response, "status", -1)
        if status != 0:
            raise SimulationError(f"write tag {tag} failed: {response!r}")

    # -- inbound dispatch ------------------------------------------------------

    def _on_message(self, conn: TCPConnection, dgram: Datagram
                    ) -> Generator[Event, Any, None]:
        yield from self.host.acct.compute(
            self.host.costs.iscsi_pdu_ns, "iscsi.rx")
        message = dgram.message
        tag = getattr(message, "task_tag", None)
        if tag is None:
            raise SimulationError(f"unexpected iSCSI message {message!r}")
        waiter = self._pending.pop(tag, None)
        if waiter is None:
            raise SimulationError(f"response for unknown tag {tag}")
        waiter.succeed(dgram)


def default_target_endpoint(ip: str) -> Endpoint:
    """The well-known iSCSI endpoint on a storage host."""
    return Endpoint(ip, ISCSI_PORT)
