"""iSCSI PDUs (the subset the testbed exercises).

Simplifications relative to RFC 3720, documented in DESIGN.md:

* writes use immediate data (no R2T / Data-Out phase split);
* a read's Data-In sequence plus its status response is carried as one
  message burst with a collapsed final PDU.

Neither changes the copy counts or the per-PDU/ per-segment cost structure
that the paper's results depend on.

The ``is_metadata`` flag on commands mirrors the paper's observation that
the iSCSI header alone cannot distinguish metadata from regular data: "the
page data structure associated with iSCSI requests contains the inode type
information" (§3.3).  The initiator knows the inode type from the request
context and the flag rides along, exactly like that page-structure hint.
"""

from __future__ import annotations

from dataclasses import dataclass

#: iSCSI Basic Header Segment size.
BHS_SIZE = 48


@dataclass
class ScsiCommand:
    """A SCSI read or write command (write carries immediate data)."""

    opcode: str  # "read" | "write"
    task_tag: int
    lun: int
    lba: int
    nblocks: int
    is_metadata: bool = False

    header_size: int = BHS_SIZE

    def __post_init__(self) -> None:
        if self.opcode not in ("read", "write"):
            raise ValueError(f"bad opcode {self.opcode!r}")
        if self.nblocks <= 0:
            raise ValueError("nblocks must be positive")

    @property
    def is_read(self) -> bool:
        return self.opcode == "read"

    @property
    def is_write(self) -> bool:
        return self.opcode == "write"


@dataclass
class DataIn:
    """Data-In: the payload of a read response (with collapsed status)."""

    task_tag: int
    lun: int
    lba: int
    nblocks: int
    is_metadata: bool = False
    status: int = 0

    header_size: int = BHS_SIZE


@dataclass
class ScsiResponse:
    """Status-only response (completes a write)."""

    task_tag: int
    status: int = 0

    header_size: int = BHS_SIZE
