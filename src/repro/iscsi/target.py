"""iSCSI target: the storage server at the back of the testbed.

The target always runs the stock (physical-copy) data path — the paper's
contribution lives in the pass-through server, and the storage server is
identical across the three configurations.  Its cost structure matters
because the all-miss experiments (Figure 4) saturate *its* CPU once the
NFS server stops being the bottleneck: "the storage server's CPU remains
saturated from this point onwards" (§5.4).

Per read: disk I/O (DMA, no CPU), one copy disk-buffer → iSCSI send
buffer, plus the socket-boundary copy and per-segment TCP costs charged by
the stack.  Per write: the mirror image.
"""

from __future__ import annotations

from typing import Any, Generator

from ..copymodel.accounting import CopyDiscipline
from ..fs.localdev import LocalBlockDevice
from ..net.addresses import ISCSI_PORT
from ..net.buffer import JunkPayload
from ..net.host import Host
from ..net.network import Datagram
from ..net.stack import TCPConnection
from ..sim.engine import Event, SimulationError
from .pdu import BHS_SIZE, DataIn, ScsiCommand, ScsiResponse


class IscsiTarget:
    """Serves SCSI reads/writes from a local RAID-backed block device.

    ``network_ready_disk`` implements the paper's §6 future-work idea:
    "organizing disk-resident data in a network-ready format ... so that
    even non-pass-through file servers can also benefit from
    network-centric caching".  With it enabled, blocks live on disk
    pre-framed for the wire, so the target's disk-buffer→iSCSI copy
    disappears (a small reframe cost per command remains) — the storage
    server itself becomes copy-free on the read path.
    """

    #: per-command cost of fixing up pre-framed on-disk data (headers,
    #: sequence numbers) instead of copying it.
    REFRAME_NS = 4000.0

    def __init__(self, host: Host, blockdev: LocalBlockDevice,
                 port: int = ISCSI_PORT,
                 network_ready_disk: bool = False) -> None:
        self.host = host
        self.blockdev = blockdev
        self.port = port
        self.network_ready_disk = network_ready_disk
        self.commands_served = 0
        #: read commands only — the backend-read miss traffic the cache
        #: experiments score on (writes are writeback policy, not misses).
        self.reads_served = 0
        host.stack.tcp_listen(port, self._accept)

    def _accept(self, conn: TCPConnection) -> None:
        conn.on_message = self._on_message

    def _on_message(self, conn: TCPConnection, dgram: Datagram
                    ) -> Generator[Event, Any, None]:
        cmd = dgram.message
        if not isinstance(cmd, ScsiCommand):
            raise SimulationError(f"target got non-command {cmd!r}")
        yield from self.host.acct.compute(
            self.host.costs.iscsi_pdu_ns, "iscsi.cmd_rx")
        yield from self.host.acct.compute(
            self.host.costs.iscsi_target_op_ns, "iscsi.target_op")
        self.commands_served += 1
        if cmd.is_read:
            self.reads_served += 1
            yield from self._serve_read(conn, cmd)
        else:
            yield from self._serve_write(conn, dgram, cmd)

    def _serve_read(self, conn: TCPConnection, cmd: ScsiCommand
                    ) -> Generator[Event, Any, None]:
        payload = yield from self.blockdev.read(cmd.lba, cmd.nblocks,
                                                is_metadata=cmd.is_metadata)
        response = DataIn(task_tag=cmd.task_tag, lun=cmd.lun, lba=cmd.lba,
                          nblocks=cmd.nblocks, is_metadata=cmd.is_metadata)
        yield from self.host.acct.compute(
            self.host.costs.iscsi_pdu_ns, "iscsi.data_tx")
        if self.network_ready_disk and not cmd.is_metadata:
            # §6: data is stored pre-framed; no disk-buffer copy and no
            # socket-boundary copy — only a per-command reframe fix-up.
            yield from self.host.acct.compute(
                self.REFRAME_NS, "iscsi.reframe")
            yield from conn.send(response, data=payload,
                                 header=JunkPayload(BHS_SIZE),
                                 discipline=CopyDiscipline.LOGICAL)
            return
        # Disk buffer -> iSCSI layer buffer (layered architecture copy).
        yield from self.host.acct.physical_copy(
            payload.length, "target_read_buf", is_metadata=cmd.is_metadata)
        yield from conn.send(response, data=payload.physical_copy(),
                             header=JunkPayload(BHS_SIZE),
                             discipline=CopyDiscipline.PHYSICAL)

    def _serve_write(self, conn: TCPConnection, dgram: Datagram,
                     cmd: ScsiCommand) -> Generator[Event, Any, None]:
        whole = dgram.chain.payload()
        data = whole.slice(BHS_SIZE, whole.length - BHS_SIZE)
        expected = cmd.nblocks * self.blockdev.block_size
        if data.length != expected:
            raise SimulationError(
                f"write tag {cmd.task_tag}: got {data.length} bytes, "
                f"command says {expected}")
        # Receive buffers -> disk write buffer (layered architecture copy).
        yield from self.host.acct.physical_copy(
            data.length, "target_write_buf", is_metadata=cmd.is_metadata)
        yield from self.blockdev.write(cmd.lba, data.physical_copy(),
                                       is_metadata=cmd.is_metadata)
        yield from self.host.acct.compute(
            self.host.costs.iscsi_pdu_ns, "iscsi.status_tx")
        yield from conn.send(ScsiResponse(task_tag=cmd.task_tag),
                             data=JunkPayload(0),
                             header=JunkPayload(BHS_SIZE))
