"""Network substrate: buffers, headers, NICs, switch, transport stack."""

from .addresses import HTTP_PORT, ISCSI_PORT, NFS_PORT, Endpoint
from .buffer import (
    BufferChain,
    BufferFlavor,
    BytesPayload,
    CompositePayload,
    ExtentPayload,
    JunkPayload,
    NetBuffer,
    Payload,
    PlaceholderPayload,
    VirtualPayload,
    chain_from_payload,
    concat,
    internet_checksum,
    pattern_bytes,
)
from .headers import (
    EthernetHeader,
    Header,
    IPv4Header,
    IscsiBHS,
    RPCHeader,
    TCPHeader,
    UDPHeader,
)
from .host import Host
from .network import NIC, Datagram, Network
from .stack import NetworkStack, TCPConnection, count_placeholder_keys

__all__ = [
    "BufferChain",
    "BufferFlavor",
    "BytesPayload",
    "CompositePayload",
    "Datagram",
    "Endpoint",
    "EthernetHeader",
    "ExtentPayload",
    "HTTP_PORT",
    "Header",
    "Host",
    "IPv4Header",
    "ISCSI_PORT",
    "IscsiBHS",
    "JunkPayload",
    "NFS_PORT",
    "NIC",
    "NetBuffer",
    "Network",
    "NetworkStack",
    "Payload",
    "PlaceholderPayload",
    "RPCHeader",
    "TCPConnection",
    "TCPHeader",
    "UDPHeader",
    "VirtualPayload",
    "chain_from_payload",
    "concat",
    "count_placeholder_keys",
    "internet_checksum",
    "pattern_bytes",
]
