"""Addressing: endpoints are (ip, port) pairs; IPs are opaque strings."""

from __future__ import annotations

from typing import NamedTuple


class Endpoint(NamedTuple):
    """A transport endpoint."""

    ip: str
    port: int

    def __str__(self) -> str:
        return f"{self.ip}:{self.port}"


# Well-known ports used by the testbed.
NFS_PORT = 2049
ISCSI_PORT = 3260
HTTP_PORT = 80
# Fleet peer cache-fetch service and its client side (repro.fleet).
PEER_PORT = 2149
PEER_CLIENT_PORT = 2150
