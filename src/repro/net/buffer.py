"""Network buffers: the sk_buff analog that NCache manipulates.

Three layers of abstraction:

* :class:`Payload` — an immutable sequence of bytes.  Large simulated
  transfers use :class:`ExtentPayload`, a lazy **extent descriptor**
  ``(source, offset, length, generation)`` over a backing store whose
  bytes are a deterministic function of ``(source, offset)`` and are only
  materialized on demand (tests do; steady-state simulation does not).
  Slice/split/concat are O(1)-per-part descriptor arithmetic — adjacent
  views of one extent re-merge in :func:`concat` — so the simulator stays
  O(events) instead of O(bytes) while remaining byte-checkable.
  ``VirtualPayload`` is the historical alias for the same class.
* :class:`NetBuffer` — one network buffer: a stack of protocol headers plus
  a payload fragment, like a Linux ``sk_buff`` (or FreeBSD ``mbuf``; see
  :class:`BufferFlavor`).
* :class:`BufferChain` — an ordered list of NetBuffers forming one message
  (an NFS reply, an iSCSI Data-In sequence, an HTTP response body...).

Physical vs logical copying: *copying* is modelled by
:meth:`Payload.physical_copy`, which returns an equal-content payload with
fresh identity.  Whether a copy is physical (charged per byte) or logical
(key-sized) is decided by :class:`repro.copymodel.accounting.CopyAccountant`;
payloads themselves are cost-free value objects.
"""

from __future__ import annotations

from bisect import bisect_right
from enum import Enum
from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

_SPLITMIX_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_U64_MASK = np.uint64(0xFFFFFFFFFFFFFFFF)


def _splitmix64(words: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer; ``words`` is a uint64 array."""
    z = (words + _SPLITMIX_GAMMA).astype(np.uint64)
    z = ((z ^ (z >> np.uint64(30))) * _MIX1) & _U64_MASK
    z = ((z ^ (z >> np.uint64(27))) * _MIX2) & _U64_MASK
    return (z ^ (z >> np.uint64(31))) & _U64_MASK


def pattern_bytes(tag: int, offset: int, length: int) -> bytes:
    """Deterministic pseudo-random bytes for virtual payload content.

    Byte ``i`` of a virtual payload depends only on ``(tag, offset + i)``,
    so slicing and concatenation commute with materialization.
    """
    if length <= 0:
        return b""
    first_word = offset >> 3
    last_word = (offset + length - 1) >> 3
    idx = np.arange(first_word, last_word + 1, dtype=np.uint64)
    seeded = (idx * np.uint64(0x2545F4914F6CDD1D) + np.uint64(tag & 0xFFFFFFFFFFFFFFFF)) & _U64_MASK
    words = _splitmix64(seeded)
    raw = words.view(np.uint8).tobytes()
    start = offset - first_word * 8
    return raw[start:start + length]


def internet_checksum(data: bytes) -> int:
    """RFC 1071 ones-complement 16-bit checksum of ``data``."""
    if len(data) % 2:
        data = data + b"\x00"
    if not data:
        return 0xFFFF
    arr = np.frombuffer(data, dtype=">u2")
    total = int(arr.sum(dtype=np.uint64))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


class Payload:
    """Abstract immutable byte sequence.

    ``length`` is a plain attribute, not a property: payloads are
    immutable and length is read on every slice/fragment/substitute
    step, so the descriptor call would be pure overhead.
    """

    __slots__ = ("_checksum", "length")

    def __init__(self, length: int) -> None:
        self._checksum: Optional[int] = None
        self.length = length

    def materialize(self) -> bytes:
        raise NotImplementedError

    def slice(self, offset: int, length: int) -> "Payload":
        raise NotImplementedError

    def _check_slice(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.length:
            raise ValueError(
                f"slice [{offset}:{offset + length}] out of payload of "
                f"length {self.length}")

    def checksum16(self) -> int:
        """Internet checksum of the payload bytes (cached)."""
        if self._checksum is None:
            self._checksum = internet_checksum(self.materialize())
        return self._checksum

    def split(self, fragment_size: int) -> List["Payload"]:
        """Contiguous slices of at most ``fragment_size`` bytes, in order.

        Payloads are immutable, so a payload that already fits is
        returned as-is rather than sliced into an equal-content view.
        """
        if fragment_size <= 0:
            raise ValueError("fragment_size must be positive")
        total = self.length
        if total <= fragment_size:
            return [self]
        return [self.slice(offset, min(fragment_size, total - offset))
                for offset in range(0, total, fragment_size)]

    def physical_copy(self) -> "Payload":
        """A content-equal payload with fresh identity (a memcpy result)."""
        raise NotImplementedError

    # Convenience used heavily by tests.
    def same_bytes(self, other: "Payload") -> bool:
        return (self.length == other.length
                and self.materialize() == other.materialize())

    def __len__(self) -> int:
        return self.length


class BytesPayload(Payload):
    """A payload backed by real bytes (metadata, HTTP headers, small data)."""

    __slots__ = ("data",)

    def __init__(self, data: bytes) -> None:
        self.data = bytes(data)
        super().__init__(len(self.data))

    def materialize(self) -> bytes:
        return self.data

    def slice(self, offset: int, length: int) -> Payload:
        self._check_slice(offset, length)
        return BytesPayload(self.data[offset:offset + length])

    def physical_copy(self) -> Payload:
        return BytesPayload(self.data)

    def __repr__(self) -> str:
        return f"BytesPayload({len(self.data)}B)"


#: Allocator for anonymous memory identities.  Negative so they can never
#: collide with backing-store identities, which reuse the (non-negative)
#: source tag.  A plain counter, not id(): ids get recycled by the
#: allocator, memory identities must not.
_anon_mem = 0


def _fresh_mem() -> int:
    """A new anonymous memory identity (the result of a modelled memcpy)."""
    global _anon_mem
    _anon_mem -= 1
    return _anon_mem


class ExtentPayload(Payload):
    """Lazy extent descriptor: a ``(source, offset, length)`` view.

    ``source`` identifies the backing data source (e.g. a hash of
    (image seed, inode)); content is :func:`pattern_bytes` of
    ``(source, offset)``.  Two bookkeeping fields ride along, neither of
    which affects content:

    * ``generation`` — bumped when the backing range is overwritten or a
      cached chunk is remapped FHO→LBN, so staleness is checkable without
      comparing bytes;
    * ``mem`` — the memory identity of the buffer holding this view.
      Views created by slice/split share their parent's ``mem``;
      :meth:`physical_copy` allocates a fresh anonymous one.  Descriptors
      straight off the backing store use the source tag itself (they
      model disk content, not a RAM buffer).  The buffer-lifecycle
      sanitizer uses ``mem`` to catch aliasing between *different* view
      objects of one buffer.
    """

    __slots__ = ("source", "offset", "generation", "mem")

    def __init__(self, source: int, offset: int, length: int,
                 generation: int = 0, mem: Optional[int] = None) -> None:
        if length < 0:
            raise ValueError("negative length")
        super().__init__(length)
        self.source = source
        self.offset = offset
        self.generation = generation
        self.mem = source if mem is None else mem

    @property
    def tag(self) -> int:
        """Historical name for ``source`` (pre-extent VirtualPayload)."""
        return self.source

    def materialize(self) -> bytes:
        return pattern_bytes(self.source, self.offset, self.length)

    def slice(self, offset: int, length: int) -> Payload:
        self._check_slice(offset, length)
        return ExtentPayload(self.source, self.offset + offset, length,
                             self.generation, self.mem)

    def physical_copy(self) -> Payload:
        return ExtentPayload(self.source, self.offset, self.length,
                             self.generation, _fresh_mem())

    def with_generation(self, generation: int) -> "ExtentPayload":
        """The same view restamped at ``generation`` (same memory)."""
        return ExtentPayload(self.source, self.offset, self.length,
                             generation, self.mem)

    def same_bytes(self, other: Payload) -> bool:
        # Content-hash fast path: content is a pure function of
        # (source, offset, length), so descriptor equality decides
        # byte equality without materializing.
        if type(other) is ExtentPayload:
            return (self.source == other.source
                    and self.offset == other.offset
                    and self.length == other.length)
        return super().same_bytes(other)

    def __repr__(self) -> str:
        return (f"ExtentPayload(src={self.source:#x}, off={self.offset}, "
                f"{self.length}B, gen={self.generation})")


#: Historical name: the extent descriptor grew out of VirtualPayload and
#: keeps its constructor signature, so existing call sites are unchanged.
VirtualPayload = ExtentPayload


class CompositePayload(Payload):
    """Concatenation of payload fragments (gather, chunk merge)."""

    __slots__ = ("parts", "_starts")

    def __init__(self, parts: Sequence[Payload]) -> None:
        flat: List[Payload] = []
        starts: List[int] = []
        total = 0
        for part in parts:
            if part.length == 0:
                continue
            if isinstance(part, CompositePayload):
                for sub in part.parts:
                    flat.append(sub)
                    starts.append(total)
                    total += sub.length
            else:
                flat.append(part)
                starts.append(total)
                total += part.length
        super().__init__(total)
        self.parts = tuple(flat)
        #: cumulative part offsets, so slice() can bisect to the first
        #: affected part instead of scanning from the front (transport
        #: fragmentation slices large composites hundreds of times).
        self._starts = starts

    @classmethod
    def _from_flat(cls, parts: List[Payload]) -> "CompositePayload":
        """Internal constructor for parts already known flat and non-empty.

        slice()/split() only ever pick leaf parts (the part list is flat
        by construction and leaf slices stay leaves), so the flattening
        pass in ``__init__`` would be wasted work there.
        """
        self = object.__new__(cls)
        self._checksum = None
        starts: List[int] = []
        total = 0
        for part in parts:
            starts.append(total)
            total += part.length
        self.length = total
        self.parts = tuple(parts)
        self._starts = starts
        return self

    def materialize(self) -> bytes:
        return b"".join(p.materialize() for p in self.parts)

    def slice(self, offset: int, length: int) -> Payload:
        self._check_slice(offset, length)
        if length == 0:
            return BytesPayload(b"")
        picked: List[Payload] = []
        parts = self.parts
        i = bisect_right(self._starts, offset) - 1
        cursor = offset - self._starts[i]
        remaining = length
        while remaining > 0:
            part = parts[i]
            part_length = part.length
            take = part_length - cursor
            if take > remaining:
                take = remaining
            if cursor == 0 and take == part_length:
                # Whole part: payloads are immutable, share the object.
                picked.append(part)
            else:
                picked.append(part.slice(cursor, take))
            remaining -= take
            cursor = 0
            i += 1
        if len(picked) == 1:
            return picked[0]
        return CompositePayload._from_flat(picked)

    def split(self, fragment_size: int) -> List[Payload]:
        """Single-pass fragmentation.

        The generic implementation would bisect once per fragment and
        re-walk each fragment's parts building the sub-composite; this
        walks the part list exactly once.  Transport fragmentation calls
        this for every message, so the difference is measurable.
        """
        if fragment_size <= 0:
            raise ValueError("fragment_size must be positive")
        if self.length <= fragment_size:
            return [self]
        out: List[Payload] = []
        picked: List[Payload] = []
        room = fragment_size
        for part in self.parts:
            cursor = 0
            part_length = part.length
            while cursor < part_length:
                take = part_length - cursor
                if take > room:
                    take = room
                if cursor == 0 and take == part_length:
                    picked.append(part)
                else:
                    picked.append(part.slice(cursor, take))
                cursor += take
                room -= take
                if room == 0:
                    out.append(picked[0] if len(picked) == 1
                               else CompositePayload._from_flat(picked))
                    picked = []
                    room = fragment_size
        if picked:
            out.append(picked[0] if len(picked) == 1
                       else CompositePayload._from_flat(picked))
        return out

    def physical_copy(self) -> Payload:
        # A physical copy gathers the parts into one fresh buffer, so
        # contiguous same-source extent parts collapse to one descriptor
        # over that buffer (they now genuinely share memory).
        mem = _fresh_mem()
        out: List[Payload] = []
        for part in self.parts:
            if type(part) is ExtentPayload:
                copied: Payload = ExtentPayload(
                    part.source, part.offset, part.length,
                    part.generation, mem)
            else:
                copied = part.physical_copy()
            _append_merged(out, copied)
        if len(out) == 1:
            return out[0]
        return CompositePayload._from_flat(out)

    def __repr__(self) -> str:
        return f"CompositePayload({len(self.parts)} parts, {self.length}B)"


class JunkPayload(Payload):
    """Placeholder content of a given length.

    This is what the *baseline* (ideal zero-copy) servers send on the wire
    — §5.1: "the packets that are actually sent back to clients contain
    only random bits as payload" — and what key-carrying placeholder blocks
    contain before NCache substitutes the real data.
    """

    __slots__ = ()

    def __init__(self, length: int) -> None:
        if length < 0:
            raise ValueError("negative length")
        super().__init__(length)

    def materialize(self) -> bytes:
        return b"\xAA" * self.length

    def slice(self, offset: int, length: int) -> Payload:
        self._check_slice(offset, length)
        return JunkPayload(length)

    def physical_copy(self) -> Payload:
        return JunkPayload(self.length)

    def __repr__(self) -> str:
        return f"JunkPayload({self.length}B)"


class PlaceholderPayload(JunkPayload):
    """Marker base for payloads that stand in for logically-copied data.

    The network stack skips software checksumming for placeholder content
    (the real checksum is inherited at substitution time), and the NCache
    TX hook recognizes placeholders as substitution targets.  The concrete
    key-carrying subclass lives in :mod:`repro.core.keys` to keep the
    substrate free of NCache concepts.
    """

    __slots__ = ()


def _append_merged(out: List[Payload], part: Payload) -> None:
    """Append ``part`` to ``out``, re-merging adjacent extent views.

    Two extent descriptors merge when they are contiguous views of the
    same source at the same generation in the same memory — the inverse
    of :meth:`ExtentPayload.slice`, so split-then-concat round-trips to
    a single descriptor instead of accreting composite parts.
    """
    prev = out[-1] if out else None
    if (type(part) is ExtentPayload and type(prev) is ExtentPayload
            and prev.source == part.source
            and prev.mem == part.mem
            and prev.generation == part.generation
            and prev.offset + prev.length == part.offset):
        out[-1] = ExtentPayload(prev.source, prev.offset,
                                prev.length + part.length,
                                prev.generation, prev.mem)
    else:
        out.append(part)


def concat(parts: Iterable[Payload]) -> Payload:
    """Concatenate payloads, collapsing single/empty/mergeable cases."""
    flat: List[Payload] = []
    for part in parts:
        if part.length == 0:
            continue
        if isinstance(part, CompositePayload):
            for sub in part.parts:
                _append_merged(flat, sub)
        else:
            _append_merged(flat, part)
    if not flat:
        return BytesPayload(b"")
    if len(flat) == 1:
        return flat[0]
    return CompositePayload._from_flat(flat)


def apply_discipline(payload: Payload, discipline) -> Payload:
    """Transform a payload according to a copy discipline.

    * PHYSICAL — a fresh equal-content payload (the memcpy result);
    * LOGICAL — the same object (only a key moved);
    * ZERO — junk of equal length (the copy statement was deleted).

    ``discipline`` is a :class:`repro.copymodel.accounting.CopyDiscipline`;
    the comparison is by value name to keep this module dependency-free.
    """
    name = getattr(discipline, "name", str(discipline))
    if name == "PHYSICAL":
        return payload.physical_copy()
    if name == "LOGICAL":
        return payload
    if name == "ZERO":
        return JunkPayload(payload.length)
    raise ValueError(f"unknown discipline {discipline!r}")


class BufferFlavor(Enum):
    """Which kernel's network-buffer structure we are imitating.

    The paper's §4.2 notes that porting from Linux (``sk_buff``) to FreeBSD
    (``mbuf``) requires no structural change because both support
    variable-size buffer chains; the flavor only changes per-buffer
    bookkeeping size and the default fragment capacity.
    """

    SK_BUFF = "sk_buff"
    MBUF = "mbuf"

    @property
    def overhead_bytes(self) -> int:
        # Approximate in-kernel descriptor sizes (Linux 2.4 / FreeBSD 4.x).
        return 160 if self is BufferFlavor.SK_BUFF else 256

    @property
    def default_capacity(self) -> int:
        # mbuf clusters are 2 KB; sk_buffs are sized to the MTU.
        return 1500 if self is BufferFlavor.SK_BUFF else 2048


class NetBuffer:
    """One network buffer: header stack + payload fragment + metadata.

    ``headers`` is ordered outermost-first (Ethernet, IP, UDP/TCP, RPC...).
    ``checksum`` caches the transport checksum covering this buffer's
    payload; NCache *inherits* it instead of recomputing (§1).

    A slotted hand-rolled class rather than a dataclass: the warm-start
    path and transport fragmentation allocate hundreds of thousands of
    these, and the dataclass ``__init__`` plus an always-present ``meta``
    dict were the two largest line items in the grid's heap profile.
    ``csum_known`` (is the transport checksum for this fragment already
    computed?) is the only metadata key hot enough to matter, so it is a
    plain slot; everything else lives in a lazily-created ``meta`` dict.
    """

    __slots__ = ("payload", "headers", "flavor", "checksum", "csum_known",
                 "_meta")

    def __init__(self, payload: Payload,
                 headers: Optional[List[object]] = None,
                 flavor: BufferFlavor = BufferFlavor.SK_BUFF,
                 checksum: Optional[int] = None,
                 meta: Optional[dict] = None,
                 csum_known: bool = False) -> None:
        self.payload = payload
        self.headers: List[object] = [] if headers is None else headers
        self.flavor = flavor
        self.checksum = checksum
        self.csum_known = csum_known
        self._meta: Optional[dict] = meta

    @property
    def meta(self) -> dict:
        """Auxiliary metadata dict, created on first access.

        Cold-path only.  Readers that must not allocate use
        :meth:`peek_meta`.
        """
        meta = self._meta
        if meta is None:
            meta = self._meta = {}
        return meta

    def peek_meta(self) -> Optional[dict]:
        """The metadata dict if one exists, else ``None`` (no allocation)."""
        return self._meta

    @property
    def payload_bytes(self) -> int:
        return self.payload.length

    @property
    def header_bytes(self) -> int:
        return sum(h.wire_size() for h in self.headers)

    @property
    def wire_bytes(self) -> int:
        return self.header_bytes + self.payload_bytes

    def find_header(self, cls: type):
        """Innermost header of the given class, or ``None``."""
        for header in reversed(self.headers):
            if isinstance(header, cls):
                return header
        return None

    def clone_with_payload(self, payload: Payload,
                           checksum: Optional[int] = None) -> "NetBuffer":
        """New buffer sharing this header stack but carrying ``payload``.

        This is the substitution primitive: NCache swaps the junk payload
        of an outgoing packet for cached network buffers.
        """
        meta = self._meta
        return NetBuffer(payload=payload, headers=list(self.headers),
                         flavor=self.flavor, checksum=checksum,
                         meta=dict(meta) if meta is not None else None,
                         csum_known=self.csum_known)

    def __repr__(self) -> str:
        return (f"NetBuffer({self.payload!r}, {len(self.headers)} headers, "
                f"{self.flavor.value})")


class BufferChain:
    """An ordered list of NetBuffers forming one message."""

    __slots__ = ("buffers",)

    def __init__(self, buffers: Optional[Iterable[NetBuffer]] = None) -> None:
        self.buffers: List[NetBuffer] = list(buffers) if buffers else []

    def append(self, buf: NetBuffer) -> None:
        self.buffers.append(buf)

    def extend(self, bufs: Iterable[NetBuffer]) -> None:
        self.buffers.extend(bufs)

    @property
    def payload_bytes(self) -> int:
        return sum(b.payload_bytes for b in self.buffers)

    @property
    def wire_bytes(self) -> int:
        return sum(b.wire_bytes for b in self.buffers)

    @property
    def n_buffers(self) -> int:
        return len(self.buffers)

    def payload(self) -> Payload:
        """The chain's full payload as a single (composite) payload."""
        return concat(b.payload for b in self.buffers)

    def __iter__(self) -> Iterator[NetBuffer]:
        return iter(self.buffers)

    def __len__(self) -> int:
        return len(self.buffers)

    def __repr__(self) -> str:
        return f"BufferChain({len(self.buffers)} bufs, {self.payload_bytes}B payload)"


def chain_from_payload(payload: Payload, fragment_size: int,
                       headers_factory=None,
                       flavor: BufferFlavor = BufferFlavor.SK_BUFF) -> BufferChain:
    """Split ``payload`` into a chain of <=``fragment_size`` buffers.

    ``headers_factory(index, fragment_payload)`` may supply a header stack
    per buffer; default is headerless fragments.  The factory must return
    a fresh list per call — it is stored on the buffer without copying.
    """
    if fragment_size <= 0:
        raise ValueError("fragment_size must be positive")
    chain = BufferChain()
    fragments = [payload] if payload.length == 0 else payload.split(fragment_size)
    for index, frag in enumerate(fragments):
        headers = headers_factory(index, frag) if headers_factory else []
        chain.append(NetBuffer(payload=frag, headers=headers, flavor=flavor))
    return chain
