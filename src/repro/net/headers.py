"""Protocol header descriptors.

Headers are small value objects attached to :class:`~repro.net.buffer.NetBuffer`
header stacks.  They exist so NCache can store buffers *with* their
pre-built headers (one of the paper's claimed benefits: "the protocol
headers do not need to be repeatedly allocated", §1) and so tests can
verify header reuse.  Wire sizes match the cost model's accounting.
"""

from __future__ import annotations

from dataclasses import dataclass


class Header:
    """Base class for protocol headers."""

    def wire_size(self) -> int:
        raise NotImplementedError


@dataclass
class EthernetHeader(Header):
    """Layer-2 frame header."""

    src_mac: str = ""
    dst_mac: str = ""

    def wire_size(self) -> int:
        return 14


@dataclass
class IPv4Header(Header):
    """IP header (fragmentation fields included)."""

    src_ip: str = ""
    dst_ip: str = ""
    protocol: str = "udp"
    fragment_offset: int = 0
    more_fragments: bool = False

    def wire_size(self) -> int:
        return 20


@dataclass
class UDPHeader(Header):
    """UDP header (first fragment of a datagram only)."""

    src_port: int = 0
    dst_port: int = 0
    length: int = 0
    checksum: int = 0

    def wire_size(self) -> int:
        return 8


@dataclass
class TCPHeader(Header):
    """TCP header with timestamp options."""

    src_port: int = 0
    dst_port: int = 0
    seq: int = 0
    ack: int = 0

    def wire_size(self) -> int:
        return 32  # 20 base + 12 bytes of timestamp options


@dataclass
class RPCHeader(Header):
    """ONC RPC call/reply header (we only track what NCache inspects)."""

    xid: int = 0
    is_call: bool = True
    program: int = 100003  # NFS
    procedure: int = 0

    def wire_size(self) -> int:
        return 28


@dataclass
class IscsiBHS(Header):
    """iSCSI Basic Header Segment (48 bytes)."""

    opcode: str = "scsi_cmd"
    task_tag: int = 0
    lun: int = 0
    lba: int = 0
    blocks: int = 0

    def wire_size(self) -> int:
        return 48
