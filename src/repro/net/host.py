"""A host: CPU(s), NICs, a network stack, and hook points for NCache.

The TX/RX hook chains model the paper's insertion point for the NCache
module: "inserted into the layer between the network stack and the
Ethernet device driver to perform on-the-fly packet caching and
replacement" (§4.1).  Hooks are generator functions so they can charge CPU
costs; each receives the datagram and returns the (possibly rewritten)
datagram to pass on.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from ..copymodel.accounting import CopyAccountant, RequestTrace
from ..copymodel.costs import DEFAULT_COSTS, CostModel
from ..sim.engine import Event, SimulationError, Simulator
from ..sim.resources import CPU
from ..sim.stats import CounterSet
from .buffer import BufferFlavor
from .network import NIC, Datagram, Network
from .stack import NetworkStack

#: TX hook: ``hook(dgram, trace) -> dgram`` (generator).
TxHook = Callable[[Datagram, Optional[RequestTrace]], Generator]
#: RX hook: ``hook(dgram) -> dgram`` (generator).
RxHook = Callable[[Datagram], Generator]


class Host:
    """One machine in the testbed."""

    #: When True (the default), the network stack books per-packet CPU
    #: costs through the accountant's ``note_*`` API and executes each
    #: packet train's total as one CPU hold instead of one hold per cost
    #: category.  Counters, histograms, and CopyRecords are identical on
    #: both paths; only the number of engine events differs.  Flip to
    #: False (per instance or globally) to A/B against the classic
    #: per-packet charging path.
    batched_charging: bool = True

    def __init__(self, sim: Simulator, name: str,
                 costs: CostModel = DEFAULT_COSTS,
                 cores: int = 1,
                 checksum_offload: bool = True,
                 buffer_flavor: BufferFlavor = BufferFlavor.SK_BUFF) -> None:
        self.sim = sim
        self.name = name
        self.costs = costs
        self.checksum_offload = checksum_offload
        self.buffer_flavor = buffer_flavor
        self.cpu = CPU(sim, cores=cores, name=f"{name}.cpu")
        self.counters = CounterSet()
        self.acct = CopyAccountant(self.cpu, costs, self.counters, owner=name)
        self.stack = NetworkStack(self)
        self.nics: List[NIC] = []
        self._tx_hooks: List[TxHook] = []
        self._rx_hooks: List[RxHook] = []

    # -- NICs --------------------------------------------------------------

    def add_nic(self, network: Network, ip: str,
                bandwidth_bps: Optional[float] = None,
                latency_s: Optional[float] = None) -> NIC:
        nic = NIC(self.sim, self, ip,
                  bandwidth_bps if bandwidth_bps is not None
                  else self.costs.link_bandwidth_bps,
                  latency_s if latency_s is not None
                  else self.costs.link_latency_s,
                  checksum_offload=self.checksum_offload)
        network.attach(nic)
        self.nics.append(nic)
        return nic

    def nic_for_ip(self, ip: str) -> NIC:
        for nic in self.nics:
            if nic.ip == ip:
                return nic
        raise SimulationError(f"host {self.name} has no NIC with IP {ip!r}")

    @property
    def ip(self) -> str:
        """Primary IP (first NIC)."""
        if not self.nics:
            raise SimulationError(f"host {self.name} has no NICs")
        return self.nics[0].ip

    # -- hook chains ---------------------------------------------------------

    def add_tx_hook(self, hook: TxHook) -> None:
        self._tx_hooks.append(hook)

    def add_rx_hook(self, hook: RxHook) -> None:
        self._rx_hooks.append(hook)

    def run_tx_hooks(self, dgram: Datagram,
                     trace: Optional[RequestTrace]
                     ) -> Generator[Event, Any, Datagram]:
        for hook in self._tx_hooks:
            dgram = yield from hook(dgram, trace)
        return dgram

    def run_rx_hooks(self, dgram: Datagram
                     ) -> Generator[Event, Any, Datagram]:
        for hook in self._rx_hooks:
            dgram = yield from hook(dgram)
        return dgram

    def __repr__(self) -> str:
        return f"Host({self.name}, nics={[n.ip for n in self.nics]})"
