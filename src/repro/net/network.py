"""Physical network: NICs, links and a non-blocking switch.

The testbed topology is the paper's: every host plugs one or more gigabit
NICs into a NetGear switch.  Each NIC gets a full-duplex pair of
:class:`~repro.sim.resources.Link` objects (one per direction).  The switch
backplane is non-blocking; only the per-port links contend.

Transmission granularity is a whole :class:`Datagram` burst: the uplink is
occupied for the burst's serialization time, then the destination downlink
is.  Per-frame CPU costs are aggregated arithmetically by the socket layer
(:mod:`repro.net.stack`); this keeps the event count O(messages), not
O(frames), without changing which resource saturates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Optional, TYPE_CHECKING

from ..sim.engine import Event, SimulationError, Simulator
from ..sim.resources import Link
from .addresses import Endpoint
from .buffer import BufferChain

if TYPE_CHECKING:
    from .host import Host


@dataclass
class Datagram:
    """One transport-level message in flight.

    ``chain`` holds the payload-bearing network buffers exactly as the
    receiving stack will see them (fragment-sized); ``message`` carries the
    parsed application object (an NFS call, an iSCSI PDU, ...), which the
    simulation passes alongside to avoid re-parsing.  ``n_frames`` and
    ``wire_bytes`` are precomputed from the cost model.
    """

    protocol: str  # "udp" | "tcp"
    src: Endpoint
    dst: Endpoint
    message: Any
    chain: BufferChain
    n_frames: int
    wire_bytes: int
    meta: dict = field(default_factory=dict)

    @property
    def payload_bytes(self) -> int:
        return self.chain.payload_bytes


class NIC:
    """A network interface: two links and a reference to its host."""

    def __init__(self, sim: Simulator, host: "Host", ip: str,
                 bandwidth_bps: float, latency_s: float,
                 checksum_offload: bool = True) -> None:
        self.sim = sim
        self.host = host
        self.ip = ip
        self.checksum_offload = checksum_offload
        self.tx_link = Link(sim, bandwidth_bps, latency_s, name=f"{ip}.tx")
        self.rx_link = Link(sim, bandwidth_bps, latency_s, name=f"{ip}.rx")
        self.network: Optional["Network"] = None

    def transmit(self, dgram: Datagram) -> Generator[Event, Any, None]:
        """Serialize the burst onto the wire and hand it to the switch."""
        if self.network is None:
            raise SimulationError(f"NIC {self.ip} not attached to a network")
        yield from self.tx_link.transmit(dgram.wire_bytes)
        self.network.forward(dgram)

    def send(self, dgram: Datagram) -> None:
        """Fire-and-forget :meth:`transmit`: the callback form.

        The stack never waits on a transmit, so the per-datagram hot
        path goes through the link's callback API — same serialization
        and FIFO contention, no Process per datagram.
        """
        if self.network is None:
            raise SimulationError(f"NIC {self.ip} not attached to a network")
        self.tx_link.transmit_then(dgram.wire_bytes,
                                   self.network.forward, dgram)


class Network:
    """The switch: routes datagrams between attached NICs by IP.

    Loss injection: ``set_loss(rate, seed)`` drops that fraction of UDP
    datagrams (whole messages, matching the burst granularity of the
    model).  TCP legs stay lossless — the iSCSI session rides a reliable
    transport and TCP recovery is out of scope (DESIGN.md §9); loss is an
    NFS/UDP phenomenon, which is exactly where the paper's protocols can
    experience it.
    """

    def __init__(self, sim: Simulator, name: str = "switch") -> None:
        self.sim = sim
        self.name = name
        self._ports: Dict[str, NIC] = {}
        self._loss_rate = 0.0
        self._loss_rng = None
        self.dropped = 0
        #: IPs administratively dark (fleet crash/leave fail-stop model):
        #: UDP datagrams from or to a down IP vanish at the switch.  TCP
        #: legs (the iSCSI session) stay connected, mirroring the loss
        #: model above — a "crashed" application server goes silent to
        #: its clients and peers while its in-flight backend I/O drains.
        self._down_ips: set = set()
        self.fail_stop_drops = 0

    def set_loss(self, rate: float, seed: int = 0) -> None:
        """Drop ``rate`` of UDP datagrams, deterministically per seed."""
        if not 0.0 <= rate < 1.0:
            raise SimulationError(f"loss rate {rate} outside [0, 1)")
        from ..sim.rng import substream

        self._loss_rate = rate
        self._loss_rng = substream(seed, "loss") if rate > 0 else None

    def set_port_down(self, ip: str, down: bool = True) -> None:
        """Mark ``ip`` dark (or bring it back); unknown IPs are fine —
        the port may attach later (a joining node)."""
        if down:
            self._down_ips.add(ip)
        else:
            self._down_ips.discard(ip)

    def port_is_down(self, ip: str) -> bool:
        return ip in self._down_ips

    def attach(self, nic: NIC) -> None:
        if nic.ip in self._ports:
            raise SimulationError(f"duplicate IP {nic.ip!r}")
        self._ports[nic.ip] = nic
        nic.network = self

    def nic_for(self, ip: str) -> NIC:
        nic = self._ports.get(ip)
        if nic is None:
            raise SimulationError(f"no route to {ip!r}")
        return nic

    def forward(self, dgram: Datagram) -> None:
        """Queue the burst on the destination port's downlink."""
        if self._loss_rng is not None and dgram.protocol == "udp" \
                and self._loss_rng.random() < self._loss_rate:
            self.dropped += 1
            return
        if self._down_ips and dgram.protocol == "udp" \
                and (dgram.src.ip in self._down_ips
                     or dgram.dst.ip in self._down_ips):
            self.fail_stop_drops += 1
            return
        dst_nic = self.nic_for(dgram.dst.ip)
        dst_nic.rx_link.transmit_then(dgram.wire_bytes, self._arrive,
                                      dst_nic, dgram)

    @staticmethod
    def _arrive(nic: NIC, dgram: Datagram) -> None:
        nic.host.stack.receive(nic, dgram)
