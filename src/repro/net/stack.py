"""In-kernel network stack: UDP datagrams and simplified TCP.

The stack charges protocol CPU costs (per frame, per datagram, per
segment), applies the host's TX/RX hook chains (where an NCache module
plugs in, "between the network stack and the Ethernet device driver",
§4.1), performs the socket-boundary data movement under a caller-chosen
:class:`~repro.copymodel.accounting.CopyDiscipline`, and hands bursts to
NICs.

TCP is message-oriented and lossless: the testbed LAN never drops, and the
paper's results do not involve loss recovery.  What *is* modelled, because
it shapes the kHTTPd numbers (§5.5: "the per-packet overhead of HTTP is
higher than that of NFS because HTTP runs on TCP"), is the per-segment CPU
cost and the ACK traffic in both directions.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional, TYPE_CHECKING

from ..copymodel.accounting import CopyDiscipline, RequestTrace
from ..sim.engine import Event, SimulationError
from ..sim.process import start
from .addresses import Endpoint
from .buffer import (
    BufferChain,
    BytesPayload,
    CompositePayload,
    JunkPayload,
    Payload,
    PlaceholderPayload,
    chain_from_payload,
    concat,
)
from .headers import IPv4Header, TCPHeader, UDPHeader
from .network import NIC, Datagram

if TYPE_CHECKING:
    from .host import Host

#: Handler for an inbound UDP datagram: a generator function
#: ``handler(dgram)`` started as a process per datagram.
UdpHandler = Callable[[Datagram], Generator]

#: Handler for an inbound TCP message on an established connection.
TcpHandler = Callable[["TCPConnection", Datagram], Generator]

_ACK_WIRE_BYTES = 64 + 38  # minimal frame + wire overhead


def count_placeholder_keys(payload: Payload) -> int:
    """Number of key-carrying placeholder fragments inside ``payload``."""
    if isinstance(payload, PlaceholderPayload):
        return 1
    if isinstance(payload, CompositePayload):
        return sum(count_placeholder_keys(p) for p in payload.parts)
    return 0


class NetworkStack:
    """One host's transport layer."""

    def __init__(self, host: "Host") -> None:
        self.host = host
        self.sim = host.sim
        self._udp_handlers: Dict[int, UdpHandler] = {}
        self._tcp_listeners: Dict[int, Callable[["TCPConnection"], None]] = {}
        self._connections: Dict[tuple, "TCPConnection"] = {}

    # ------------------------------------------------------------------
    # UDP
    # ------------------------------------------------------------------

    def udp_bind(self, port: int, handler: UdpHandler) -> None:
        if port in self._udp_handlers:
            raise SimulationError(f"UDP port {port} already bound")
        self._udp_handlers[port] = handler

    def udp_send(self, src_ip: str, src_port: int, dst: Endpoint,
                 message: Any, data: Payload,
                 header: Optional[Payload] = None,
                 discipline: CopyDiscipline = CopyDiscipline.PHYSICAL,
                 trace: Optional[RequestTrace] = None,
                 is_metadata: bool = False,
                 meta: Optional[dict] = None) -> Generator[Event, Any, Datagram]:
        """Send one UDP datagram; returns after CPU work is charged.

        ``header`` is the application-protocol header part (always built
        and physically handled — it is small); ``data`` is the bulk part
        moved under ``discipline``.
        """
        costs = self.host.costs
        acct = self.host.acct
        header = header if header is not None else BytesPayload(b"")
        moved = yield from self._move_out(data, discipline, trace, is_metadata)
        datagram_bytes = header.length + moved.length
        n_frames = costs.udp_frames(datagram_bytes)
        wire_bytes = costs.udp_wire_bytes(datagram_bytes)
        yield from acct.compute(
            n_frames * costs.packet_tx_ns + costs.udp_datagram_ns, "net.tx")
        chain = self._build_chain(
            concat([header, moved]), costs.udp_fragment_payload,
            src_ip, src_port, dst, "udp")
        dgram = Datagram(protocol="udp", src=Endpoint(src_ip, src_port),
                         dst=dst, message=message, chain=chain,
                         n_frames=n_frames, wire_bytes=wire_bytes,
                         meta=dict(meta or {}))
        dgram = yield from self.host.run_tx_hooks(dgram, trace)
        yield from self._software_checksum_tx(dgram.chain)
        bus = self.sim.trace
        if bus.enabled:
            bus.emit("net.send", cat="net", tid=bus.tid_for(self.host.name),
                     proto="udp", dst=str(dst), frames=dgram.n_frames,
                     wire_bytes=dgram.wire_bytes,
                     msg=type(message).__name__)
        nic = self.host.nic_for_ip(src_ip)
        start(self.sim, nic.transmit(dgram), name=f"udp-tx {src_ip}->{dst}")
        return dgram

    # ------------------------------------------------------------------
    # TCP
    # ------------------------------------------------------------------

    def tcp_listen(self, port: int,
                   acceptor: Callable[["TCPConnection"], None]) -> None:
        """Register ``acceptor(conn)``, called for each new connection.

        The acceptor must set ``conn.on_message`` before returning.
        """
        if port in self._tcp_listeners:
            raise SimulationError(f"TCP port {port} already listening")
        self._tcp_listeners[port] = acceptor

    def tcp_connect(self, src_ip: str, src_port: int, dst: Endpoint
                    ) -> Generator[Event, Any, "TCPConnection"]:
        """Three-way handshake; returns the established connection."""
        local = Endpoint(src_ip, src_port)
        conn = TCPConnection(self, local, dst)
        self._connections[(local, dst)] = conn
        costs = self.host.costs
        yield from self.host.acct.compute(costs.tcp_segment_ns, "tcp.connect")
        syn = Datagram(protocol="tcp", src=local, dst=dst, message=None,
                       chain=BufferChain(), n_frames=1,
                       wire_bytes=_ACK_WIRE_BYTES,
                       meta={"tcp": "syn"})
        nic = self.host.nic_for_ip(src_ip)
        start(self.sim, nic.transmit(syn), name="tcp-syn")
        yield conn.established
        return conn

    # ------------------------------------------------------------------
    # Receive path (called by the Network when frames arrive)
    # ------------------------------------------------------------------

    def receive(self, nic: NIC, dgram: Datagram) -> None:
        start(self.sim, self._rx_process(nic, dgram),
              name=f"rx {dgram.src}->{dgram.dst}")

    def _rx_process(self, nic: NIC, dgram: Datagram
                    ) -> Generator[Event, Any, None]:
        costs = self.host.costs
        acct = self.host.acct
        kind = dgram.meta.get("tcp")
        if kind == "ack":
            yield from acct.compute(
                dgram.meta["n_acks"] * costs.tcp_ack_ns, "tcp.ack_rx")
            return
        if kind in ("syn", "synack"):
            yield from acct.compute(costs.tcp_segment_ns, "tcp.connect")
            self._handle_handshake(nic, dgram)
            return

        bus = self.sim.trace
        if bus.enabled:
            bus.emit("net.receive", cat="net",
                     tid=bus.tid_for(self.host.name),
                     proto=dgram.protocol, src=str(dgram.src),
                     frames=dgram.n_frames, wire_bytes=dgram.wire_bytes)
        yield from acct.compute(dgram.n_frames * costs.packet_rx_ns, "net.rx")
        if dgram.protocol == "udp":
            yield from acct.compute(costs.udp_datagram_ns, "udp.rx")
        else:
            yield from acct.compute(
                dgram.n_frames * costs.tcp_segment_ns, "tcp.rx")
        yield from self._software_checksum_rx(dgram.chain)
        dgram = yield from self.host.run_rx_hooks(dgram)

        if dgram.protocol == "tcp":
            self._ack(nic, dgram)
            conn = self._connections.get((dgram.dst, dgram.src))
            if conn is None:
                raise SimulationError(
                    f"TCP data for unknown connection {dgram.src}->{dgram.dst}")
            if conn.on_message is None:
                raise SimulationError(
                    f"connection {conn.local}->{conn.remote} has no handler")
            start(self.sim, conn.on_message(conn, dgram), name="tcp-handler")
        else:
            handler = self._udp_handlers.get(dgram.dst.port)
            if handler is None:
                self.host.counters.add("udp.dropped")
                return
            start(self.sim, handler(dgram), name=f"udp-handler:{dgram.dst.port}")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _move_out(self, data: Payload, discipline: CopyDiscipline,
                  trace: Optional[RequestTrace], is_metadata: bool
                  ) -> Generator[Event, Any, Payload]:
        """The socket-boundary move (application buffer -> network buffers)."""
        acct = self.host.acct
        if data.length == 0:
            return data
        if is_metadata or discipline is CopyDiscipline.PHYSICAL:
            yield from acct.physical_copy(data.length, "sock_tx", trace,
                                          is_metadata)
            return data.physical_copy()
        if discipline is CopyDiscipline.LOGICAL:
            nkeys = max(1, count_placeholder_keys(data))
            yield from acct.logical_copy("sock_tx", nkeys, trace, data.length)
            return data
        # ZERO: the copy statement was deleted; junk goes on the wire.
        self.host.counters.add("copies.elided")
        return JunkPayload(data.length)

    def _build_chain(self, payload: Payload, fragment_size: int, src_ip: str,
                     src_port: int, dst: Endpoint, proto: str) -> BufferChain:
        flavor = self.host.buffer_flavor
        # Headers are immutable once built, so one IP header object is
        # shared by every fragment of the chain (a chain can be dozens
        # of fragments; per-fragment construction showed in profiles).
        ip = IPv4Header(src_ip=src_ip, dst_ip=dst.ip, protocol=proto)
        if proto == "udp":
            transport = UDPHeader(src_port=src_port, dst_port=dst.port)
        else:
            transport = TCPHeader(src_port=src_port, dst_port=dst.port)

        def headers_factory(index: int, frag: Payload):
            return [ip, transport] if index == 0 else [ip]

        return chain_from_payload(payload, fragment_size, headers_factory,
                                  flavor=flavor)

    def _software_checksum_tx(self, chain: BufferChain
                              ) -> Generator[Event, Any, None]:
        """Charge software checksum when the NIC cannot offload it.

        Runs *after* the TX hooks: buffers whose checksum is already known
        — cached network buffers re-emitted by NCache ("inherited from the
        payload's originator", §1) — cost nothing; fresh buffers pay per
        byte.  With offload on (the paper's default) the NIC does the work
        and the CPU pays nothing either way.
        """
        if self.host.checksum_offload:
            return
        acct = self.host.acct
        for buf in chain:
            if buf.csum_known or buf.checksum is not None:
                yield from acct.checksum(buf.payload_bytes, cached=True)
            else:
                yield from acct.checksum(buf.payload_bytes)
                buf.csum_known = True

    def _software_checksum_rx(self, chain: BufferChain
                              ) -> Generator[Event, Any, None]:
        """Verify inbound checksums (software path) and mark them known.

        Whether verified in hardware (offload) or software, a received
        buffer's checksum is known afterwards — that is what a cached
        chunk later *inherits* when its buffers are re-sent.
        """
        for buf in chain:
            if not self.host.checksum_offload:
                yield from self.host.acct.checksum(buf.payload_bytes)
            buf.csum_known = True

    def _handle_handshake(self, nic: NIC, dgram: Datagram) -> None:
        if dgram.meta["tcp"] == "syn":
            acceptor = self._tcp_listeners.get(dgram.dst.port)
            if acceptor is None:
                raise SimulationError(f"no TCP listener on {dgram.dst}")
            conn = TCPConnection(self, dgram.dst, dgram.src)
            self._connections[(dgram.dst, dgram.src)] = conn
            acceptor(conn)
            conn.established.succeed(conn)
            synack = Datagram(protocol="tcp", src=dgram.dst, dst=dgram.src,
                              message=None, chain=BufferChain(), n_frames=1,
                              wire_bytes=_ACK_WIRE_BYTES,
                              meta={"tcp": "synack"})
            start(self.sim, nic.transmit(synack), name="tcp-synack")
        else:  # synack
            conn = self._connections.get((dgram.dst, dgram.src))
            if conn is not None and not conn.established.triggered:
                conn.established.succeed(conn)

    def _ack(self, nic: NIC, dgram: Datagram) -> None:
        """Send aggregated delayed ACKs for a received data burst."""
        n_acks = max(1, (dgram.n_frames + 1) // 2)
        start(self.sim, self._ack_process(nic, dgram, n_acks), name="tcp-ack")

    def _ack_process(self, nic: NIC, dgram: Datagram, n_acks: int
                     ) -> Generator[Event, Any, None]:
        yield from self.host.acct.compute(
            n_acks * self.host.costs.tcp_ack_ns, "tcp.ack_tx")
        ack = Datagram(protocol="tcp", src=dgram.dst, dst=dgram.src,
                       message=None, chain=BufferChain(), n_frames=n_acks,
                       wire_bytes=n_acks * _ACK_WIRE_BYTES,
                       meta={"tcp": "ack", "n_acks": n_acks})
        yield from nic.transmit(ack)


class TCPConnection:
    """An established, lossless, message-oriented TCP connection."""

    def __init__(self, stack: NetworkStack, local: Endpoint,
                 remote: Endpoint) -> None:
        self.stack = stack
        self.local = local
        self.remote = remote
        self.established = stack.sim.event()
        #: generator function ``on_message(conn, dgram)``
        self.on_message: Optional[TcpHandler] = None

    def send(self, message: Any, data: Payload,
             header: Optional[Payload] = None,
             discipline: CopyDiscipline = CopyDiscipline.PHYSICAL,
             trace: Optional[RequestTrace] = None,
             is_metadata: bool = False,
             meta: Optional[dict] = None
             ) -> Generator[Event, Any, Datagram]:
        """Send one application message over the connection."""
        host = self.stack.host
        costs = host.costs
        header = header if header is not None else BytesPayload(b"")
        moved = yield from self.stack._move_out(data, discipline, trace,
                                                is_metadata)
        message_bytes = header.length + moved.length
        n_segments = costs.tcp_segments(message_bytes)
        wire_bytes = costs.tcp_wire_bytes(message_bytes)
        yield from host.acct.compute(
            n_segments * (costs.packet_tx_ns + costs.tcp_segment_ns), "net.tx")
        chain = self.stack._build_chain(
            concat([header, moved]), costs.tcp_mss,
            self.local.ip, self.local.port, self.remote, "tcp")
        dgram = Datagram(protocol="tcp", src=self.local, dst=self.remote,
                         message=message, chain=chain, n_frames=n_segments,
                         wire_bytes=wire_bytes, meta=dict(meta or {}))
        dgram = yield from host.run_tx_hooks(dgram, trace)
        yield from self.stack._software_checksum_tx(dgram.chain)
        bus = self.stack.sim.trace
        if bus.enabled:
            bus.emit("net.send", cat="net", tid=bus.tid_for(host.name),
                     proto="tcp", dst=str(self.remote),
                     frames=dgram.n_frames, wire_bytes=dgram.wire_bytes,
                     msg=type(message).__name__)
        nic = host.nic_for_ip(self.local.ip)
        start(self.stack.sim, nic.transmit(dgram),
              name=f"tcp-tx {self.local}->{self.remote}")
        return dgram

    def __repr__(self) -> str:
        return f"TCPConnection({self.local} -> {self.remote})"
