"""In-kernel network stack: UDP datagrams and simplified TCP.

The stack charges protocol CPU costs (per frame, per datagram, per
segment), applies the host's TX/RX hook chains (where an NCache module
plugs in, "between the network stack and the Ethernet device driver",
§4.1), performs the socket-boundary data movement under a caller-chosen
:class:`~repro.copymodel.accounting.CopyDiscipline`, and hands bursts to
NICs.

TCP is message-oriented and lossless: the testbed LAN never drops, and the
paper's results do not involve loss recovery.  What *is* modelled, because
it shapes the kHTTPd numbers (§5.5: "the per-packet overhead of HTTP is
higher than that of NFS because HTTP runs on TCP"), is the per-segment CPU
cost and the ACK traffic in both directions.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional, TYPE_CHECKING

from ..copymodel.accounting import CopyDiscipline, RequestTrace
from ..sim.engine import Event, SimulationError
from ..sim.process import start
from .addresses import Endpoint
from .buffer import (
    BufferChain,
    BytesPayload,
    CompositePayload,
    JunkPayload,
    NetBuffer,
    Payload,
    PlaceholderPayload,
    chain_from_payload,
    concat,
)
from .headers import IPv4Header, TCPHeader, UDPHeader
from .network import NIC, Datagram

if TYPE_CHECKING:
    from .host import Host

#: Handler for an inbound UDP datagram: a generator function
#: ``handler(dgram)`` started as a process per datagram.
UdpHandler = Callable[[Datagram], Generator]

#: Handler for an inbound TCP message on an established connection.
TcpHandler = Callable[["TCPConnection", Datagram], Generator]

_ACK_WIRE_BYTES = 64 + 38  # minimal frame + wire overhead


def count_placeholder_keys(payload: Payload) -> int:
    """Number of key-carrying placeholder fragments inside ``payload``."""
    if isinstance(payload, PlaceholderPayload):
        return 1
    if isinstance(payload, CompositePayload):
        return sum(count_placeholder_keys(p) for p in payload.parts)
    return 0


class NetworkStack:
    """One host's transport layer."""

    def __init__(self, host: "Host") -> None:
        self.host = host
        self.sim = host.sim
        self._udp_handlers: Dict[int, UdpHandler] = {}
        self._tcp_listeners: Dict[int, Callable[["TCPConnection"], None]] = {}
        self._connections: Dict[tuple, "TCPConnection"] = {}

    # ------------------------------------------------------------------
    # UDP
    # ------------------------------------------------------------------

    def udp_bind(self, port: int, handler: UdpHandler) -> None:
        if port in self._udp_handlers:
            raise SimulationError(f"UDP port {port} already bound")
        self._udp_handlers[port] = handler

    def udp_send(self, src_ip: str, src_port: int, dst: Endpoint,
                 message: Any, data: Payload,
                 header: Optional[Payload] = None,
                 discipline: CopyDiscipline = CopyDiscipline.PHYSICAL,
                 trace: Optional[RequestTrace] = None,
                 is_metadata: bool = False,
                 meta: Optional[dict] = None) -> Generator[Event, Any, Datagram]:
        """Send one UDP datagram; returns after CPU work is charged.

        ``header`` is the application-protocol header part (always built
        and physically handled — it is small); ``data`` is the bulk part
        moved under ``discipline``.
        """
        costs = self.host.costs
        acct = self.host.acct
        header = header if header is not None else BytesPayload(b"")
        if self.host.batched_charging:
            moved, move_ns = self._note_move_out(data, discipline, trace,
                                                 is_metadata)
        else:
            moved = yield from self._move_out(data, discipline, trace,
                                              is_metadata)
            move_ns = None
        datagram_bytes = header.length + moved.length
        n_frames = costs.udp_frames(datagram_bytes)
        wire_bytes = costs.udp_wire_bytes(datagram_bytes)
        tx_ns = n_frames * costs.packet_tx_ns + costs.udp_datagram_ns
        if move_ns is None:
            yield from acct.compute(tx_ns, "net.tx")
        else:
            # One CPU hold for the whole train: socket move + per-frame
            # TX costs, booked separately, executed together.
            yield from acct.charge_ns(
                move_ns + acct.note_compute(tx_ns, "net.tx"))
        payload = concat([header, moved])
        # Lazy fragmentation: the datagram carries one buffer holding the
        # whole payload plus a ``lazy_frag`` marker with the fragment
        # size.  Per-fragment buffers only matter to a receiver that
        # caches wire buffers (an NCache host), and the receive path
        # refragments there — every other consumer reassembles the
        # payload anyway, and frame/wire accounting is arithmetic.
        # A substituting TX hook replaces the chain wholesale (it
        # coalesces fragment boundaries away first), so fragmenting
        # before the hooks would be pure wasted work.
        chain = self._build_lazy_chain(payload, src_ip, src_port, dst, "udp")
        dgram = Datagram(protocol="udp", src=Endpoint(src_ip, src_port),
                         dst=dst, message=message, chain=chain,
                         n_frames=n_frames, wire_bytes=wire_bytes,
                         meta=dict(meta or {}))
        # No-op guards: most hosts have no hooks and offload checksums,
        # and this path runs per datagram — skip the generator plumbing.
        if self.host._tx_hooks:
            dgram = yield from self.host.run_tx_hooks(dgram, trace)
        if dgram.chain is chain:
            dgram.meta["lazy_frag"] = costs.udp_fragment_payload
        if not self.host.checksum_offload:
            yield from self._software_checksum_tx(dgram.chain)
        bus = self.sim.trace
        if bus.enabled:
            bus.emit("net.send", cat="net", tid=bus.tid_for(self.host.name),
                     proto="udp", dst=str(dst), frames=dgram.n_frames,
                     wire_bytes=dgram.wire_bytes,
                     msg=type(message).__name__)
        nic = self.host.nic_for_ip(src_ip)
        nic.send(dgram)
        return dgram

    # ------------------------------------------------------------------
    # TCP
    # ------------------------------------------------------------------

    def tcp_listen(self, port: int,
                   acceptor: Callable[["TCPConnection"], None]) -> None:
        """Register ``acceptor(conn)``, called for each new connection.

        The acceptor must set ``conn.on_message`` before returning.
        """
        if port in self._tcp_listeners:
            raise SimulationError(f"TCP port {port} already listening")
        self._tcp_listeners[port] = acceptor

    def tcp_connect(self, src_ip: str, src_port: int, dst: Endpoint
                    ) -> Generator[Event, Any, "TCPConnection"]:
        """Three-way handshake; returns the established connection."""
        local = Endpoint(src_ip, src_port)
        conn = TCPConnection(self, local, dst)
        self._connections[(local, dst)] = conn
        costs = self.host.costs
        yield from self.host.acct.compute(costs.tcp_segment_ns, "tcp.connect")
        syn = Datagram(protocol="tcp", src=local, dst=dst, message=None,
                       chain=BufferChain(), n_frames=1,
                       wire_bytes=_ACK_WIRE_BYTES,
                       meta={"tcp": "syn"})
        nic = self.host.nic_for_ip(src_ip)
        nic.send(syn)
        yield conn.established
        return conn

    # ------------------------------------------------------------------
    # Receive path (called by the Network when frames arrive)
    # ------------------------------------------------------------------

    def receive(self, nic: NIC, dgram: Datagram) -> None:
        start(self.sim, self._rx_process(nic, dgram), name="rx")

    def _rx_process(self, nic: NIC, dgram: Datagram
                    ) -> Generator[Event, Any, None]:
        costs = self.host.costs
        acct = self.host.acct
        kind = dgram.meta.get("tcp")
        if kind == "ack":
            yield from acct.compute(
                dgram.meta["n_acks"] * costs.tcp_ack_ns, "tcp.ack_rx")
            return
        if kind in ("syn", "synack"):
            yield from acct.compute(costs.tcp_segment_ns, "tcp.connect")
            self._handle_handshake(nic, dgram)
            return

        frag_size = dgram.meta.get("lazy_frag")
        if frag_size is not None and self.host._rx_hooks:
            del dgram.meta["lazy_frag"]
            # An RX hook may cache this datagram's wire buffers, and
            # chunk buffer lists are made of fragment-granularity
            # descriptors — expand the lazy single-buffer chain into
            # the shape the sender's transport would have produced
            # (before checksum marking, so csum inheritance sees the
            # per-fragment buffers exactly as a real arrival would).
            dgram.chain = self._build_chain(
                dgram.chain.buffers[0].payload, frag_size,
                dgram.src.ip, dgram.src.port, dgram.dst, dgram.protocol)
        bus = self.sim.trace
        if bus.enabled:
            bus.emit("net.receive", cat="net",
                     tid=bus.tid_for(self.host.name),
                     proto=dgram.protocol, src=str(dgram.src),
                     frames=dgram.n_frames, wire_bytes=dgram.wire_bytes)
        rx_ns = dgram.n_frames * costs.packet_rx_ns
        if dgram.protocol == "udp":
            proto_ns, proto_cat = costs.udp_datagram_ns, "udp.rx"
        else:
            proto_ns, proto_cat = (
                dgram.n_frames * costs.tcp_segment_ns, "tcp.rx")
        if self.host.batched_charging:
            yield from acct.charge_ns(
                acct.note_compute(rx_ns, "net.rx")
                + acct.note_compute(proto_ns, proto_cat))
        else:
            yield from acct.compute(rx_ns, "net.rx")
            yield from acct.compute(proto_ns, proto_cat)
        if self.host.checksum_offload:
            # Hardware-verified: just mark the checksums known (what a
            # cached chunk later inherits when its buffers are re-sent).
            for buf in dgram.chain:
                buf.csum_known = True
        else:
            yield from self._software_checksum_rx(dgram.chain)
        if self.host._rx_hooks:
            dgram = yield from self.host.run_rx_hooks(dgram)

        if dgram.protocol == "tcp":
            self._ack(nic, dgram)
            conn = self._connections.get((dgram.dst, dgram.src))
            if conn is None:
                raise SimulationError(
                    f"TCP data for unknown connection {dgram.src}->{dgram.dst}")
            if conn.on_message is None:
                raise SimulationError(
                    f"connection {conn.local}->{conn.remote} has no handler")
            start(self.sim, conn.on_message(conn, dgram), name="tcp-handler")
        else:
            handler = self._udp_handlers.get(dgram.dst.port)
            if handler is None:
                self.host.counters.add("udp.dropped")
                return
            start(self.sim, handler(dgram), name="udp-handler")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _move_out(self, data: Payload, discipline: CopyDiscipline,
                  trace: Optional[RequestTrace], is_metadata: bool
                  ) -> Generator[Event, Any, Payload]:
        """The socket-boundary move (application buffer -> network buffers)."""
        acct = self.host.acct
        if data.length == 0:
            return data
        if is_metadata or discipline is CopyDiscipline.PHYSICAL:
            yield from acct.physical_copy(data.length, "sock_tx", trace,
                                          is_metadata)
            return data.physical_copy()
        if discipline is CopyDiscipline.LOGICAL:
            nkeys = max(1, count_placeholder_keys(data))
            yield from acct.logical_copy("sock_tx", nkeys, trace, data.length)
            return data
        # ZERO: the copy statement was deleted; junk goes on the wire.
        self.host.counters.add("copies.elided")
        return JunkPayload(data.length)

    def _note_move_out(self, data: Payload, discipline: CopyDiscipline,
                       trace: Optional[RequestTrace], is_metadata: bool
                       ) -> tuple:
        """Batched variant of :meth:`_move_out`: books the movement and
        returns ``(payload, cpu_ns)`` for the caller to charge with the
        rest of the train."""
        acct = self.host.acct
        if data.length == 0:
            return data, 0.0
        if is_metadata or discipline is CopyDiscipline.PHYSICAL:
            ns = acct.note_physical_copy(data.length, "sock_tx", trace,
                                         is_metadata)
            return data.physical_copy(), ns
        if discipline is CopyDiscipline.LOGICAL:
            nkeys = max(1, count_placeholder_keys(data))
            ns = acct.note_logical_copy("sock_tx", nkeys, trace, data.length)
            return data, ns
        self.host.counters.add("copies.elided")
        return JunkPayload(data.length), 0.0

    def _build_lazy_chain(self, payload: Payload, src_ip: str,
                          src_port: int, dst: Endpoint,
                          proto: str) -> BufferChain:
        """A single-buffer chain holding the whole (unfragmented) payload.

        Paired with the ``lazy_frag`` datagram marker: the receive path
        expands it to the real fragment-sized chain only on hosts whose
        RX hooks may cache wire buffers (fragment granularity is what a
        cached chunk's buffer list is made of); everywhere else the
        per-fragment descriptors would never be observed.
        """
        ip = IPv4Header(src_ip=src_ip, dst_ip=dst.ip, protocol=proto)
        if proto == "udp":
            transport = UDPHeader(src_port=src_port, dst_port=dst.port)
        else:
            transport = TCPHeader(src_port=src_port, dst_port=dst.port)
        return BufferChain([NetBuffer(payload=payload,
                                      headers=[ip, transport],
                                      flavor=self.host.buffer_flavor)])

    def _build_chain(self, payload: Payload, fragment_size: int, src_ip: str,
                     src_port: int, dst: Endpoint, proto: str) -> BufferChain:
        flavor = self.host.buffer_flavor
        # Headers are immutable once built, so one IP header object is
        # shared by every fragment of the chain (a chain can be dozens
        # of fragments; per-fragment construction showed in profiles).
        ip = IPv4Header(src_ip=src_ip, dst_ip=dst.ip, protocol=proto)
        if proto == "udp":
            transport = UDPHeader(src_port=src_port, dst_port=dst.port)
        else:
            transport = TCPHeader(src_port=src_port, dst_port=dst.port)

        def headers_factory(index: int, frag: Payload):
            return [ip, transport] if index == 0 else [ip]

        return chain_from_payload(payload, fragment_size, headers_factory,
                                  flavor=flavor)

    def _software_checksum_tx(self, chain: BufferChain
                              ) -> Generator[Event, Any, None]:
        """Charge software checksum when the NIC cannot offload it.

        Runs *after* the TX hooks: buffers whose checksum is already known
        — cached network buffers re-emitted by NCache ("inherited from the
        payload's originator", §1) — cost nothing; fresh buffers pay per
        byte.  With offload on (the paper's default) the NIC does the work
        and the CPU pays nothing either way.
        """
        if self.host.checksum_offload:
            return
        acct = self.host.acct
        if self.host.batched_charging:
            ns = 0.0
            for buf in chain:
                if buf.csum_known or buf.checksum is not None:
                    ns += acct.note_checksum(buf.payload_bytes, cached=True)
                else:
                    ns += acct.note_checksum(buf.payload_bytes)
                    buf.csum_known = True
            if ns:
                yield from acct.charge_ns(ns)
            return
        for buf in chain:
            if buf.csum_known or buf.checksum is not None:
                yield from acct.checksum(buf.payload_bytes, cached=True)
            else:
                yield from acct.checksum(buf.payload_bytes)
                buf.csum_known = True

    def _software_checksum_rx(self, chain: BufferChain
                              ) -> Generator[Event, Any, None]:
        """Verify inbound checksums (software path) and mark them known.

        Whether verified in hardware (offload) or software, a received
        buffer's checksum is known afterwards — that is what a cached
        chunk later *inherits* when its buffers are re-sent.
        """
        if self.host.checksum_offload:
            for buf in chain:
                buf.csum_known = True
            return
        acct = self.host.acct
        if self.host.batched_charging:
            ns = 0.0
            for buf in chain:
                ns += acct.note_checksum(buf.payload_bytes)
                buf.csum_known = True
            if ns:
                yield from acct.charge_ns(ns)
            return
        for buf in chain:
            yield from acct.checksum(buf.payload_bytes)
            buf.csum_known = True

    def _handle_handshake(self, nic: NIC, dgram: Datagram) -> None:
        if dgram.meta["tcp"] == "syn":
            acceptor = self._tcp_listeners.get(dgram.dst.port)
            if acceptor is None:
                raise SimulationError(f"no TCP listener on {dgram.dst}")
            conn = TCPConnection(self, dgram.dst, dgram.src)
            self._connections[(dgram.dst, dgram.src)] = conn
            acceptor(conn)
            conn.established.succeed(conn)
            synack = Datagram(protocol="tcp", src=dgram.dst, dst=dgram.src,
                              message=None, chain=BufferChain(), n_frames=1,
                              wire_bytes=_ACK_WIRE_BYTES,
                              meta={"tcp": "synack"})
            nic.send(synack)
        else:  # synack
            conn = self._connections.get((dgram.dst, dgram.src))
            if conn is not None and not conn.established.triggered:
                conn.established.succeed(conn)

    def _ack(self, nic: NIC, dgram: Datagram) -> None:
        """Send aggregated delayed ACKs for a received data burst."""
        n_acks = max(1, (dgram.n_frames + 1) // 2)
        start(self.sim, self._ack_process(nic, dgram, n_acks), name="tcp-ack")

    def _ack_process(self, nic: NIC, dgram: Datagram, n_acks: int
                     ) -> Generator[Event, Any, None]:
        yield from self.host.acct.compute(
            n_acks * self.host.costs.tcp_ack_ns, "tcp.ack_tx")
        ack = Datagram(protocol="tcp", src=dgram.dst, dst=dgram.src,
                       message=None, chain=BufferChain(), n_frames=n_acks,
                       wire_bytes=n_acks * _ACK_WIRE_BYTES,
                       meta={"tcp": "ack", "n_acks": n_acks})
        nic.send(ack)


class TCPConnection:
    """An established, lossless, message-oriented TCP connection."""

    def __init__(self, stack: NetworkStack, local: Endpoint,
                 remote: Endpoint) -> None:
        self.stack = stack
        self.local = local
        self.remote = remote
        self.established = stack.sim.event()
        #: generator function ``on_message(conn, dgram)``
        self.on_message: Optional[TcpHandler] = None

    def send(self, message: Any, data: Payload,
             header: Optional[Payload] = None,
             discipline: CopyDiscipline = CopyDiscipline.PHYSICAL,
             trace: Optional[RequestTrace] = None,
             is_metadata: bool = False,
             meta: Optional[dict] = None
             ) -> Generator[Event, Any, Datagram]:
        """Send one application message over the connection."""
        host = self.stack.host
        costs = host.costs
        header = header if header is not None else BytesPayload(b"")
        if host.batched_charging:
            moved, move_ns = self.stack._note_move_out(data, discipline,
                                                       trace, is_metadata)
        else:
            moved = yield from self.stack._move_out(data, discipline, trace,
                                                    is_metadata)
            move_ns = None
        message_bytes = header.length + moved.length
        n_segments = costs.tcp_segments(message_bytes)
        wire_bytes = costs.tcp_wire_bytes(message_bytes)
        tx_ns = n_segments * (costs.packet_tx_ns + costs.tcp_segment_ns)
        if move_ns is None:
            yield from host.acct.compute(tx_ns, "net.tx")
        else:
            yield from host.acct.charge_ns(
                move_ns + host.acct.note_compute(tx_ns, "net.tx"))
        payload = concat([header, moved])
        # Lazy fragmentation — see udp_send for the rationale.
        chain = self.stack._build_lazy_chain(
            payload, self.local.ip, self.local.port, self.remote, "tcp")
        dgram = Datagram(protocol="tcp", src=self.local, dst=self.remote,
                         message=message, chain=chain, n_frames=n_segments,
                         wire_bytes=wire_bytes, meta=dict(meta or {}))
        if host._tx_hooks:
            dgram = yield from host.run_tx_hooks(dgram, trace)
        if dgram.chain is chain:
            dgram.meta["lazy_frag"] = costs.tcp_mss
        if not host.checksum_offload:
            yield from self.stack._software_checksum_tx(dgram.chain)
        bus = self.stack.sim.trace
        if bus.enabled:
            bus.emit("net.send", cat="net", tid=bus.tid_for(host.name),
                     proto="tcp", dst=str(self.remote),
                     frames=dgram.n_frames, wire_bytes=dgram.wire_bytes,
                     msg=type(message).__name__)
        nic = host.nic_for_ip(self.local.ip)
        nic.send(dgram)
        return dgram

    def __repr__(self) -> str:
        return f"TCPConnection({self.local} -> {self.remote})"
