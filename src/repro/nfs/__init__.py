"""NFS: protocol subset, in-kernel server, measurement client."""

from .client import NfsClient, read_reply_data
from .protocol import (
    METADATA_PROCS,
    FileHandle,
    NfsCall,
    NfsProc,
    NfsReply,
)
from .server import FlushDaemon, NfsServer

__all__ = [
    "FileHandle",
    "FlushDaemon",
    "METADATA_PROCS",
    "NfsCall",
    "NfsClient",
    "NfsProc",
    "NfsReply",
    "NfsServer",
    "read_reply_data",
]
