"""NFS client used by the workload generators.

Mirrors the paper's measurement clients: they issue requests and receive
replies but "do not interpret the payloads" (§5.1), so the client charges
per-packet receive costs only — no payload copies — keeping client CPUs
out of the bottleneck picture, as two P3 clients were in the testbed.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..copymodel.accounting import RequestTrace
from ..net.addresses import Endpoint
from ..net.buffer import BytesPayload, JunkPayload, Payload
from ..net.host import Host
from ..net.network import Datagram
from ..rpc.messages import XidMatcher
from ..sim.engine import Event, SimulationError
from .protocol import FileHandle, NfsCall, NfsProc, NfsReply

#: Sentinel delivered to a pending reply waiter when its RTO expires.
_RTO_EXPIRED = object()


class NfsClient:
    """One mount point on a client host.

    NFS over UDP recovers loss by client retransmission: a call is resent
    with the *same xid* after ``rto_s`` (doubling per attempt, bounded by
    ``max_attempts``).  The server's duplicate-request cache recognizes
    the xid and replays the reply without re-executing the operation.
    """

    def __init__(self, host: Host, local_ip: str, server: Endpoint,
                 local_port: int = 900, rto_s: float = 0.05,
                 max_attempts: int = 6) -> None:
        self.host = host
        self.local_ip = local_ip
        self.server = server
        self.local_port = local_port
        self.rto_s = rto_s
        self.max_attempts = max_attempts
        self.retransmissions = 0
        self.matcher = XidMatcher(host.sim)
        host.stack.udp_bind(local_port, self._on_reply)

    def _on_reply(self, dgram: Datagram) -> Generator[Event, Any, None]:
        reply = dgram.message
        if not isinstance(reply, NfsReply):
            raise SimulationError(f"client got {reply!r}")
        # Late duplicate replies (a retransmitted call that raced with the
        # original's reply) are dropped, like the real client does.
        if self.matcher.is_pending(reply.xid):
            self.matcher.resolve(reply.xid, dgram)
        return
        yield  # pragma: no cover - generator marker

    # -- generic call ----------------------------------------------------------

    def call(self, proc: NfsProc, fh: Optional[FileHandle] = None,
             name: Optional[str] = None, offset: int = 0, count: int = 0,
             data: Optional[Payload] = None,
             trace: Optional[RequestTrace] = None,
             new_size: Optional[int] = None
             ) -> Generator[Event, Any, Datagram]:
        """Issue one NFS call; returns the reply datagram."""
        xid = self.matcher.new_xid()
        call = NfsCall(xid=xid, proc=proc, fh=fh, name=name,
                       offset=offset, count=count, new_size=new_size)
        data = data if data is not None else BytesPayload(b"")
        waiter = self.matcher.expect(xid)
        meta = {"trace": trace} if trace is not None else None
        rto = self.rto_s
        for attempt in range(self.max_attempts):
            yield from self.host.stack.udp_send(
                src_ip=self.local_ip, src_port=self.local_port,
                dst=self.server, message=call, data=data,
                header=JunkPayload(call.header_size),
                trace=trace, is_metadata=call.is_metadata, meta=meta)
            # The RTO is a cancellable timer that expires the *waiter*
            # with a sentinel, so the process waits on one event instead
            # of racing two through AnyOf — one dispatch and two Event
            # allocations cheaper per RPC, and a reply that wins the
            # race cancels the timer so the engine never dispatches it.
            timer = self.host.sim.call_later(rto, self._rto_expire,
                                             xid, waiter)
            value = yield waiter
            if value is not _RTO_EXPIRED:
                timer.cancel()
                return value
            self.retransmissions += 1
            rto *= 2
            if attempt + 1 < self.max_attempts:
                waiter = self.matcher.expect(xid)
        raise SimulationError(
            f"NFS call xid {xid} ({proc.name}) timed out after "
            f"{self.max_attempts} attempts")

    def _rto_expire(self, xid: int, waiter: Event) -> None:
        if waiter.triggered:
            return  # the reply landed at this exact instant; it wins
        # Forget the xid first so a reply racing this expiry is ignored
        # by the handler (the retransmission will hit the server's
        # duplicate-request cache and replay it).
        self.matcher.cancel(xid)
        waiter.succeed(_RTO_EXPIRED)

    # -- convenience wrappers ---------------------------------------------------

    def lookup(self, name: str, trace: Optional[RequestTrace] = None
               ) -> Generator[Event, Any, NfsReply]:
        dgram = yield from self.call(NfsProc.LOOKUP, name=name, trace=trace)
        return dgram.message

    def getattr(self, fh: FileHandle, trace: Optional[RequestTrace] = None
                ) -> Generator[Event, Any, NfsReply]:
        dgram = yield from self.call(NfsProc.GETATTR, fh=fh, trace=trace)
        return dgram.message

    def read(self, fh: FileHandle, offset: int, count: int,
             trace: Optional[RequestTrace] = None
             ) -> Generator[Event, Any, Datagram]:
        """READ; the returned datagram's chain carries the data bytes."""
        return (yield from self.call(NfsProc.READ, fh=fh, offset=offset,
                                     count=count, trace=trace))

    def write(self, fh: FileHandle, offset: int, data: Payload,
              trace: Optional[RequestTrace] = None
              ) -> Generator[Event, Any, Datagram]:
        return (yield from self.call(NfsProc.WRITE, fh=fh, offset=offset,
                                     count=data.length, data=data,
                                     trace=trace))

    def commit(self, fh: FileHandle, offset: int = 0, count: int = 0,
               trace: Optional[RequestTrace] = None
               ) -> Generator[Event, Any, NfsReply]:
        dgram = yield from self.call(NfsProc.COMMIT, fh=fh, offset=offset,
                                     count=count, trace=trace)
        return dgram.message

    def setattr_size(self, fh: FileHandle, new_size: int,
                     trace: Optional[RequestTrace] = None
                     ) -> Generator[Event, Any, NfsReply]:
        """Truncate the file to ``new_size`` bytes."""
        dgram = yield from self.call(NfsProc.SETATTR, fh=fh,
                                     new_size=new_size, trace=trace)
        return dgram.message

    def remove(self, name: str, trace: Optional[RequestTrace] = None
               ) -> Generator[Event, Any, NfsReply]:
        dgram = yield from self.call(NfsProc.REMOVE, name=name, trace=trace)
        return dgram.message


def read_reply_data(dgram: Datagram) -> Payload:
    """Extract the data bytes from a READ reply datagram."""
    reply = dgram.message
    whole = dgram.chain.payload()
    return whole.slice(reply.header_size, whole.length - reply.header_size)
