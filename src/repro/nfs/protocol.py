"""NFS protocol messages (a v3-flavoured subset over RPC/UDP).

The RPC procedure field is exactly what NCache's classifier inspects:
"Among incoming NFS packets, only the payloads of NFS write request
packets are cached ... among outgoing NFS packets only the payloads of NFS
read replies are replaced" (§3.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..rpc.messages import RPC_CALL_HEADER, RPC_REPLY_HEADER


class NfsProc(enum.Enum):
    """NFS procedure numbers (v3-flavoured subset)."""

    NULL = 0
    GETATTR = 1
    SETATTR = 2
    LOOKUP = 3
    ACCESS = 4
    READ = 6
    WRITE = 7
    CREATE = 8
    REMOVE = 12
    READDIR = 16
    FSSTAT = 18
    COMMIT = 21


#: Procedures whose payloads are file-system *metadata* (or no payload at
#: all).  READ/WRITE on regular files are the only regular-data carriers.
METADATA_PROCS = frozenset({
    NfsProc.NULL, NfsProc.GETATTR, NfsProc.SETATTR, NfsProc.LOOKUP,
    NfsProc.ACCESS, NfsProc.CREATE, NfsProc.REMOVE, NfsProc.READDIR,
    NfsProc.FSSTAT, NfsProc.COMMIT,
})

#: NFS-level header bytes on top of RPC (fh + offsets + attrs, rounded).
NFS_CALL_BODY = 72
NFS_REPLY_BODY = 72


@dataclass(frozen=True)
class FileHandle:
    """An opaque NFS file handle: inode number + generation."""

    ino: int
    generation: int = 1


#: NFS status codes used by the simulated server.
NFS_OK = 0
NFSERR_NOENT = 2
NFSERR_INVAL = 22
NFSERR_STALE = 70


@dataclass
class NfsCall:
    """One NFS request.  WRITE data rides in the datagram, not here."""

    xid: int
    proc: NfsProc
    fh: Optional[FileHandle] = None
    name: Optional[str] = None
    offset: int = 0
    count: int = 0
    #: SETATTR only: truncate the file to this size (None = no change).
    new_size: Optional[int] = None

    @property
    def header_size(self) -> int:
        extra = len(self.name) if self.name else 0
        return RPC_CALL_HEADER + NFS_CALL_BODY + extra

    @property
    def is_metadata(self) -> bool:
        return self.proc in METADATA_PROCS

    @property
    def is_call(self) -> bool:
        return True


@dataclass
class NfsReply:
    """One NFS reply.  READ data rides in the datagram, not here."""

    xid: int
    proc: NfsProc
    status: int = 0
    count: int = 0
    fh: Optional[FileHandle] = None
    size: int = 0  # attr: file size (GETATTR/LOOKUP)

    @property
    def header_size(self) -> int:
        return RPC_REPLY_HEADER + NFS_REPLY_BODY

    @property
    def is_metadata(self) -> bool:
        return self.proc in METADATA_PROCS

    @property
    def is_call(self) -> bool:
        return False

    @property
    def ok(self) -> bool:
        return self.status == 0
