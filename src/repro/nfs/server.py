"""The in-kernel NFS server daemon (nfsd).

A pool of ``n_daemons`` worker processes pulls requests off a shared queue
— the simulated analog of the knfsd thread count, which the paper tunes
per request size ("the number of NFS server daemons was also adjusted to
reach the best performance", §5.4).

The data path per procedure, with the copy counts of Table 2:

* READ:  VFS read (``fs_read`` move) then UDP send (``sock_tx`` move) —
  2 copies on a hit, 3 on a miss (``cache_fill``) in the original server.
* WRITE: received payload → page cache (``cache_write`` move) — 1 copy if
  the block is later overwritten, 2 once it is flushed (``sock_tx`` on the
  iSCSI connection).
* metadata procedures: small physical movements, identical in all modes.

The server is oblivious to NCache except for two seams: the VFS discipline
it was configured with, and ``dgram.meta["keyed_payload"]`` left by the
RX hook on write requests (the in-kernel daemon itself is unmodified —
Table 1: "NFS/Web server daemon: None").
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Generator, Optional

from ..copymodel.accounting import CopyDiscipline, RequestTrace
from ..fs.vfs import VFS
from ..net.addresses import NFS_PORT
from ..net.buffer import BytesPayload, JunkPayload, Payload
from ..net.host import Host
from ..net.network import Datagram
from ..sim.engine import Event, SimulationError
from ..sim.process import start
from ..sim.resources import Store
from .protocol import (
    NFSERR_INVAL,
    NFSERR_NOENT,
    NFSERR_STALE,
    FileHandle,
    NfsCall,
    NfsProc,
    NfsReply,
)


class DuplicateRequestCache:
    """The knfsd duplicate-request cache (DRC).

    NFS over UDP relies on client retransmission; a retransmitted call
    whose original was already executed must not run twice (WRITE would
    be reapplied after newer writes).  The DRC remembers recently-served
    (client, xid) pairs with enough of the reply to resend it.
    """

    def __init__(self, capacity: int = 2048) -> None:
        self.capacity = capacity
        # The DRC is bounded-FIFO protocol replay state (RFC 1813 / knfsd
        # behavior), not a block-recency cache: entries age out strictly
        # by arrival order and a lookup must NOT refresh them.
        self._entries: "OrderedDict[tuple, tuple]" = OrderedDict()  # check: ignore[cache-discipline] -- FIFO replay cache, not recency
        self.hits = 0
        #: requests currently executing: duplicates arriving meanwhile are
        #: dropped (the client's next retransmission finds the reply).
        self.in_progress: set = set()

    def key(self, dgram: Datagram) -> tuple:
        return (dgram.src.ip, dgram.src.port, dgram.message.xid)

    def lookup(self, dgram: Datagram):
        entry = self._entries.get(self.key(dgram))
        if entry is not None:
            self.hits += 1
        return entry

    def remember(self, dgram: Datagram, reply, data, is_metadata) -> None:
        self._entries[self.key(dgram)] = (reply, data, is_metadata)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)


class NfsServer:
    """An NFS server bound to one or more of its host's IPs."""

    def __init__(self, host: Host, vfs: VFS, n_daemons: int = 8,
                 discipline: CopyDiscipline = CopyDiscipline.PHYSICAL,
                 port: int = NFS_PORT) -> None:
        self.host = host
        self.vfs = vfs
        self.discipline = discipline
        self.port = port
        self.requests_served = 0
        self.drc = DuplicateRequestCache()
        #: server-side READ service time (queue wait excluded): the
        #:  distribution behind the paper's latency argument.
        self._read_latency = host.counters.registry.histogram(
            "nfs.read.latency", unit="s")
        self._write_latency = host.counters.registry.histogram(
            "nfs.write.latency", unit="s")
        self._queue: Store = Store(host.sim, name="nfsd-queue")
        self._handlers = {
            NfsProc.NULL: self._do_null,
            NfsProc.GETATTR: self._do_getattr,
            NfsProc.SETATTR: self._do_setattr,
            NfsProc.LOOKUP: self._do_lookup,
            NfsProc.ACCESS: self._do_getattr,
            NfsProc.READ: self._do_read,
            NfsProc.WRITE: self._do_write,
            NfsProc.CREATE: self._do_create,
            NfsProc.REMOVE: self._do_remove,
            NfsProc.READDIR: self._do_readdir,
            NfsProc.FSSTAT: self._do_null,
            NfsProc.COMMIT: self._do_commit,
        }
        host.stack.udp_bind(port, self._enqueue)
        for i in range(n_daemons):
            start(host.sim, self._daemon_loop(), name=f"nfsd-{i}")

    # -- request intake ------------------------------------------------------

    def _enqueue(self, dgram: Datagram) -> Generator[Event, Any, None]:
        self._queue.put(dgram)
        return
        yield  # pragma: no cover - generator marker

    def _daemon_loop(self) -> Generator[Event, Any, None]:
        while True:
            dgram = yield self._queue.get()
            yield from self._handle(dgram)
            self.requests_served += 1

    # -- dispatch -------------------------------------------------------------

    def _handle(self, dgram: Datagram) -> Generator[Event, Any, None]:
        call = dgram.message
        if not isinstance(call, NfsCall):
            raise SimulationError(f"NFS server got {call!r}")
        trace: Optional[RequestTrace] = dgram.meta.get("trace")
        costs = self.host.costs
        yield from self.host.acct.compute(
            costs.daemon_wakeup_ns, "nfsd.wakeup")
        yield from self.host.acct.compute(costs.rpc_ns, "rpc.decode")
        cached = self.drc.lookup(dgram)
        if cached is not None:
            # Retransmitted request: replay the reply, never re-execute.
            reply, data, is_metadata = cached
            self.host.counters.add("nfs.drc_hit")
            yield from self._reply(dgram, reply, data=data, trace=trace,
                                   is_metadata=is_metadata, remember=False)
            return
        key = self.drc.key(dgram)
        if key in self.drc.in_progress:
            # Duplicate of a request another daemon is executing: drop it;
            # the client's next retransmission will hit the DRC.
            self.host.counters.add("nfs.drc_in_progress_drop")
            return
        self.drc.in_progress.add(key)
        try:
            yield from self._dispatch(dgram, call, trace)
        finally:
            self.drc.in_progress.discard(key)

    def _dispatch(self, dgram: Datagram, call: NfsCall,
                  trace: Optional[RequestTrace]
                  ) -> Generator[Event, Any, None]:
        costs = self.host.costs
        t0 = self.host.sim.now
        yield from self.host.acct.compute(costs.nfs_op_ns, "nfs.op")
        if call.is_metadata:
            yield from self.host.acct.compute(costs.nfs_meta_op_ns, "nfs.meta")

        if call.fh is not None and \
                self.vfs.image.is_stale(call.fh.ino, call.fh.generation):
            yield from self._reply(
                dgram, NfsReply(call.xid, call.proc, status=NFSERR_STALE),
                trace=trace)
            return

        handler = self._handlers.get(call.proc)
        if handler is None:
            raise SimulationError(f"unhandled NFS proc {call.proc}")
        yield from handler(dgram, call, trace)
        elapsed = self.host.sim.now - t0
        if call.proc is NfsProc.READ:
            self._read_latency.record(elapsed)
        elif call.proc is NfsProc.WRITE:
            self._write_latency.record(elapsed)
        bus = self.host.sim.trace
        if bus.enabled:
            bus.complete(f"nfs.{call.proc.name.lower()}", t0, cat="nfs",
                         tid=bus.tid_for(self.host.name), xid=call.xid,
                         count=call.count, client=str(dgram.src))

    def _reply(self, dgram: Datagram, reply: NfsReply,
               data: Optional[Payload] = None,
               trace: Optional[RequestTrace] = None,
               is_metadata: bool = True,
               remember: bool = True) -> Generator[Event, Any, None]:
        """Send a reply back out of the NIC the request arrived on."""
        yield from self.host.acct.compute(
            self.host.costs.rpc_ns, "rpc.encode")
        data = data if data is not None else BytesPayload(b"")
        if remember:
            self.drc.remember(dgram, reply, data, is_metadata)
        yield from self.host.stack.udp_send(
            src_ip=dgram.dst.ip, src_port=self.port, dst=dgram.src,
            message=reply, data=data,
            header=JunkPayload(reply.header_size),
            discipline=self.discipline, trace=trace,
            is_metadata=is_metadata,
            meta={"trace": trace} if trace is not None else None)

    # -- procedures ---------------------------------------------------------------

    def _do_null(self, dgram: Datagram, call: NfsCall,
                 trace: Optional[RequestTrace]) -> Generator[Event, Any, None]:
        yield from self._reply(dgram, NfsReply(call.xid, call.proc), trace=trace)

    def _do_getattr(self, dgram: Datagram, call: NfsCall,
                    trace: Optional[RequestTrace]
                    ) -> Generator[Event, Any, None]:
        inode = self.vfs.image.inode(call.fh.ino)
        yield from self.vfs.read_inode_metadata(inode.ino, trace)
        yield from self._reply(
            dgram, NfsReply(call.xid, call.proc, size=inode.size), trace=trace)

    def _do_setattr(self, dgram: Datagram, call: NfsCall,
                    trace: Optional[RequestTrace]
                    ) -> Generator[Event, Any, None]:
        inode = self.vfs.image.inode(call.fh.ino)
        if call.new_size is not None:
            if not 0 <= call.new_size <= inode.size:
                yield from self._reply(
                    dgram, NfsReply(call.xid, call.proc,
                                    status=NFSERR_INVAL), trace=trace)
                return
            yield from self.vfs.truncate(inode, call.new_size, trace)
        else:
            yield from self.vfs.read_inode_metadata(inode.ino, trace)
        yield from self._reply(
            dgram, NfsReply(call.xid, call.proc, size=inode.size),
            trace=trace)

    def _do_remove(self, dgram: Datagram, call: NfsCall,
                   trace: Optional[RequestTrace]
                   ) -> Generator[Event, Any, None]:
        try:
            inode = self.vfs.image.lookup(call.name)
        except FileNotFoundError:
            yield from self._reply(
                dgram, NfsReply(call.xid, call.proc, status=NFSERR_NOENT),
                trace=trace)
            return
        yield from self.vfs.remove(inode, trace)
        self.vfs.image.remove_file(call.name)
        yield from self._reply(dgram, NfsReply(call.xid, call.proc),
                               trace=trace)

    def _do_lookup(self, dgram: Datagram, call: NfsCall,
                   trace: Optional[RequestTrace]
                   ) -> Generator[Event, Any, None]:
        try:
            inode = self.vfs.image.lookup(call.name)
        except FileNotFoundError:
            yield from self._reply(
                dgram, NfsReply(call.xid, call.proc, status=2), trace=trace)
            return
        yield from self.vfs.read_dir_metadata(call.name, trace)
        yield from self.vfs.read_inode_metadata(inode.ino, trace)
        reply = NfsReply(call.xid, call.proc,
                         fh=FileHandle(inode.ino, inode.generation),
                         size=inode.size)
        yield from self._reply(dgram, reply, trace=trace)

    def _do_read(self, dgram: Datagram, call: NfsCall,
                 trace: Optional[RequestTrace]) -> Generator[Event, Any, None]:
        inode = self.vfs.image.inode(call.fh.ino)
        count = min(call.count, inode.size - call.offset)
        if count <= 0:
            yield from self._reply(
                dgram, NfsReply(call.xid, call.proc, status=22), trace=trace)
            return
        payload = yield from self.vfs.read(inode, call.offset, count, trace)
        reply = NfsReply(call.xid, call.proc, count=count)
        yield from self._reply(dgram, reply, data=payload, trace=trace,
                               is_metadata=False)

    def _do_write(self, dgram: Datagram, call: NfsCall,
                  trace: Optional[RequestTrace]
                  ) -> Generator[Event, Any, None]:
        inode = self.vfs.image.inode(call.fh.ino)
        data = dgram.meta.get("keyed_payload")
        if data is None:
            whole = dgram.chain.payload()
            data = whole.slice(call.header_size,
                               whole.length - call.header_size)
        if data.length != call.count:
            raise SimulationError(
                f"WRITE xid {call.xid}: payload {data.length} != "
                f"count {call.count}")
        yield from self.vfs.write(inode, call.offset, data, trace)
        yield from self._reply(
            dgram, NfsReply(call.xid, call.proc, count=call.count),
            trace=trace)

    def _do_create(self, dgram: Datagram, call: NfsCall,
                   trace: Optional[RequestTrace]
                   ) -> Generator[Event, Any, None]:
        try:
            inode = self.vfs.image.create_file(call.name, call.count)
        except ValueError:
            inode = self.vfs.image.lookup(call.name)
        yield from self.vfs.read_dir_metadata(call.name, trace)
        yield from self.vfs.read_inode_metadata(inode.ino, trace)
        reply = NfsReply(call.xid, call.proc,
                         fh=FileHandle(inode.ino, inode.generation),
                         size=inode.size)
        yield from self._reply(dgram, reply, trace=trace)

    def _do_readdir(self, dgram: Datagram, call: NfsCall,
                    trace: Optional[RequestTrace]
                    ) -> Generator[Event, Any, None]:
        yield from self.vfs.read_dir_metadata(call.name or "", trace)
        # Directory listings are metadata payload: physically copied.
        listing = JunkPayload(min(4096, 64 * max(1, len(self.vfs.image.by_name))))
        yield from self.host.acct.physical_copy(
            listing.length, "readdir", trace, is_metadata=True)
        yield from self._reply(dgram, NfsReply(call.xid, call.proc),
                               data=listing, trace=trace)

    def _do_commit(self, dgram: Datagram, call: NfsCall,
                   trace: Optional[RequestTrace]
                   ) -> Generator[Event, Any, None]:
        inode = self.vfs.image.inode(call.fh.ino)
        first = call.offset // self.vfs.block_size
        nblocks = max(1, -(-max(call.count, 1) // self.vfs.block_size))
        for b in range(first, min(first + nblocks, inode.nblocks)):
            yield from self.vfs.flush_lbn(inode.block_lbn(b), trace)
        yield from self._reply(dgram, NfsReply(call.xid, call.proc),
                               trace=trace)


class FlushDaemon:
    """bdflush/kupdated analog: periodically writes back dirty blocks."""

    def __init__(self, vfs: VFS, interval_s: float = 0.5,
                 max_blocks_per_pass: int = 64) -> None:
        self.vfs = vfs
        self.interval_s = interval_s
        self.max_blocks_per_pass = max_blocks_per_pass
        self.passes = 0
        self._stopped = False
        start(vfs.host.sim, self._loop(), name="flushd")

    def stop(self) -> None:
        self._stopped = True

    def _loop(self) -> Generator[Event, Any, None]:
        while not self._stopped:
            yield self.interval_s  # plain delay: no Event, one dispatch
            yield from self.vfs.flush_oldest(self.max_blocks_per_pass)
            self.passes += 1
