"""Observability layer: structured tracing, metrics, and exporters.

* :mod:`repro.obs.trace` — the :class:`TraceBus` (zero-overhead-when-
  disabled structured event bus), :class:`TraceSession`, and the
  Chrome-trace / JSONL exporters.
* :mod:`repro.obs.metrics` — the :class:`MetricsRegistry` of declared
  counters, gauges, and log-linear histograms.

See the "Observability" sections of README.md and DESIGN.md for the
event schema and the ``subsystem.verb.unit`` naming convention.
"""

from .metrics import Counter, Gauge, Histogram, MetricError, MetricsRegistry
from .trace import (
    TraceBus,
    TraceEvent,
    TraceSession,
    active_session,
    start_tracing,
    stop_tracing,
    tracing,
    write_chrome_trace,
    write_jsonl_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "TraceBus",
    "TraceEvent",
    "TraceSession",
    "active_session",
    "start_tracing",
    "stop_tracing",
    "tracing",
    "write_chrome_trace",
    "write_jsonl_trace",
]
