"""Declared-metric registry: counters, gauges and histograms.

This replaces the stringly-typed ``sim.counters["nfs.read.bytes"]``
access with a declared API::

    registry = MetricsRegistry()
    read_bytes = registry.counter("nfs.read.bytes", unit="bytes")
    read_bytes.add(4096)
    latency = registry.histogram("nfs.read.latency", unit="s")
    latency.record(0.0013)
    registry.snapshot()["histograms"]["nfs.read.latency"]["p95"]

Naming convention: ``subsystem.verb.unit`` (``ncache.evict``,
``copy.bytes``, ``nfs.read.latency``).  Declaring the same name twice
returns the same metric; declaring it with a different *kind* or a
conflicting *unit* is an error — the registry is the single source of
truth for what a name means.

Histograms are log-linear (HdrHistogram-style): each power-of-two range
is split into :data:`Histogram.SUBBUCKETS` linear sub-buckets, giving a
bounded relative error of ``1/SUBBUCKETS`` with O(1) deterministic
recording and no reservoir sampling.  Snapshots are available mid-run;
:meth:`MetricsRegistry.reset` is the warmup/measure boundary.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterator, Optional


class MetricError(ValueError):
    """Raised for conflicting metric declarations."""


class Counter:
    """A named monotonically increasing counter with reset snapshots."""

    __slots__ = ("name", "unit", "_total", "_mark")

    kind = "counter"

    def __init__(self, name: str, unit: str = "") -> None:
        self.name = name
        self.unit = unit
        self._total = 0.0
        self._mark = 0.0

    def add(self, amount: float = 1.0) -> None:
        """Increment by ``amount`` (defaults to 1)."""
        self._total += amount

    def reset(self) -> None:
        """Start a new measurement window; ``total`` is unaffected."""
        self._mark = self._total

    @property
    def total(self) -> float:
        """Grand total since construction."""
        return self._total

    @property
    def value(self) -> float:
        """Total since the last :meth:`reset`."""
        return self._total - self._mark

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A named point-in-time level (cache occupancy, queue depth)."""

    __slots__ = ("name", "unit", "value")

    kind = "gauge"

    def __init__(self, name: str, unit: str = "") -> None:
        self.name = name
        self.unit = unit
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = value

    def add(self, delta: float) -> None:
        """Adjust the current level by ``delta``."""
        self.value += delta

    def reset(self) -> None:
        """Gauges are levels, not rates: reset keeps the current value."""

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Log-linear histogram of non-negative samples.

    Buckets are ``(exponent, sub-bucket)`` pairs from ``math.frexp``:
    every power-of-two range carries :data:`SUBBUCKETS` equal-width
    sub-buckets, so percentile estimates have relative error bounded by
    ``1/SUBBUCKETS`` (~1.6%).  Recording is O(1), deterministic, and
    allocation-light; min/max/mean are exact.
    """

    __slots__ = ("name", "unit", "count", "total",
                 "_min", "_max", "_zeros", "_buckets")

    kind = "histogram"

    SUBBUCKETS = 64

    def __init__(self, name: str, unit: str = "") -> None:
        self.name = name
        self.unit = unit
        self.reset()

    def reset(self) -> None:
        """Clear all samples (the warmup/measure boundary)."""
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = 0.0
        self._zeros = 0
        self._buckets: Dict[tuple, int] = {}

    def record(self, value: float) -> None:
        """Record one sample; negative values are a caller bug."""
        if value < 0:
            raise ValueError(f"histogram {self.name}: negative sample {value}")
        self.count += 1
        self.total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if value == 0.0:
            self._zeros += 1
            return
        mantissa, exponent = math.frexp(value)
        sub = int((mantissa - 0.5) * (2 * self.SUBBUCKETS))
        key = (exponent, sub)
        self._buckets[key] = self._buckets.get(key, 0) + 1

    # -- statistics ----------------------------------------------------------

    @property
    def mean(self) -> float:
        """Exact arithmetic mean of all samples (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        """Exact smallest sample (0 when empty)."""
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        """Exact largest sample (0 when empty)."""
        return self._max

    def percentile(self, fraction: float) -> float:
        """Estimate the ``fraction`` percentile (0.95 → p95).

        Exact for the zero bucket and at the extremes; elsewhere the
        bucket midpoint, clamped into the observed [min, max] range.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction {fraction} outside [0, 1]")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(fraction * self.count))
        cum = self._zeros
        if cum >= rank:
            return 0.0
        for key in sorted(self._buckets):
            cum += self._buckets[key]
            if cum >= rank:
                exponent, sub = key
                mid = math.ldexp(
                    0.5 + (sub + 0.5) / (2 * self.SUBBUCKETS), exponent)
                return min(max(mid, self.min), self._max)
        return self._max

    @property
    def p50(self) -> float:
        """Median estimate."""
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        """95th percentile estimate."""
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        """99th percentile estimate."""
        return self.percentile(0.99)

    def summary(self) -> Dict[str, Any]:
        """Snapshot dict (count, mean, min/max, p50/p95/p99, unit)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "unit": self.unit,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, p50={self.p50:.4g})"


class MetricsRegistry:
    """One namespace of declared metrics, snapshot-able mid-run."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    # -- declaration (declare-or-get) ----------------------------------------

    def _declare(self, cls: type, name: str, unit: str) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name, unit)
            return metric
        if metric.__class__ is not cls:
            raise MetricError(
                f"{name!r} already declared as a {metric.kind}, "
                f"not a {cls.kind}")
        if unit:
            if metric.unit and metric.unit != unit:
                raise MetricError(
                    f"{name!r} declared with unit {metric.unit!r}, "
                    f"redeclared with {unit!r}")
            metric.unit = unit
        return metric

    def counter(self, name: str, unit: str = "") -> Counter:
        """Declare-or-get a counter."""
        metric = self._metrics.get(name)
        if metric is not None and metric.__class__ is Counter and not unit:
            return metric  # hot path: no validation work on re-access
        return self._declare(Counter, name, unit)

    def gauge(self, name: str, unit: str = "") -> Gauge:
        """Declare-or-get a gauge."""
        metric = self._metrics.get(name)
        if metric is not None and metric.__class__ is Gauge and not unit:
            return metric
        return self._declare(Gauge, name, unit)

    def histogram(self, name: str, unit: str = "") -> Histogram:
        """Declare-or-get a histogram."""
        metric = self._metrics.get(name)
        if metric is not None and metric.__class__ is Histogram and not unit:
            return metric
        return self._declare(Histogram, name, unit)

    # -- inspection ----------------------------------------------------------

    def get(self, name: str) -> Optional[Any]:
        """The metric registered under ``name``, or None."""
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def counters(self) -> Iterator[Counter]:
        """All declared counters (no particular order)."""
        return (m for m in self._metrics.values()
                if m.__class__ is Counter)

    def histograms(self) -> Iterator[Histogram]:
        """All declared histograms (no particular order)."""
        return (m for m in self._metrics.values()
                if m.__class__ is Histogram)

    def gauges(self) -> Iterator[Gauge]:
        """All declared gauges (no particular order)."""
        return (m for m in self._metrics.values()
                if m.__class__ is Gauge)

    # -- lifecycle -----------------------------------------------------------

    def reset(self) -> None:
        """Warmup/measure boundary: counters re-mark, histograms clear,
        gauges (being levels) keep their current value."""
        for metric in self._metrics.values():
            metric.reset()

    def snapshot(self) -> Dict[str, Any]:
        """Machine-readable snapshot of every declared metric."""
        return {
            "counters": {c.name: c.value
                         for c in sorted(self.counters(),
                                         key=lambda m: m.name)},
            "gauges": {g.name: g.value
                       for g in sorted(self.gauges(), key=lambda m: m.name)},
            "histograms": {h.name: h.summary()
                           for h in sorted(self.histograms(),
                                           key=lambda m: m.name)},
        }
