"""Structured event tracing: the :class:`TraceBus` and its exporters.

The bus is the observability seam every subsystem emits into: the sim
engine's event dispatch, the network stack's packet paths, the NCache
module (hits / misses / remaps / evictions), the file-system buffer
cache, and the NFS/kHTTPd request handlers.  Design rules:

* **zero overhead when disabled** — every emit site guards on
  ``bus.enabled`` (a plain attribute), and :meth:`TraceBus.emit` itself
  returns before touching the clock or building an event, so a disabled
  bus costs one attribute load and a branch;
* **deterministic** — events are appended in execution order; replaying
  the same simulation yields byte-identical traces;
* **schema'd** — every event has ``name`` (``subsystem.verb``), ``cat``
  (subsystem), ``ph`` (Chrome phase: ``i`` instant, ``X`` complete),
  ``ts`` (simulated seconds), optional ``dur``, and free-form ``args``.

Exporters write Chrome-trace-format JSON (loadable in ``chrome://tracing``
or https://ui.perfetto.dev) and plain JSONL (one event object per line).
A :class:`TraceSession` collects the buses of every simulator built while
it is active, so one CLI flag can trace a whole experiment sweep: each
testbed becomes a Chrome "process", each host a "thread".
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Optional

#: Chrome trace phases used by this library.
PHASE_INSTANT = "i"
PHASE_COMPLETE = "X"

_KNOWN_PHASES = (PHASE_INSTANT, PHASE_COMPLETE)


class TraceEvent:
    """One structured trace event (timestamps in simulated seconds)."""

    __slots__ = ("name", "cat", "ph", "ts", "dur", "tid", "args")

    def __init__(self, name: str, cat: str, ph: str, ts: float,
                 dur: Optional[float], tid: int,
                 args: Dict[str, Any]) -> None:
        self.name = name
        self.cat = cat
        self.ph = ph
        self.ts = ts
        self.dur = dur
        self.tid = tid
        self.args = args

    def to_chrome(self, pid: int) -> Dict[str, Any]:
        """Chrome-trace event object (timestamps in microseconds)."""
        out: Dict[str, Any] = {
            "name": self.name, "cat": self.cat, "ph": self.ph,
            "ts": self.ts * 1e6, "pid": pid, "tid": self.tid,
        }
        if self.dur is not None:
            out["dur"] = self.dur * 1e6
        if self.args:
            out["args"] = self.args
        return out

    def to_jsonl(self, pid: int) -> Dict[str, Any]:
        """Plain JSON object (timestamps in simulated seconds)."""
        out: Dict[str, Any] = {
            "name": self.name, "cat": self.cat, "ph": self.ph,
            "t": self.ts, "pid": pid, "tid": self.tid,
        }
        if self.dur is not None:
            out["dur"] = self.dur
        if self.args:
            out["args"] = self.args
        return out

    def __repr__(self) -> str:
        return (f"TraceEvent({self.name!r}, t={self.ts:.9f}, "
                f"ph={self.ph!r}, args={self.args!r})")


class TraceBus:
    """Per-simulator event sink, disabled (and nearly free) by default.

    ``clock`` is anything with a ``now`` attribute in simulated seconds —
    in practice the :class:`~repro.sim.engine.Simulator` that owns the
    bus.  ``engine_events`` additionally traces every engine dispatch
    (very high volume; off unless explicitly requested).
    """

    __slots__ = ("clock", "pid", "process_name", "enabled", "engine_events",
                 "events", "_tids")

    def __init__(self, clock: Any = None, pid: int = 1,
                 process_name: str = "sim") -> None:
        self.clock = clock
        self.pid = pid
        self.process_name = process_name
        self.enabled = False
        self.engine_events = False
        self.events: List[TraceEvent] = []
        self._tids: Dict[str, int] = {}

    # -- lifecycle -----------------------------------------------------------

    def enable(self, engine_events: bool = False) -> "TraceBus":
        """Start recording; returns self for chaining."""
        self.enabled = True
        self.engine_events = engine_events
        return self

    def disable(self) -> None:
        """Stop recording (events already captured are kept)."""
        self.enabled = False
        self.engine_events = False

    def clear(self) -> None:
        """Drop all captured events."""
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    # -- emission ------------------------------------------------------------

    def emit(self, name: str, cat: str = "sim", ph: str = PHASE_INSTANT,
             dur: Optional[float] = None, tid: int = 0,
             t: Optional[float] = None, **args: Any) -> None:
        """Record one event; a no-op (before any work) when disabled."""
        if not self.enabled:
            return
        if t is None:
            t = self.clock.now if self.clock is not None else 0.0
        self.events.append(TraceEvent(name, cat, ph, t, dur, tid, args))

    def complete(self, name: str, start_t: float, cat: str = "sim",
                 tid: int = 0, **args: Any) -> None:
        """Record a span that started at ``start_t`` and ends now."""
        if not self.enabled:
            return
        now = self.clock.now if self.clock is not None else start_t
        self.events.append(TraceEvent(name, cat, PHASE_COMPLETE, start_t,
                                      now - start_t, tid, args))

    def tid_for(self, thread_name: str) -> int:
        """Stable small integer for a logical thread (e.g. a host)."""
        tid = self._tids.get(thread_name)
        if tid is None:
            tid = self._tids[thread_name] = len(self._tids) + 1
        return tid

    # -- export --------------------------------------------------------------

    def chrome_events(self) -> List[Dict[str, Any]]:
        """This bus's events plus process/thread metadata, Chrome format."""
        out: List[Dict[str, Any]] = [{
            "name": "process_name", "ph": "M", "pid": self.pid, "tid": 0,
            "args": {"name": self.process_name},
        }]
        for tname, tid in sorted(self._tids.items(), key=lambda kv: kv[1]):
            out.append({"name": "thread_name", "ph": "M", "pid": self.pid,
                        "tid": tid, "args": {"name": tname}})
        out.extend(ev.to_chrome(self.pid) for ev in self.events)
        return out

    def jsonl_events(self) -> List[Dict[str, Any]]:
        """This bus's events as plain JSON objects."""
        return [ev.to_jsonl(self.pid) for ev in self.events]


def write_chrome_trace(path: Any, buses: Iterable[TraceBus]) -> None:
    """Write a ``chrome://tracing`` / Perfetto-loadable JSON file."""
    events: List[Dict[str, Any]] = []
    for bus in buses:
        events.extend(bus.chrome_events())
    document = {"traceEvents": events, "displayTimeUnit": "ms"}
    with open(path, "w") as fh:
        json.dump(document, fh)


def write_jsonl_trace(path: Any, buses: Iterable[TraceBus]) -> None:
    """Write one JSON event object per line (grep/jq-friendly)."""
    with open(path, "w") as fh:
        for bus in buses:
            for obj in bus.jsonl_events():
                fh.write(json.dumps(obj))
                fh.write("\n")


class TraceSession:
    """Collects every :class:`TraceBus` created while the session is active.

    :class:`~repro.sim.engine.Simulator` registers its bus with the
    active session at construction, so tracing a whole experiment sweep
    is one ``with tracing():`` block (or the ``--trace-out`` CLI flag)
    with no per-testbed plumbing.
    """

    def __init__(self, engine_events: bool = False) -> None:
        self.engine_events = engine_events
        self.buses: List[TraceBus] = []

    def adopt(self, bus: TraceBus) -> None:
        """Enable ``bus`` and give it a distinct Chrome pid."""
        bus.pid = len(self.buses) + 1
        bus.enable(engine_events=self.engine_events)
        self.buses.append(bus)

    def n_events(self) -> int:
        """Total events captured across all adopted buses."""
        return sum(len(bus) for bus in self.buses)

    def write_chrome(self, path: Any) -> None:
        """Export every adopted bus into one Chrome-trace JSON file."""
        write_chrome_trace(path, self.buses)

    def write_jsonl(self, path: Any) -> None:
        """Export every adopted bus as JSONL."""
        write_jsonl_trace(path, self.buses)


_active_session: Optional[TraceSession] = None


def active_session() -> Optional[TraceSession]:
    """The session new simulators should register with, if any."""
    return _active_session


def start_tracing(engine_events: bool = False) -> TraceSession:
    """Begin a global trace session (idempotent per start/stop pair)."""
    global _active_session
    if _active_session is not None:
        raise RuntimeError("a trace session is already active")
    _active_session = TraceSession(engine_events=engine_events)
    return _active_session


def stop_tracing() -> Optional[TraceSession]:
    """End the active session and return it (None if none active)."""
    global _active_session
    session, _active_session = _active_session, None
    return session


@contextmanager
def tracing(engine_events: bool = False) -> Iterator[TraceSession]:
    """``with tracing() as session:`` — scoped global trace session."""
    session = start_tracing(engine_events=engine_events)
    try:
        yield session
    finally:
        stop_tracing()
