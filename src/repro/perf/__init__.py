"""Performance-regression harness for the experiment suite.

``python -m repro.perf`` runs the quick-mode experiment grid, records
per-experiment wall-clock, simulated-event throughput and peak RSS into
``benchmarks/results/BENCH_<date>.json``, and (with ``--check``)
compares the run against the most recent committed baseline with a
tolerance band.  See :mod:`repro.perf.harness` for the mechanics.
"""

from .harness import (
    DEFAULT_RSS_TOLERANCE,
    DEFAULT_TOLERANCE,
    SCHEMA_VERSION,
    compare,
    latest_baseline,
    load_baseline,
    peak_rss_kb,
    run_grid,
    write_record,
)

__all__ = [
    "DEFAULT_RSS_TOLERANCE",
    "DEFAULT_TOLERANCE",
    "SCHEMA_VERSION",
    "compare",
    "latest_baseline",
    "load_baseline",
    "peak_rss_kb",
    "run_grid",
    "write_record",
]
