"""Run the perf harness from the command line.

Usage::

    python -m repro.perf                       # run + record all, quick
    python -m repro.perf figure4 figure6b      # a subset
    python -m repro.perf --workers 4           # fan grid points out
    python -m repro.perf --check               # fail on >20% regression
    python -m repro.perf --check --tolerance 0.5
    python -m repro.perf --no-record --check   # CI: compare only
    python -m repro.perf --engine              # grid + engine microbench
    python -m repro.perf --engine --no-grid --check --no-record
                                               # CI engine smoke job

``--check`` compares against the newest committed ``BENCH_*.json`` of
matching schema/mode (ignoring the record this run just wrote) and
exits non-zero if any experiment's wall-clock regressed beyond the
tolerance band.  With ``--engine`` the scheduler microbench kernels
run too (recorded under the ``"engine"`` key) and ``--check``
additionally fails on an events/sec drop beyond the tolerance;
baselines predating the engine bench compare on wall/RSS only.
"""

from __future__ import annotations

import argparse
import sys
from datetime import date
from pathlib import Path

from .enginebench import run_engine_bench
from .harness import (DEFAULT_RSS_TOLERANCE, DEFAULT_TOLERANCE, GRID,
                      compare, compare_engine, latest_baseline, run_grid,
                      write_record)

RESULTS_DIR = (Path(__file__).resolve().parents[3]
               / "benchmarks" / "results")


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Record/check experiment-suite performance.")
    parser.add_argument("experiments", nargs="*", choices=[*GRID, []],
                        help="subset to run (default: all)")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale windows instead of quick mode")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="process-pool size for grid points")
    parser.add_argument("--check", action="store_true",
                        help="compare against the latest baseline and "
                             "fail on regression")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE, metavar="FRAC",
                        help="allowed fractional wall-clock growth "
                             "(default: %(default)s)")
    parser.add_argument("--rss-tolerance", type=float,
                        default=DEFAULT_RSS_TOLERANCE, metavar="FRAC",
                        help="allowed fractional peak-RSS growth "
                             "(default: %(default)s); entries with a "
                             "null RSS on either side are skipped")
    parser.add_argument("--engine", action="store_true",
                        help="also run the scheduler microbench kernels")
    parser.add_argument("--no-grid", action="store_true",
                        help="skip the experiment grid (with --engine: "
                             "engine kernels only — the CI smoke job)")
    parser.add_argument("--no-record", action="store_true",
                        help="do not write a BENCH_<date>.json record")
    parser.add_argument("--results-dir", type=Path, default=RESULTS_DIR,
                        help="where BENCH records are written "
                             "(default: benchmarks/results)")
    parser.add_argument("--baseline-dir", type=Path, default=None,
                        help="where --check looks for baselines "
                             "(default: --results-dir)")
    args = parser.parse_args(argv)

    if args.no_grid and not args.engine:
        parser.error("--no-grid without --engine runs nothing")
    if args.no_grid and args.experiments:
        parser.error("--no-grid contradicts naming experiments")

    quick = not args.full
    entries = [] if args.no_grid else run_grid(
        args.experiments or None, quick=quick, workers=args.workers)
    for e in entries:
        rss = (f"{e['peak_rss_kb']} KB" if e["peak_rss_kb"] is not None
               else "n/a")
        print(f"{e['name']:<10} {e['wall_s']:>8.3f}s "
              f"{e['sim_events']:>10d} ev "
              f"{e['events_per_sec']:>9d} ev/s "
              f"rss {rss}")

    engine_entries = []
    if args.engine:
        engine_entries = run_engine_bench()
        for e in engine_entries:
            speedup = (f"  x{e['speedup_vs_legacy']} vs legacy"
                       if "speedup_vs_legacy" in e else "")
            print(f"engine:{e['name']:<19} {e['wall_s']:>8.3f}s "
                  f"{e['events_per_sec']:>9d} ev/s "
                  f"{e['ops_per_sec']:>9d} op/s "
                  f"[{e['scheduler']}]{speedup}")

    written = None
    if not args.no_record:
        written = write_record(entries, args.results_dir,
                               date.today().isoformat(), quick=quick,
                               workers=args.workers,
                               engine=engine_entries or None)
        print(f"recorded: {written}")

    if not args.check:
        return 0
    baseline_dir = args.baseline_dir or args.results_dir
    found = latest_baseline(baseline_dir, quick=quick, exclude=written)
    if found is None:
        print("perf: no comparable baseline found; nothing to check",
              file=sys.stderr)
        return 0
    base_path, baseline = found
    print(f"baseline: {base_path.name} (workers={baseline.get('workers')})")
    failed = False
    for v in compare(entries, baseline, args.tolerance,
                     rss_tolerance=args.rss_tolerance):
        if v["status"] == "new":
            print(f"{v['name']:<10} NEW    {v['wall_s']:>8.3f}s")
            continue
        flag = " [sim drift]" if v["drift"] else ""
        rss = (f" rss x{v['rss_ratio']}" if v["rss_ratio"] is not None
               else " rss n/a")
        print(f"{v['name']:<10} {v['status'].upper():<6} "
              f"{v['wall_s']:>8.3f}s vs {v['baseline_wall_s']:>8.3f}s "
              f"(x{v['ratio']}){rss}{flag}")
        failed = failed or v["status"] == "fail"
    if engine_entries:
        if "engine" not in baseline:
            print(f"perf: baseline {base_path.name} predates the engine "
                  f"bench; engine kernels not compared")
        for v in compare_engine(engine_entries, baseline, args.tolerance):
            if v["status"] == "new":
                print(f"engine:{v['name']:<19} NEW    "
                      f"{v['events_per_sec']:>9d} ev/s")
                continue
            print(f"engine:{v['name']:<19} {v['status'].upper():<6} "
                  f"{v['events_per_sec']:>9d} ev/s vs "
                  f"{v['baseline_events_per_sec']:>9d} ev/s (x{v['ratio']})")
            failed = failed or v["status"] == "fail"
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
