"""Engine microbenchmarks: raw scheduler throughput, no model code.

Three kernels, each shaped after a hot pattern profiles found in the
experiment grid:

``timer_storm``
    The RPC RTO pattern: a fixed population of in-flight ops, each
    arming a cancellable timer whose "reply" lands long before the RTO
    fires, so the timer is cancelled (the common case — in the quick
    grid roughly a third of all dispatches used to be dead RTO
    timeouts).  The recorded ``speedup_vs_legacy`` compares ops/sec
    against ``timer_storm_legacy``.

``timer_storm_legacy``
    The same workload in the pre-cancellation idiom on the heap
    backend: the RTO is a plain scheduled callback that stays in the
    schedule until its fire time and is lazily discarded — dead
    entries churn the heap and burn a dispatch each.

``packet_train``
    Same-timestamp fan-in: bursts of callbacks landing on one
    timestamp, the shape a batched packet train hands the engine.
    Exercises the calendar's per-bucket FIFO drain.

``churn_mix``
    Mixed horizons: delays spread over five orders of magnitude with a
    rolling cancellation pattern, the shape of fleet churn (leases,
    retries, and long rejoin timers interleaved).  Exercises bucket
    refill/overflow and far-list partitioning.

Each kernel reports wall-clock, engine dispatches, ``events_per_sec``
(dispatches per wall second — the engine-throughput number the CI gate
watches), and ``ops_per_sec`` (completed logical operations).  Wall
clock use is the point; this module lives under the
``WALLCLOCK_ALLOWED_PATHS`` exemption like the rest of ``repro.perf``.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..sim.engine import AnyOf, Simulator, dispatch_count


def _measure(build: Callable[[Optional[str]], Tuple[Simulator, int]],
             scheduler: Optional[str]) -> Dict[str, Any]:
    """Run one kernel and fold the measurements into an entry dict."""
    sim, n_ops = build(scheduler)
    before = dispatch_count()
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    dispatches = dispatch_count() - before
    return {
        "wall_s": round(wall, 3),
        "sim_events": dispatches,
        "events_per_sec": int(dispatches / wall) if wall > 0 else 0,
        "ops": n_ops,
        "ops_per_sec": int(n_ops / wall) if wall > 0 else 0,
        "scheduler": sim.scheduler,
    }


# ---------------------------------------------------------------------------
# timer_storm
# ---------------------------------------------------------------------------

#: In-flight op population and op count for the storm kernels.  The RTO
#: is 100x the reply delay, so the legacy variant carries ~100 dead
#: timers per live op — the steady state the NFS client used to impose.
_STORM_OPS = 150_000
_STORM_FANOUT = 1_000
_STORM_REPLY_S = 50e-6
_STORM_RTO_S = 5e-3


def _build_timer_storm(scheduler: Optional[str]) -> Tuple[Simulator, int]:
    sim = Simulator(scheduler)
    remaining = [_STORM_OPS]

    def op() -> None:
        timer = sim.call_later(_STORM_RTO_S, on_rto)
        sim.schedule(_STORM_REPLY_S, on_reply, timer)

    def on_reply(timer: Any) -> None:
        timer.cancel()
        remaining[0] -= 1
        if remaining[0] >= _STORM_FANOUT:
            op()

    def on_rto() -> None:  # pragma: no cover - replies always win
        raise AssertionError("RTO fired in timer_storm")

    for _ in range(_STORM_FANOUT):
        op()
    return sim, _STORM_OPS


def _build_timer_storm_legacy(scheduler: Optional[str]
                              ) -> Tuple[Simulator, int]:
    # The pre-PR idiom, faithfully: a waiter Event raced against a
    # ``sim.timeout(rto)`` Event through AnyOf on the heap backend.
    # The timeout cannot be removed, so every op leaves a dead entry
    # churning the heap until its fire time and pays the timeout's
    # dispatch plus the dead AnyOf bookkeeping — exactly what the NFS
    # client and peer-cache RTOs used to cost.
    sim = Simulator(scheduler or "heap")
    remaining = [_STORM_OPS]

    def op() -> None:
        waiter = sim.event()
        race = AnyOf(sim, [waiter, sim.timeout(_STORM_RTO_S)])
        race.add_callback(on_settle)
        sim.schedule(_STORM_REPLY_S, waiter.succeed)

    def on_settle(race: Any) -> None:
        which, _value = race.value
        if which != 0:  # pragma: no cover - replies always win
            raise AssertionError("RTO fired in timer_storm_legacy")
        remaining[0] -= 1
        if remaining[0] >= _STORM_FANOUT:
            op()

    for _ in range(_STORM_FANOUT):
        op()
    return sim, _STORM_OPS


# ---------------------------------------------------------------------------
# packet_train
# ---------------------------------------------------------------------------

_TRAIN_COUNT = 40_000
_TRAIN_FRAMES = 16
_TRAIN_GAP_S = 10e-6


def _build_packet_train(scheduler: Optional[str]) -> Tuple[Simulator, int]:
    sim = Simulator(scheduler)
    remaining = [_TRAIN_COUNT]
    arrived = [0]

    def train() -> None:
        # All frames of a train land on the same timestamp — the
        # same-time FIFO case the seq tie-break exists for.
        for _ in range(_TRAIN_FRAMES):
            sim.schedule(_TRAIN_GAP_S, frame)

    def frame() -> None:
        arrived[0] += 1
        if arrived[0] == _TRAIN_FRAMES:
            arrived[0] = 0
            remaining[0] -= 1
            if remaining[0] > 0:
                train()

    train()
    return sim, _TRAIN_COUNT


# ---------------------------------------------------------------------------
# churn_mix
# ---------------------------------------------------------------------------

_CHURN_OPS = 120_000
_CHURN_FANOUT = 512
#: Delay ladder spanning short retries to long rejoin timers; chosen to
#: straddle any bucket width the calendar adapts to, forcing far-list
#: overflow and refills.
_CHURN_DELAYS = (20e-6, 300e-6, 4e-3, 70e-3, 1.1)


def _build_churn_mix(scheduler: Optional[str]) -> Tuple[Simulator, int]:
    sim = Simulator(scheduler)
    remaining = [_CHURN_OPS]
    step = [0]

    def op() -> None:
        i = step[0] = step[0] + 1
        delay = _CHURN_DELAYS[i % len(_CHURN_DELAYS)]
        if i % 3 == 0:
            # A lease-style timer cancelled two delays later.
            timer = sim.call_later(delay * 2, on_lease_expire)
            sim.schedule(delay, on_done_cancel, timer)
        else:
            sim.schedule(delay, on_done)

    def on_done() -> None:
        remaining[0] -= 1
        if remaining[0] >= _CHURN_FANOUT:
            op()

    def on_done_cancel(timer: Any) -> None:
        timer.cancel()
        on_done()

    def on_lease_expire() -> None:  # pragma: no cover - always cancelled
        raise AssertionError("lease timer fired in churn_mix")

    for _ in range(_CHURN_FANOUT):
        op()
    return sim, _CHURN_OPS


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

_Builder = Callable[[Optional[str]], Tuple[Simulator, int]]

ENGINE_KERNELS: Dict[str, _Builder] = {
    "timer_storm": _build_timer_storm,
    "timer_storm_legacy": _build_timer_storm_legacy,
    "packet_train": _build_packet_train,
    "churn_mix": _build_churn_mix,
}


def run_engine_bench(names: Optional[Sequence[str]] = None,
                     scheduler: Optional[str] = None
                     ) -> List[Dict[str, Any]]:
    """Run the named kernels (default: all) and measure each.

    When both storm variants run, the ``timer_storm`` entry gains
    ``speedup_vs_legacy``: its ops/sec over the legacy idiom's — the
    headline number for the cancellable-timer + calendar-queue work.
    """
    chosen = list(ENGINE_KERNELS) if not names else list(names)
    unknown = [n for n in chosen if n not in ENGINE_KERNELS]
    if unknown:
        raise KeyError(f"unknown engine kernels: {unknown} "
                       f"(choose from {list(ENGINE_KERNELS)})")
    entries: List[Dict[str, Any]] = []
    for name in chosen:
        entry = _measure(ENGINE_KERNELS[name], scheduler)
        entry["name"] = name
        entries.append(entry)
    by_name = {e["name"]: e for e in entries}
    storm = by_name.get("timer_storm")
    legacy = by_name.get("timer_storm_legacy")
    if storm and legacy and legacy["ops_per_sec"] > 0:
        storm["speedup_vs_legacy"] = round(
            storm["ops_per_sec"] / legacy["ops_per_sec"], 2)
    return entries
