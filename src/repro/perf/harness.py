"""Record and compare experiment-suite performance.

The harness runs each experiment's sweep through the same ``run()``
entry points the CLI uses (so ``--workers`` fan-out is exercised), and
folds the per-point ``{label, wall_s, sim_events}`` stats emitted by
:func:`repro.experiments.parallel.drain` into one record per
experiment::

    {"name": "figure4", "wall_s": 9.92, "sim_events": 1203456,
     "events_per_sec": 121300, "points": 12, "peak_rss_kb": 84212,
     "mode": "quick", "workers": 1, "seeds": {...}}

Records land in ``benchmarks/results/BENCH_<date>.json`` next to the
rendered tables.  The comparator loads the *latest* baseline whose
schema version and mode match (stale or foreign files in the results
directory are skipped, not trusted) and flags any experiment whose
wall-clock regressed beyond the tolerance band.  ``sim_events`` is a
pure function of the simulation, so a mismatch there is reported as a
determinism warning — it means the model changed and the wall-clock
comparison is apples-to-oranges.

Wall-clock use is the point of this module; it is allow-listed in
:data:`repro.check.vocabulary.WALLCLOCK_ALLOWED_PATHS`.
"""

from __future__ import annotations

import inspect
import json
import sys
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..experiments import (ablations, adaptive_budget, figure4, figure5,
                           figure6, figure7, fleet_churn, fleet_scaling,
                           policy_ablation, table1, table2)
from ..sim import engine as _engine

#: Bump when entry fields change incompatibly; the comparator refuses to
#: compare across schema versions.
SCHEMA_VERSION = 1

#: Default regression tolerance: wall-clock may grow by this fraction
#: over the baseline before the check fails.
DEFAULT_TOLERANCE = 0.20

#: Entries whose baseline wall-clock is below this are sanity checks,
#: not measurements — a 15 ms experiment doubles on scheduler noise
#: alone, so the comparator never fails them on ratio.
MIN_COMPARABLE_WALL_S = 0.5

_Runner = Callable[[bool, int, List[Dict[str, Any]]], Any]

#: name -> runner(quick, workers, stats).  ``table1`` is a closed-form
#: calculation with no grid, so it takes no workers/stats.
GRID: Dict[str, _Runner] = {
    "table1": lambda quick, workers, stats: table1.run(quick),
    "table2": lambda quick, workers, stats:
        table2.run(quick, workers, stats=stats),
    "figure4": lambda quick, workers, stats:
        figure4.run(quick, workers, stats=stats),
    "figure5": lambda quick, workers, stats:
        figure5.run(quick, workers, stats=stats),
    "figure6a": lambda quick, workers, stats:
        figure6.run_working_set(quick, workers, stats=stats),
    "figure6b": lambda quick, workers, stats:
        figure6.run_allhit(quick, workers, stats=stats),
    "figure7": lambda quick, workers, stats:
        figure7.run(quick, workers, stats=stats),
    "fleet_scaling": lambda quick, workers, stats:
        fleet_scaling.run(quick, workers, stats=stats),
    "fleet_churn": lambda quick, workers, stats:
        fleet_churn.run(quick, workers, stats=stats),
    "adaptive_budget": lambda quick, workers, stats:
        adaptive_budget.run(quick, workers, stats=stats),
    "ablations": lambda quick, workers, stats:
        ablations.run(quick, workers, stats=stats),
    "policy_ablation": lambda quick, workers, stats:
        policy_ablation.run(quick, workers, stats=stats),
}


def workload_seeds() -> Dict[str, int]:
    """The default RNG seed of every workload generator, by inspection.

    Stamped into each record so a baseline is only trusted when the
    stochastic inputs that produced it are unchanged.
    """
    from ..workloads.fleetzipf import FleetZipfWorkload
    from ..workloads.microbench import AllHitReadWorkload, \
        SequentialReadWorkload
    from ..workloads.specsfs import SpecSfsWorkload
    from ..workloads.specweb import AllHitWebWorkload, SpecWebWorkload
    out: Dict[str, int] = {}
    for cls in (SequentialReadWorkload, AllHitReadWorkload, SpecSfsWorkload,
                SpecWebWorkload, AllHitWebWorkload, FleetZipfWorkload):
        param = inspect.signature(cls.__init__).parameters.get("seed")
        if param is not None:  # fully deterministic workloads have no seed
            out[cls.__name__] = int(param.default)
    return out


def peak_rss_kb() -> Optional[int]:
    """Peak resident set size in KB, or ``None`` where unmeasurable.

    ``ru_maxrss`` is kilobytes on Linux but *bytes* on macOS (normalized
    here), and ``resource`` does not exist on Windows; a record from such
    a platform carries ``null`` and the comparator skips the RSS check
    for it rather than comparing garbage.  ``RUSAGE_CHILDREN`` covers
    reaped ``ProcessPoolExecutor`` workers, so parallel runs report the
    largest footprint any process reached.
    """
    try:
        import resource
    except ImportError:
        return None
    try:
        own = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        children = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    except (OSError, ValueError):
        return None
    peak = int(max(own, children))
    if sys.platform == "darwin":
        peak //= 1024
    return peak if peak > 0 else None


def run_grid(names: Optional[Sequence[str]] = None, quick: bool = True,
             workers: int = 1) -> List[Dict[str, Any]]:
    """Run the named experiments (default: all) and measure each one.

    Returns one entry dict per experiment, in registry order.  Per-point
    ``sim_events`` comes from the stats sink when the sweep supports it
    (pool workers dispatch in their own process, so the parent's
    dispatch counter alone would undercount); experiments without a
    stats sink fall back to the parent's counter delta.
    """
    chosen = list(GRID) if not names else list(names)
    unknown = [n for n in chosen if n not in GRID]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown} "
                       f"(choose from {list(GRID)})")
    seeds = workload_seeds()
    entries: List[Dict[str, Any]] = []
    for name in chosen:
        stats: List[Dict[str, Any]] = []
        before = _engine.dispatch_count()
        t0 = time.perf_counter()
        GRID[name](quick, workers, stats)
        wall = time.perf_counter() - t0
        sim_events = (sum(s["sim_events"] for s in stats) if stats
                      else _engine.dispatch_count() - before)
        entries.append({
            "name": name,
            "wall_s": round(wall, 3),
            "sim_events": sim_events,
            "events_per_sec": int(sim_events / wall) if wall > 0 else 0,
            "points": len(stats),
            "peak_rss_kb": peak_rss_kb(),
            "mode": "quick" if quick else "full",
            "workers": workers,
            "seeds": seeds,
        })
    return entries


def write_record(entries: Sequence[Dict[str, Any]], results_dir: Path,
                 date_stamp: str, quick: bool = True,
                 workers: int = 1,
                 engine: Optional[Sequence[Dict[str, Any]]] = None) -> Path:
    """Write ``BENCH_<date>.json``; same-day reruns overwrite.

    ``date_stamp`` is passed in (``YYYY-MM-DD``) rather than read here
    so callers — and tests — control the filename.  ``engine`` entries
    (from :mod:`repro.perf.enginebench`) land under a separate
    ``"engine"`` key — an *optional* field: records written before the
    engine bench existed simply lack it, and the comparator treats
    that as "nothing to compare", not an error.
    """
    results_dir.mkdir(parents=True, exist_ok=True)
    path = results_dir / f"BENCH_{date_stamp}.json"
    record = {
        "schema_version": SCHEMA_VERSION,
        "mode": "quick" if quick else "full",
        "workers": workers,
        "recorded": date_stamp,
        "entries": list(entries),
    }
    if engine:
        record["engine"] = list(engine)
    path.write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")
    return path


def load_baseline(path: Path) -> Optional[Dict[str, Any]]:
    """Parse one BENCH file; ``None`` if unreadable or wrong shape."""
    try:
        record = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(record, dict) or "entries" not in record:
        return None
    return record


def latest_baseline(results_dir: Path, quick: bool = True,
                    exclude: Optional[Path] = None
                    ) -> Optional[Tuple[Path, Dict[str, Any]]]:
    """The newest comparable ``BENCH_*.json`` under ``results_dir``.

    "Comparable" means: parses, carries the current schema version and
    the requested mode.  Anything else in the directory — corrupt
    files, old schemas, full-mode records when checking quick mode — is
    skipped rather than compared against.  ``exclude`` omits the record
    the caller just wrote.
    """
    mode = "quick" if quick else "full"
    skip = exclude.resolve() if exclude is not None else None
    for path in sorted(results_dir.glob("BENCH_*.json"), reverse=True):
        if skip is not None and path.resolve() == skip:
            continue
        record = load_baseline(path)
        if record is None:
            continue
        if record.get("schema_version") != SCHEMA_VERSION:
            continue
        if record.get("mode") != mode:
            continue
        return path, record
    return None


#: Default peak-RSS regression tolerance (fractional growth over the
#: baseline before the check fails).
DEFAULT_RSS_TOLERANCE = 0.25


def compare(current: Sequence[Dict[str, Any]], baseline: Dict[str, Any],
            tolerance: float = DEFAULT_TOLERANCE,
            rss_tolerance: float = DEFAULT_RSS_TOLERANCE
            ) -> List[Dict[str, Any]]:
    """Verdict per current entry against the baseline record.

    Each verdict carries ``status``: ``ok``, ``fail`` (wall-clock grew
    beyond ``tolerance`` — never for entries whose baseline is under
    :data:`MIN_COMPARABLE_WALL_S` — or peak RSS grew beyond
    ``rss_tolerance``), ``new`` (no baseline entry), plus a ``drift``
    flag when ``sim_events`` changed — the simulation itself is
    different, so treat the wall-clock delta with suspicion.  The RSS
    check is skipped (``rss_ratio`` is ``None``) when either side
    recorded ``null`` — platforms where :func:`peak_rss_kb` cannot
    measure.
    """
    by_name = {e["name"]: e for e in baseline.get("entries", [])}
    verdicts: List[Dict[str, Any]] = []
    for entry in current:
        base = by_name.get(entry["name"])
        if base is None:
            verdicts.append({"name": entry["name"], "status": "new",
                             "wall_s": entry["wall_s"], "drift": False})
            continue
        ratio = (entry["wall_s"] / base["wall_s"]
                 if base["wall_s"] > 0 else float("inf"))
        too_small = base["wall_s"] < MIN_COMPARABLE_WALL_S
        wall_ok = too_small or ratio <= 1.0 + tolerance
        base_rss = base.get("peak_rss_kb")
        cur_rss = entry.get("peak_rss_kb")
        rss_ratio = (round(cur_rss / base_rss, 3)
                     if base_rss and cur_rss else None)
        rss_ok = rss_ratio is None or rss_ratio <= 1.0 + rss_tolerance
        verdicts.append({
            "name": entry["name"],
            "status": "ok" if wall_ok and rss_ok else "fail",
            "wall_s": entry["wall_s"],
            "baseline_wall_s": base["wall_s"],
            "ratio": round(ratio, 3),
            "peak_rss_kb": cur_rss,
            "baseline_peak_rss_kb": base_rss,
            "rss_ratio": rss_ratio,
            "drift": entry["sim_events"] != base.get("sim_events"),
        })
    return verdicts


def compare_engine(current: Sequence[Dict[str, Any]],
                   baseline: Dict[str, Any],
                   tolerance: float = DEFAULT_TOLERANCE
                   ) -> List[Dict[str, Any]]:
    """Verdict per engine-bench kernel against the baseline record.

    Engine kernels are throughput benchmarks, so the gated quantity is
    ``events_per_sec`` (a *drop* beyond ``tolerance`` fails) rather
    than wall-clock growth.  Baselines written before the engine bench
    existed carry no ``"engine"`` key; every current kernel is then
    reported ``new`` and nothing fails — old BENCH files keep working
    as wall/RSS baselines (graceful degradation, not an error).
    """
    by_name = {e.get("name"): e for e in baseline.get("engine", [])
               if isinstance(e, dict)}
    verdicts: List[Dict[str, Any]] = []
    for entry in current:
        base = by_name.get(entry["name"])
        base_eps = base.get("events_per_sec") if base else None
        if not base_eps:
            verdicts.append({"name": entry["name"], "status": "new",
                             "events_per_sec": entry["events_per_sec"]})
            continue
        ratio = entry["events_per_sec"] / base_eps
        verdicts.append({
            "name": entry["name"],
            "status": "ok" if ratio >= 1.0 - tolerance else "fail",
            "events_per_sec": entry["events_per_sec"],
            "baseline_events_per_sec": base_eps,
            "ratio": round(ratio, 3),
        })
    return verdicts
