"""ONC-RPC style framing helpers."""

from .messages import RPC_CALL_HEADER, RPC_REPLY_HEADER, XidMatcher

__all__ = ["RPC_CALL_HEADER", "RPC_REPLY_HEADER", "XidMatcher"]
