"""ONC-RPC style framing: xid allocation and reply matching.

NFS runs over RPC over UDP in the paper's testbed.  We model the RPC layer
as (a) a per-message CPU cost (``rpc_ns``), (b) header bytes that ride in
front of the NFS payload, and (c) xid-based request/reply matching, which
this module provides for any client-side protocol.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict

from ..sim.engine import Event, SimulationError, Simulator

#: RPC call header bytes (credentials + verifier + program/proc).
RPC_CALL_HEADER = 40
#: RPC reply header bytes.
RPC_REPLY_HEADER = 24


class XidMatcher:
    """Allocates xids and parks callers until the matching reply arrives."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._xids = itertools.count(1)
        self._pending: Dict[int, Event] = {}

    def new_xid(self) -> int:
        return next(self._xids)

    def expect(self, xid: int) -> Event:
        if xid in self._pending:
            raise SimulationError(f"duplicate xid {xid}")
        ev = self.sim.event()
        self._pending[xid] = ev
        return ev

    def resolve(self, xid: int, value: Any) -> None:
        waiter = self._pending.pop(xid, None)
        if waiter is None:
            raise SimulationError(f"reply for unknown xid {xid}")
        waiter.succeed(value)

    def is_pending(self, xid: int) -> bool:
        return xid in self._pending

    def cancel(self, xid: int) -> None:
        """Forget a request (it timed out); late replies are then ignored
        by callers that check :meth:`is_pending` first."""
        self._pending.pop(xid, None)

    @property
    def outstanding(self) -> int:
        return len(self._pending)
