"""Peer cache-fetch protocol (cooperative caching between fleet nodes).

On a local NCache miss a fleet node probes the block group's other
owners before falling back to iSCSI.  The exchange is a tiny RPC over
UDP, deliberately shaped like the iSCSI read path so the *existing*
NCache machinery handles both ends with no new data-plane code:

* a hit :class:`PeerFetchReply` exposes ``lba``/``nblocks``/
  ``header_size`` exactly like a Data-In PDU, so the requester's RX hook
  chunks the payload straight into its own LBN cache;
* on the serving peer the reply's data part is keyed placeholders, so
  the peer's TX hook substitutes the cached network buffers on the way
  out — the probe is answered zero-copy from the network-centric cache.

Generation stamps ride with the LBN keys, so the requester inherits the
same invalidation story as locally-cached data.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Peer fetch call header bytes (xid + lun + lbn + count).
PEER_CALL_HEADER = 28
#: Peer fetch reply header bytes (xid + status + extent).
PEER_REPLY_HEADER = 24


@dataclass
class PeerFetchCall:
    """Ask a peer for ``nblocks`` starting at ``lbn`` from its LBN cache."""

    xid: int
    lun: int
    lbn: int
    nblocks: int

    header_size: int = PEER_CALL_HEADER
    is_metadata: bool = True

    def __post_init__(self) -> None:
        if self.nblocks <= 0:
            raise ValueError("nblocks must be positive")


@dataclass
class PeerFetchReply:
    """The peer's answer; a hit carries the blocks like a Data-In PDU."""

    xid: int
    hit: bool
    lun: int
    lba: int
    nblocks: int

    header_size: int = PEER_REPLY_HEADER


@dataclass
class PeerPushCall:
    """Hand ``nblocks`` at ``lba`` to a peer (graceful-leave drain).

    Shaped like a hit :class:`PeerFetchReply` on purpose: on the leaving
    node the data part is keyed placeholders, so the TX hook substitutes
    the cached buffers zero-copy; on the new owner the RX hook chunks
    the payload straight into its LBN cache, Data-In style.
    """

    xid: int
    lun: int
    lba: int
    nblocks: int

    header_size: int = PEER_CALL_HEADER
    is_metadata: bool = False

    def __post_init__(self) -> None:
        if self.nblocks <= 0:
            raise ValueError("nblocks must be positive")


@dataclass
class PeerPushReply:
    """Acknowledges a :class:`PeerPushCall` (the chunk is placed)."""

    xid: int

    header_size: int = PEER_REPLY_HEADER
    is_metadata: bool = True
