"""Testbed assembly: server modes and full four-machine configurations."""

from .config import GB, MB, ServerMode, TestbedConfig
from .factory import build_testbed
from .testbed import BaseTestbed, NfsTestbed, WebTestbed, run_until_complete

__all__ = [
    "BaseTestbed",
    "GB",
    "MB",
    "NfsTestbed",
    "ServerMode",
    "TestbedConfig",
    "WebTestbed",
    "build_testbed",
    "run_until_complete",
]
