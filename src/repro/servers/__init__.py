"""Testbed assembly: server modes and full four-machine configurations."""

from .config import GB, MB, ServerMode, TestbedConfig
from .spec import ClusterSpec, TestbedSpec
from .testbed import BaseTestbed, NfsTestbed, WebTestbed, run_until_complete

__all__ = [
    "BaseTestbed",
    "ClusterSpec",
    "GB",
    "MB",
    "NfsTestbed",
    "ServerMode",
    "TestbedConfig",
    "TestbedSpec",
    "WebTestbed",
    "run_until_complete",
]
