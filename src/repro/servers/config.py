"""Server configurations: original, baseline (ideal zero-copy), NCache.

§5.1 defines the three-way comparison used throughout the evaluation.  The
mapping to copy disciplines:

* ``ORIGINAL`` — every regular-data movement is a physical copy;
* ``BASELINE`` — the copy statements are deleted outright; replies carry
  junk ("use of random packets does not affect the performance
  measurement"); no cache-management overhead of any kind;
* ``NCACHE``   — logical copies + the NCache module's own overheads.

Memory budgeting follows §3.4/§4.1: the machine has ``ram_bytes``; the
kernel and daemons take a fixed carve-out; the remainder is cache memory.
Original/baseline give it all to the file-system buffer cache; NCache pins
most of it as network buffers (the network-centric cache) and leaves the
file-system cache deliberately small.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..cache.arbiter import ArbiterSpec
from ..copymodel.accounting import CopyDiscipline
from ..copymodel.costs import DEFAULT_COSTS, CostModel

MB = 1024 * 1024
GB = 1024 * MB


class ServerMode(enum.Enum):
    """The three §5.1 server configurations."""

    ORIGINAL = "original"
    BASELINE = "baseline"
    NCACHE = "ncache"

    @property
    def discipline(self) -> CopyDiscipline:
        return {
            ServerMode.ORIGINAL: CopyDiscipline.PHYSICAL,
            ServerMode.BASELINE: CopyDiscipline.ZERO,
            ServerMode.NCACHE: CopyDiscipline.LOGICAL,
        }[self]

    @property
    def label(self) -> str:
        """Display label, derived from the enum value (no parallel table);
        NCache keeps its branded capitalisation."""
        return "NCache" if self is ServerMode.NCACHE else self.value


@dataclass
class TestbedConfig:
    """Shared knobs of the paper's testbed (§5.2)."""

    __test__ = False  # not a pytest test class, despite the name

    mode: ServerMode = ServerMode.ORIGINAL
    costs: CostModel = field(default_factory=lambda: DEFAULT_COSTS)

    # Application server: P3 1 GHz, 896 MB RAM.
    server_ram_bytes: int = 896 * MB
    server_kernel_carveout: int = 96 * MB
    #: FS buffer cache size under NCACHE (kept small to limit double
    #: buffering, §3.4); ignored in the other modes.
    ncache_fs_cache_bytes: int = 64 * MB
    n_server_nics: int = 1
    checksum_offload: bool = True

    # Storage server: P3 1 GHz, 512 MB RAM, 4-disk IDE RAID-0.
    n_disks: int = 4
    disk_transfer_mbps: float = 35.0
    disk_seek_ms: float = 8.5
    disk_rotation_ms: float = 4.17

    # Clients: two nodes, as in the paper.
    n_client_hosts: int = 2

    # NFS server daemons (tuned per experiment in the paper).
    n_daemons: int = 8

    readahead_blocks: int = 0

    #: on-disk inode table size (blocks); inode→LBN mapping wraps at
    #: this many blocks, so it bounds the inode-metadata working set
    #: (the adaptive-budget experiment raises it to make metadata a
    #: cache-significant byte population).
    inode_table_blocks: int = 128

    #: NCache chunk descriptor overheads — the metadata that shrinks the
    #: effective cache (Figure 6a).
    ncache_per_buffer_overhead: int = 160
    ncache_per_chunk_overhead: int = 64

    #: replacement policy for both caches — a :data:`repro.cache.POLICIES`
    #: name (``lru`` is the paper's; the others are ablation axes).
    cache_policy: str = "lru"
    #: NCache store shard count (1 = unsharded, the paper's layout).
    cache_shards: int = 1

    #: memory-budget arbiter over the FS cache / NCache split
    #: (DESIGN.md §12).  The default ``StaticSplit`` reproduces the
    #: paper's configuration-time squeeze byte-for-byte; ``kind="ghost"``
    #: turns on the GhostGradient feedback controller.
    arbiter: ArbiterSpec = field(default_factory=ArbiterSpec)

    #: strict NCache substitution (raise on miss) — used by tests.
    ncache_strict: bool = False
    #: ablation A1: inherit checksums on substituted packets.
    ncache_inherit_checksums: bool = True
    #: ablation A3: FHO→LBN remapping on buffer-cache flush.
    ncache_enable_remap: bool = True
    #: ablation A8 (paper §6 future work): the storage server keeps blocks
    #: on disk in a network-ready format — its read path goes copy-free.
    storage_network_ready_disk: bool = False

    @property
    def cache_memory_bytes(self) -> int:
        """Memory available for caching on the application server."""
        return self.server_ram_bytes - self.server_kernel_carveout

    @property
    def fs_cache_bytes(self) -> int:
        if self.mode is ServerMode.NCACHE:
            return self.ncache_fs_cache_bytes
        return self.cache_memory_bytes

    @property
    def ncache_capacity_bytes(self) -> int:
        if self.mode is not ServerMode.NCACHE:
            return 0
        return self.cache_memory_bytes - self.ncache_fs_cache_bytes
