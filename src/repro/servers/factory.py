"""Deprecated one-call testbed construction.

:func:`build_testbed` predates the declarative spec API and survives
only as a compatibility shim: it packs its arguments into a
:class:`~repro.servers.spec.TestbedSpec` and builds that.  New code
should construct a :class:`TestbedSpec` (or :class:`ClusterSpec`)
directly — the spec is typed, validated, hashable and picklable, which
the kwarg soup here never was.  The lint rule ``no-legacy-factory``
flags new in-repo callers.
"""

from __future__ import annotations

import warnings
from typing import Optional, Union

from .config import ServerMode
from .spec import TestbedSpec
from .testbed import BaseTestbed


def build_testbed(kind: str = "nfs",
                  mode: Union[ServerMode, str] = ServerMode.ORIGINAL,
                  *,
                  image_capacity_blocks: int = 4 << 20,
                  seed: int = 1,
                  flush_interval_s: Optional[float] = 0.25,
                  connections_per_client: int = 6,
                  **config_overrides) -> BaseTestbed:
    """Deprecated: use :meth:`TestbedSpec.build` instead.

    Equivalent to::

        TestbedSpec(kind=kind, mode=mode, ...,
                    config=config_overrides).build()
    """
    warnings.warn(
        "build_testbed() is deprecated; construct a "
        "repro.servers.TestbedSpec and call .build()",
        DeprecationWarning, stacklevel=2)
    spec = TestbedSpec(kind=kind, mode=mode,
                       image_capacity_blocks=image_capacity_blocks,
                       seed=seed,
                       flush_interval_s=flush_interval_s,
                       connections_per_client=connections_per_client,
                       config=tuple(config_overrides.items()))
    return spec.build()
