"""One-call testbed construction: the public facade over testbed wiring.

Experiments, notebooks and tests all want the same thing — "give me a
fully-built NFS (or web) testbed in mode X" — without re-deriving the
per-kind defaults (NIC counts, daemon counts, flush intervals,
connections per client).  :func:`build_testbed` centralises those
defaults; anything it does not recognise as a builder knob is forwarded
to :class:`~repro.servers.config.TestbedConfig`, so every paper knob
stays reachable from the one entry point.
"""

from __future__ import annotations

from typing import Optional, Union

from .config import ServerMode, TestbedConfig
from .testbed import BaseTestbed, NfsTestbed, WebTestbed

#: per-kind defaults applied when the caller does not override them.
_NFS_DEFAULTS = dict(n_server_nics=1, n_daemons=16)
_WEB_DEFAULTS = dict(n_server_nics=2)


def build_testbed(kind: str = "nfs",
                  mode: Union[ServerMode, str] = ServerMode.ORIGINAL,
                  *,
                  image_capacity_blocks: int = 4 << 20,
                  seed: int = 1,
                  flush_interval_s: Optional[float] = 0.25,
                  connections_per_client: int = 6,
                  **config_overrides) -> BaseTestbed:
    """Build a fully-wired testbed of the given kind and server mode.

    ``kind`` is ``"nfs"`` (NFS-over-iSCSI server, §5.4) or ``"web"``
    (kHTTPd, §5.5).  ``mode`` accepts a :class:`ServerMode` or its string
    value (``"original"``/``"baseline"``/``"ncache"``).  Remaining keyword
    arguments override :class:`TestbedConfig` fields; kind-specific
    defaults (1 NIC + 16 daemons for NFS, 2 NICs for web) apply only when
    the caller does not supply those fields.

    ``flush_interval_s`` is the NFS flush-daemon period (``None`` disables
    it); ``connections_per_client`` sizes the web client pool.  Both are
    ignored by the other kind.
    """
    if isinstance(mode, str):
        mode = ServerMode(mode)
    if kind == "nfs":
        defaults = dict(_NFS_DEFAULTS)
        defaults.update(config_overrides)
        cfg = TestbedConfig(mode=mode, **defaults)
        return NfsTestbed(cfg, image_capacity_blocks=image_capacity_blocks,
                          seed=seed, flush_interval_s=flush_interval_s)
    if kind == "web":
        defaults = dict(_WEB_DEFAULTS)
        defaults.update(config_overrides)
        cfg = TestbedConfig(mode=mode, **defaults)
        return WebTestbed(cfg, image_capacity_blocks=image_capacity_blocks,
                          seed=seed,
                          connections_per_client=connections_per_client)
    raise ValueError(f"unknown testbed kind {kind!r} (want 'nfs' or 'web')")
