"""Declarative testbed and cluster specifications.

:class:`TestbedSpec` is the typed replacement for the old
``build_testbed(kind, mode, **kwargs)`` kwarg-soup factory: every knob is
a validated field, the kind-specific defaults (:data:`KIND_DEFAULTS`) are
written down instead of buried in the factory body, and the whole spec is
an immutable, hashable, **picklable** value — so an
:class:`~repro.experiments.parallel.RunSpec` can carry one across
process-pool workers unchanged.

:class:`ClusterSpec` scales a testbed spec out to an N-server fleet
(consistent-hash routing, optional cooperative caching); its
:meth:`ClusterSpec.build` delegates to :mod:`repro.fleet`.  A single-node
cluster builds exactly the testbed its :class:`TestbedSpec` describes —
same construction order, same simulation events — so the fleet layer adds
nothing until there is actually a fleet.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from .config import ServerMode, TestbedConfig
from .testbed import BaseTestbed, NfsTestbed, WebTestbed

#: Per-kind :class:`TestbedConfig` defaults, applied when the spec's
#: ``config`` does not override them.  This is the explicit form of what
#: the legacy factory kept in private module dicts.
KIND_DEFAULTS: Dict[str, Tuple[Tuple[str, Any], ...]] = {
    "nfs": (("n_server_nics", 1), ("n_daemons", 16)),
    "web": (("n_server_nics", 2),),
}

_CONFIG_FIELDS = frozenset(
    f.name for f in dataclasses.fields(TestbedConfig)) - {"mode"}


def _normalize_config(config: Union[Mapping, Tuple[Tuple[str, Any], ...]]
                      ) -> Tuple[Tuple[str, Any], ...]:
    """Sorted ``(name, value)`` tuple form of config overrides."""
    items = tuple(config.items()) if isinstance(config, Mapping) \
        else tuple(config)
    for entry in items:
        if not (isinstance(entry, tuple) and len(entry) == 2
                and isinstance(entry[0], str)):
            raise ValueError(
                f"config entries must be (name, value) pairs, got {entry!r}")
    unknown = sorted(name for name, _ in items
                     if name not in _CONFIG_FIELDS)
    if unknown:
        raise ValueError(
            f"unknown TestbedConfig field(s) {unknown}; "
            f"valid fields: {sorted(_CONFIG_FIELDS)}")
    names = [name for name, _ in items]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate config field in {names}")
    return tuple(sorted(items))


@dataclass(frozen=True)
class TestbedSpec:
    """A complete, validated description of one testbed.

    ``config`` accepts a mapping at construction time and is normalized
    to a sorted tuple of ``(field, value)`` pairs, keeping the spec
    hashable and safely picklable.  ``flush_interval_s`` applies to the
    NFS kind only (``None`` disables the flush daemon);
    ``connections_per_client`` applies to the web kind only.
    """

    __test__ = False  # not a test class, despite the Test* name

    kind: str = "nfs"
    mode: ServerMode = ServerMode.ORIGINAL
    image_capacity_blocks: int = 4 << 20
    seed: int = 1
    flush_interval_s: Optional[float] = 0.25
    connections_per_client: int = 6
    config: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in KIND_DEFAULTS:
            raise ValueError(
                f"unknown testbed kind {self.kind!r} (want 'nfs' or 'web')")
        if isinstance(self.mode, str):
            object.__setattr__(self, "mode", ServerMode(self.mode))
        if not isinstance(self.mode, ServerMode):
            raise ValueError(f"mode must be a ServerMode, got {self.mode!r}")
        if self.image_capacity_blocks <= 0:
            raise ValueError("image_capacity_blocks must be positive")
        if self.flush_interval_s is not None and self.flush_interval_s <= 0:
            raise ValueError("flush_interval_s must be positive or None")
        if self.connections_per_client < 1:
            raise ValueError("connections_per_client must be >= 1")
        object.__setattr__(self, "config", _normalize_config(self.config))

    # -- ergonomic constructors ---------------------------------------------

    @classmethod
    def nfs(cls, mode: Union[ServerMode, str] = ServerMode.ORIGINAL,
            **kwargs: Any) -> "TestbedSpec":
        """An NFS spec; unknown kwargs become ``config`` overrides."""
        return cls._of_kind("nfs", mode, kwargs)

    @classmethod
    def web(cls, mode: Union[ServerMode, str] = ServerMode.ORIGINAL,
            **kwargs: Any) -> "TestbedSpec":
        """A web (kHTTPd) spec; unknown kwargs become ``config`` overrides."""
        return cls._of_kind("web", mode, kwargs)

    @classmethod
    def _of_kind(cls, kind: str, mode: Union[ServerMode, str],
                 kwargs: Dict[str, Any]) -> "TestbedSpec":
        own = {name: kwargs.pop(name) for name in
               ("image_capacity_blocks", "seed", "flush_interval_s",
                "connections_per_client", "config") if name in kwargs}
        config = dict(own.pop("config", ()))
        config.update(kwargs)
        return cls(kind=kind, mode=mode, config=tuple(config.items()), **own)

    # -- derived values ------------------------------------------------------

    def testbed_config(self) -> TestbedConfig:
        """The merged :class:`TestbedConfig` this spec describes."""
        merged = dict(KIND_DEFAULTS[self.kind])
        merged.update(self.config)
        return TestbedConfig(mode=self.mode, **merged)

    def build(self, *, sim: Any = None, network: Any = None,
              name_prefix: str = "") -> BaseTestbed:
        """Construct the fully-wired testbed.

        ``sim``/``network``/``name_prefix`` let a fleet compose several
        testbeds into one simulation; the defaults build a standalone
        testbed exactly as the legacy factory did.
        """
        cfg = self.testbed_config()
        if self.kind == "nfs":
            return NfsTestbed(
                cfg, image_capacity_blocks=self.image_capacity_blocks,
                seed=self.seed, flush_interval_s=self.flush_interval_s,
                sim=sim, network=network, name_prefix=name_prefix)
        return WebTestbed(
            cfg, image_capacity_blocks=self.image_capacity_blocks,
            seed=self.seed,
            connections_per_client=self.connections_per_client,
            sim=sim, network=network, name_prefix=name_prefix)


#: Legal :class:`ChurnEvent` actions.
CHURN_ACTIONS: Tuple[str, ...] = ("join", "leave", "crash", "rejoin")


@dataclass(frozen=True)
class ChurnEvent:
    """One timed membership change in a :class:`ChurnSchedule`.

    * ``join`` — a fresh node (the next free index) is built mid-run,
      replays the fleet's files, connects, and enters the ring.
    * ``leave`` — graceful drain: ``node`` writes back its dirty chunks,
      hands its pinned clean chunks to each block group's new owner over
      the simulated network, then detaches.
    * ``crash`` — fail-stop at the switch: ``node``'s UDP ports go dark
      instantly; its cache contents are lost to the fleet.
    * ``rejoin`` — the crashed ``node`` comes back with a *cold* NCache
      (occupancy restarts from zero; evicted keys seed the ghost lists,
      so the warmup is visible in occupancy + ghost-hit gauges).
    """

    at_s: float
    action: str
    node: Optional[int] = None

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError(f"at_s must be >= 0, got {self.at_s}")
        if self.action not in CHURN_ACTIONS:
            raise ValueError(
                f"unknown churn action {self.action!r}; "
                f"legal actions: {list(CHURN_ACTIONS)}")
        if self.action != "join" and self.node is None:
            raise ValueError(f"{self.action!r} needs an explicit node")
        if self.node is not None and self.node < 0:
            raise ValueError(f"node must be >= 0, got {self.node}")


@dataclass(frozen=True)
class ChurnSchedule:
    """A declarative, picklable timeline of membership events.

    Events are kept sorted by ``at_s`` (stable for ties, so same-time
    events apply in the order written).  An empty schedule is inert: a
    cluster built with one is event-for-event identical to a cluster
    built with ``churn=None``.
    """

    events: Tuple[ChurnEvent, ...] = ()

    def __post_init__(self) -> None:
        events = tuple(self.events)
        for event in events:
            if not isinstance(event, ChurnEvent):
                raise ValueError(
                    f"events must be ChurnEvent instances, got {event!r}")
        object.__setattr__(
            self, "events", tuple(sorted(events, key=lambda e: e.at_s)))

    @property
    def empty(self) -> bool:
        return not self.events

    def __len__(self) -> int:
        return len(self.events)


@dataclass(frozen=True)
class ClusterSpec:
    """N identically-configured testbeds behind a consistent-hash router.

    * ``replication`` — how many ring owners each block group has; the
      router spreads requests for a group across its owners, so the
      group's blocks end up cached on ``replication`` nodes.
    * ``cooperative`` — on a local NCache miss, probe the group's other
      owners over the simulated network before reading from iSCSI.
      Requires :attr:`TestbedSpec.mode` ``NCACHE`` (the probe is answered
      from the peer's network-centric cache).
    * ``group_blocks`` — consistent-hash granularity: contiguous runs of
      this many LBNs route as one unit.
    * ``vnodes``/``hash_seed`` — ring geometry (virtual nodes per server)
      and its deterministic hash salt.
    * ``churn`` — optional :class:`ChurnSchedule` of timed membership
      events, driven inside the simulation by the fleet builder.  An
      empty (or absent) schedule leaves the fleet byte-identical to the
      static build.
    """

    testbed: TestbedSpec = TestbedSpec()
    n_servers: int = 1
    replication: int = 1
    cooperative: bool = False
    group_blocks: int = 64
    vnodes: int = 64
    hash_seed: int = 0
    churn: Optional[ChurnSchedule] = None

    def __post_init__(self) -> None:
        if not isinstance(self.testbed, TestbedSpec):
            raise ValueError("testbed must be a TestbedSpec")
        if self.n_servers < 1:
            raise ValueError("n_servers must be >= 1")
        if not 1 <= self.replication <= self.n_servers:
            raise ValueError(
                f"replication must be in [1, n_servers], got "
                f"{self.replication} with {self.n_servers} server(s)")
        if self.cooperative and self.testbed.mode is not ServerMode.NCACHE:
            raise ValueError(
                "cooperative caching probes the peers' NCache stores; "
                "it requires mode=ServerMode.NCACHE")
        if self.group_blocks < 1:
            raise ValueError("group_blocks must be >= 1")
        if self.vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        if self.churn is not None:
            if not isinstance(self.churn, ChurnSchedule):
                raise ValueError("churn must be a ChurnSchedule")
            if not self.churn.empty:
                if self.n_servers < 2:
                    raise ValueError(
                        "churn needs n_servers >= 2 (a single-node "
                        "cluster is the bare standalone testbed)")
                if self.testbed.kind != "nfs":
                    raise ValueError(
                        "churn's fail-stop model cuts UDP traffic at "
                        "the switch; it requires the nfs testbed kind")

    def build(self) -> Any:
        """Compose the wired fleet (a :class:`repro.fleet.Fleet`)."""
        from ..fleet.builder import FleetBuilder
        return FleetBuilder(self).build()
