"""Testbed assembly: the paper's four-machine setup (§5.2).

One storage server (iSCSI target, RAID-0), one application server (NFS or
kHTTPd) with one or two gigabit NICs, and two client machines, all behind
a non-blocking switch.  :class:`NfsTestbed` and :class:`WebTestbed` build
the whole thing for a given :class:`~repro.servers.config.ServerMode` so
experiments differ *only* in the server's copy discipline and the presence
of the NCache module, as in the paper.
"""

from __future__ import annotations

from typing import List, Optional

from ..cache.arbiter import MemoryArbiter, make_arbiter
from ..core.ncache import NCacheModule
from ..core.wiring import attach_ncache
from ..fs.buffer_cache import BufferCache
from ..fs.disk import DiskModel, Raid0
from ..fs.image import DiskStore, FsImage
from ..fs.localdev import LocalBlockDevice
from ..fs.vfs import VFS
from ..http.client import HttpClient
from ..http.khttpd import KHttpd
from ..iscsi.initiator import IscsiInitiator
from ..iscsi.target import IscsiTarget
from ..net.addresses import Endpoint, HTTP_PORT, ISCSI_PORT, NFS_PORT
from ..net.host import Host
from ..net.network import Network
from ..nfs.client import NfsClient
from ..nfs.protocol import FileHandle
from ..nfs.server import FlushDaemon, NfsServer
from ..obs.metrics import MetricsRegistry
from ..sim.engine import Simulator, StopSimulation
from ..sim.process import Process, start
from ..sim.stats import MeterSet
from .config import ServerMode, TestbedConfig


def _stop_run(_event) -> None:
    raise StopSimulation


def run_until_complete(sim: Simulator, process: Process) -> None:
    """Drive the simulator until ``process`` finishes (setup phases).

    Runs the engine's fast ``run()`` loop and stops it from a completion
    callback — prewarm phases push hundreds of thousands of events, and
    one ``step()`` call per event (full next-event seek each time) was a
    measurable slice of every experiment's setup.
    """
    if not process.triggered:
        process.add_callback(_stop_run)
        sim.run()
        if not process.triggered:
            raise RuntimeError("simulation drained before process finished")
    if process.failed:
        raise process.value


class BaseTestbed:
    """Storage server + application server + clients + switch.

    A standalone testbed owns its :class:`Simulator` and switch.  A fleet
    (:mod:`repro.fleet`) instead passes a shared ``sim``/``network`` plus
    a ``name_prefix`` that keeps host names and NIC IPs globally unique
    on the shared switch; with the defaults the construction is
    event-for-event identical to the standalone path.
    """

    def __init__(self, config: TestbedConfig,
                 image_capacity_blocks: int = 4 << 20,
                 seed: int = 1, *,
                 sim: Optional[Simulator] = None,
                 network: Optional[Network] = None,
                 name_prefix: str = "") -> None:
        self.config = config
        self.seed = seed
        self.name_prefix = name_prefix
        owns_sim = sim is None
        self.sim = Simulator() if sim is None else sim
        if owns_sim:
            self.sim.trace.process_name = (
                f"{type(self).__name__}[{config.mode.label}]")
        self.network = Network(self.sim) if network is None else network
        #: testbed-wide declared metrics (request latency/bytes live here).
        self.metrics = MetricsRegistry()
        costs = config.costs

        # Storage server.
        self.storage_host = Host(self.sim, f"{name_prefix}storage", costs,
                                 checksum_offload=config.checksum_offload)
        self.storage_host.add_nic(self.network, f"{name_prefix}storage-0")
        self.image = FsImage(capacity_blocks=image_capacity_blocks,
                             seed=seed,
                             inode_table_blocks=config.inode_table_blocks)
        self.disk_store = DiskStore(self.image)
        disks = [DiskModel(self.sim, name=f"{name_prefix}ide{i}",
                           seek_ms=config.disk_seek_ms,
                           rotation_ms=config.disk_rotation_ms,
                           transfer_mbps=config.disk_transfer_mbps)
                 for i in range(config.n_disks)]
        self.raid = Raid0(disks)
        self.local_dev = LocalBlockDevice(self.disk_store, self.raid)
        self.target = IscsiTarget(
            self.storage_host, self.local_dev,
            network_ready_disk=config.storage_network_ready_disk)

        # Application server.
        self.server_host = Host(self.sim, f"{name_prefix}server", costs,
                                checksum_offload=config.checksum_offload)
        self.server_ips: List[str] = []
        for i in range(config.n_server_nics):
            ip = f"{name_prefix}server-{i}"
            self.server_host.add_nic(self.network, ip)
            self.server_ips.append(ip)

        discipline = config.mode.discipline
        self.initiator = IscsiInitiator(
            self.server_host, self.server_ips[0],
            Endpoint(f"{name_prefix}storage-0", ISCSI_PORT),
            discipline=discipline)
        self.cache = BufferCache(config.fs_cache_bytes,
                                 counters=self.server_host.counters,
                                 trace=self.sim.trace,
                                 policy=config.cache_policy)
        self.vfs = VFS(self.server_host, self.image, self.cache,
                       self.initiator, discipline,
                       readahead_blocks=config.readahead_blocks)
        self.ncache: Optional[NCacheModule] = None
        if config.mode is ServerMode.NCACHE:
            self.ncache = attach_ncache(
                self.server_host, self.vfs, self.initiator,
                capacity_bytes=config.ncache_capacity_bytes,
                strict=config.ncache_strict,
                per_buffer_overhead=config.ncache_per_buffer_overhead,
                per_chunk_overhead=config.ncache_per_chunk_overhead,
                inherit_checksums=config.ncache_inherit_checksums,
                enable_remap=config.ncache_enable_remap,
                policy=config.cache_policy,
                shards=config.cache_shards)
        self.arbiter = self._attach_arbiter()

        # Clients.
        self.client_hosts: List[Host] = []
        for i in range(config.n_client_hosts):
            host = Host(self.sim, f"{name_prefix}client{i}", costs,
                        checksum_offload=config.checksum_offload)
            host.add_nic(self.network, f"{name_prefix}client-{i}")
            self.client_hosts.append(host)

        # Meters.
        self.meters = MeterSet(self.sim, registry=self.metrics)
        self.meters.watch("server_cpu", self.server_host.cpu)
        self.meters.watch("storage_cpu", self.storage_host.cpu)
        for i, nic in enumerate(self.server_host.nics):
            self.meters.watch(f"server_nic{i}_tx", nic.tx_link)

    def _attach_arbiter(self) -> MemoryArbiter:
        """Put every cache byte under one arbiter (DESIGN.md §12).

        Registration order is fixed — bcache first, then ncache — so
        the controller's tie-breaking is deterministic.  Under the
        default ``StaticSplit`` this degenerates to the paper's static
        squeeze: budgets are validated once and no simulator event is
        ever scheduled.  An adaptive arbiter under NCache additionally
        installs the bcache ghost filter: metadata and dirty pages
        ghost-record, clean placeholder pages do not — a placeholder's
        payload is already resident in the chunk store, so re-missing
        it costs no backend read, while metadata never enters the chunk
        store and a dirty page's payload only reaches it once its
        writeback remaps (module doc of :mod:`repro.cache.arbiter`).  The bcache floor is
        kept above the transient pin window (one block set per NFS
        daemon) so a shrunken cache cannot stall mid-read.
        """
        config = self.config
        spec = config.arbiter
        arbiter = make_arbiter(spec, config.cache_memory_bytes,
                               counters=self.server_host.counters,
                               trace=self.sim.trace)
        if self.ncache is not None and spec.adaptive:
            self.cache.set_ghost_admit(
                lambda entry: entry.is_metadata or entry.dirty)
        pin_window = 16 * self.image.block_size * max(1, config.n_daemons)
        floor = max(int(config.fs_cache_bytes * spec.floor_fraction),
                    min(pin_window, config.fs_cache_bytes))
        arbiter.register("bcache", config.fs_cache_bytes,
                         self.cache.resize, self.cache.kernel_metrics,
                         writeback=self.vfs.write_back_entry,
                         floor_bytes=floor)
        if self.ncache is not None:
            store = self.ncache.store
            arbiter.register("ncache", config.ncache_capacity_bytes,
                             store.resize, store.kernel_metrics,
                             writeback=self.ncache.write_back_chunk)
        arbiter.start(self.sim)
        return arbiter

    def server_ip_for_client(self, client_index: int) -> str:
        """Spread clients across the server's NICs (the 2-NIC setup)."""
        return self.server_ips[client_index % len(self.server_ips)]

    def setup(self) -> None:
        """Establish sessions (iSCSI login etc.); runs the simulator."""
        run_until_complete(self.sim, start(self.sim, self._setup(),
                                           name="testbed-setup"))

    def _setup(self):
        yield from self.initiator.connect()

    # -- measurement protocol ------------------------------------------------

    def all_hosts(self) -> List[Host]:
        return [self.server_host, self.storage_host] + self.client_hosts

    def reset_measurements(self) -> None:
        """Zero all meters and counters (end-of-warmup boundary)."""
        self.meters.reset()
        for host in self.all_hosts():
            host.counters.registry.reset()

    def warmup_then_measure(self, warmup_s: float, measure_s: float) -> None:
        """Run the standard two-phase measurement window."""
        self.sim.run(until=self.sim.now + warmup_s)
        self.reset_measurements()
        self.sim.run(until=self.sim.now + measure_s)

    def server_cpu_utilization(self) -> float:
        return self.meters.utilization("server_cpu")

    def storage_cpu_utilization(self) -> float:
        return self.meters.utilization("storage_cpu")

    def metrics_snapshot(self) -> dict:
        """Machine-readable state of every metric in the testbed.

        Combines the testbed-level registry (request latency/bytes,
        throughput) with each host's private registry (copy accounting,
        cache hit/miss, per-protocol service-time histograms) so an
        experiment can dump one JSON-serialisable report per data point.
        """
        return {
            "mode": self.config.mode.value,
            "sim_time_s": self.sim.now,
            "throughput": {
                "ops_per_s": self.meters.throughput.ops_per_second(),
                "bytes_per_s": self.meters.throughput.bytes_per_second(),
            },
            "latency": self.meters.request_latency.summary(),
            "utilization": self.meters.utilizations(),
            "metrics": self.metrics.snapshot(),
            "hosts": {host.name: host.counters.registry.snapshot()
                      for host in self.all_hosts()},
        }


class NfsTestbed(BaseTestbed):
    """NFS server backed by iSCSI storage (§5.4 experiments)."""

    def __init__(self, config: TestbedConfig,
                 image_capacity_blocks: int = 4 << 20,
                 seed: int = 1,
                 flush_interval_s: Optional[float] = 0.5, *,
                 sim: Optional[Simulator] = None,
                 network: Optional[Network] = None,
                 name_prefix: str = "") -> None:
        super().__init__(config, image_capacity_blocks, seed,
                         sim=sim, network=network, name_prefix=name_prefix)
        self.nfs_server = NfsServer(self.server_host, self.vfs,
                                    n_daemons=config.n_daemons,
                                    discipline=config.mode.discipline)
        self.flush_daemon: Optional[FlushDaemon] = None
        if flush_interval_s is not None:
            self.flush_daemon = FlushDaemon(self.vfs,
                                            interval_s=flush_interval_s)
        self.clients: List[NfsClient] = []
        for i, host in enumerate(self.client_hosts):
            server_ep = Endpoint(self.server_ip_for_client(i), NFS_PORT)
            self.clients.append(NfsClient(host, host.ip, server_ep,
                                          local_port=900 + i))

    def file_handle(self, name: str) -> FileHandle:
        """Mount-time file handle (the one LOOKUP would return)."""
        inode = self.image.lookup(name)
        return FileHandle(inode.ino, inode.generation)


class WebTestbed(BaseTestbed):
    """kHTTPd backed by iSCSI storage (§5.5 experiments)."""

    def __init__(self, config: TestbedConfig,
                 image_capacity_blocks: int = 4 << 20,
                 seed: int = 1,
                 connections_per_client: int = 4, *,
                 sim: Optional[Simulator] = None,
                 network: Optional[Network] = None,
                 name_prefix: str = "") -> None:
        super().__init__(config, image_capacity_blocks, seed,
                         sim=sim, network=network, name_prefix=name_prefix)
        self.khttpd = KHttpd(self.server_host, self.vfs,
                             discipline=config.mode.discipline)
        self.http_clients: List[HttpClient] = []
        for i, host in enumerate(self.client_hosts):
            for c in range(connections_per_client):
                server_ep = Endpoint(self.server_ip_for_client(i), HTTP_PORT)
                self.http_clients.append(
                    HttpClient(host, host.ip, server_ep,
                               local_port=40000 + 100 * i + c))

    def _setup(self):
        yield from self.initiator.connect()
        for client in self.http_clients:
            yield from client.connect()
