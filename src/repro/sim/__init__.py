"""Discrete-event simulation substrate (engine, processes, resources, stats)."""

from .engine import MS, NS, US, AllOf, AnyOf, Event, SimulationError, Simulator
from .process import Process, start
from .resources import CPU, Link, Resource, Store
from .stats import (
    Counter,
    CounterSet,
    LatencyStats,
    MeterSet,
    ThroughputMeter,
    UtilizationWindow,
)
from .rng import ZipfSampler, substream, zipf_weights

__all__ = [
    "AllOf",
    "AnyOf",
    "CPU",
    "Counter",
    "CounterSet",
    "Event",
    "LatencyStats",
    "Link",
    "MS",
    "MeterSet",
    "NS",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "ThroughputMeter",
    "US",
    "UtilizationWindow",
    "ZipfSampler",
    "start",
    "substream",
    "zipf_weights",
]
