"""Discrete-event simulation engine.

The engine is deliberately small and deterministic: a calendar queue of
scheduled callbacks bucketed by exact timestamp (with a binary-heap
fallback kept for A/B verification), plus a generator-based process
abstraction in :mod:`repro.sim.process`.

Time is a float measured in **seconds** of simulated time.  All model
constants elsewhere in the library are expressed in nanoseconds and
converted through :data:`NS`.

**Calendar core** (DESIGN.md §11).  Events land in per-timestamp FIFO
buckets (``dict[time, deque]``); the *distinct* times below the current
horizon live in a small binary heap (``_near``) and times at or beyond
it in an unsorted overflow list (``_far``).  Scheduling an event at an
already-populated timestamp is a dict lookup plus a deque append — no
heap churn — which makes the dominant patterns (zero-delay cascades,
same-tick callback fan-out) amortized O(1).  The run loop drains one
whole bucket per round; events scheduled *at the current time* during
the drain join the live bucket and run in the same round, exactly where
a ``(time, seq)`` heap would have put them.  When the near heap empties,
the far list is partitioned against a new horizon ``min(far) + width``;
the window ``width`` adapts deterministically to the batch size.

**Identity argument.**  A binary heap keyed ``(time, seq)`` dispatches
in time order, ties broken by the monotonic sequence number.  Here every
bucket is FIFO and sequence numbers are assigned at insertion, so within
one timestamp FIFO order *is* seq order; across timestamps the near heap
and the far partition preserve time order (every far time is >= the
horizon, every near time is below it, and the horizon only moves
forward).  Dispatch order — and therefore ``sim_events`` — is
byte-identical between the two cores; ``tests/test_engine_backends.py``
locks this across the experiment grids.

**Timers.**  :meth:`Simulator.call_later` / :meth:`Simulator.timer`
return cancellable handles.  Cancelling physically removes the entry
from its bucket (calendar) or marks it for a zero-cost skip (heap), so
an RTO timer whose reply already arrived costs *no* dispatch — where
the old timeout-Event idiom paid two (the succeed plus the stale
``AnyOf`` callback) and left the entry churning the heap until it
expired.  Cancelled timers dispatch nothing in both cores; fired timers
dispatch exactly once in both.

Determinism rules observed throughout the library:

* ties in the event queue break by insertion order (monotonic sequence);
* no wall-clock or global-random access anywhere in the simulation;
  randomness comes from explicitly seeded generators (:mod:`repro.sim.rng`).
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from typing import Any, Callable, Iterable, Optional

from ..check import sanitizer as _sanitizer
from ..obs.trace import TraceBus, active_session

#: Multiply a nanosecond quantity by this to obtain simulated seconds.
NS = 1e-9

#: Multiply a microsecond quantity by this to obtain simulated seconds.
US = 1e-6

#: Multiply a millisecond quantity by this to obtain simulated seconds.
MS = 1e-3

#: Process-wide count of dispatched engine callbacks, updated when a
#: :meth:`Simulator.run` completes (not per event — the run loop counts
#: locally).  ``repro.perf`` reads this to report events/second of
#: wall-clock; inside a pool worker it covers exactly that worker's runs.
_dispatch_total = 0


def dispatch_count() -> int:
    """Total engine callbacks dispatched in this process so far."""
    return _dispatch_total


def default_scheduler() -> str:
    """The scheduler backend new :class:`Simulator` objects use.

    ``calendar`` unless the ``REPRO_SCHEDULER`` environment variable
    says ``heap`` — the A/B switch the backend-identity tests and the
    engine microbenchmarks flip.
    """
    return os.environ.get("REPRO_SCHEDULER", "calendar")


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (not for model errors)."""


class StopSimulation(BaseException):
    """Raised by a dispatched callback to stop :meth:`Simulator.run`.

    The run loop catches it, leaves the queue consistent (everything not
    yet dispatched stays scheduled) and returns with the clock at the
    instant of the raising callback.  This is how
    :func:`repro.servers.testbed.run_until_complete` drives a setup phase
    through the fast ``run()`` loop instead of one ``step()`` call per
    event: a completion callback on the watched process raises it.

    Derives from ``BaseException`` so model-level ``except Exception``
    handlers cannot swallow it.
    """


class Event:
    """A one-shot waitable occurrence.

    An event starts *pending*; calling :meth:`succeed` (or :meth:`fail`)
    triggers it exactly once, delivering ``value`` to every registered
    callback and to every process waiting on it.  Events are multicast:
    any number of processes may wait on the same event.
    """

    __slots__ = ("sim", "_callbacks", "_triggered", "_value", "_is_error")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._callbacks: list[Callable[["Event"], None]] = []
        self._triggered = False
        self._value: Any = None
        self._is_error = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        return self._value

    @property
    def failed(self) -> bool:
        return self._triggered and self._is_error

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn`` to run when the event triggers.

        If the event has already triggered the callback is scheduled to run
        immediately (at the current simulation time) rather than invoked
        synchronously, preserving run-to-completion semantics.
        """
        if self._triggered:
            self.sim.schedule(0.0, fn, self)
        else:
            self._callbacks.append(fn)

    def succeed(self, value: Any = None) -> "Event":
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            self.sim.schedule(0.0, fn, self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._value = exc
        self._is_error = True
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            self.sim.schedule(0.0, fn, self)
        return self


class TimerHandle:
    """A cancellable scheduled callback.

    Returned by :meth:`Simulator.call_later` / :meth:`Simulator.call_at`.
    :meth:`cancel` before the deadline removes the timer at zero dispatch
    cost; cancelling after it fired is a no-op.
    """

    __slots__ = ("when", "fired", "cancelled", "_sim", "_fn", "_args",
                 "_entry")

    def __init__(self, sim: "Simulator", when: float, fn: Callable,
                 args: tuple) -> None:
        self.when = when
        self.fired = False
        self.cancelled = False
        self._sim = sim
        self._fn = fn
        self._args = args
        #: the calendar bucket entry (for physical removal on cancel);
        #: unused by the heap core, which skips lazily.
        self._entry: Optional[tuple] = None

    def cancel(self) -> bool:
        """Cancel the timer; ``True`` if it had not fired yet."""
        if self.fired or self.cancelled:
            return False
        self.cancelled = True
        self._sim._discard_timer(self)
        return True

    def _dispatch(self) -> None:
        self.fired = True
        self._fn(*self._args)


class Timer(Event):
    """A cancellable timeout event (the RTO idiom).

    Like :meth:`Simulator.timeout` but carrying a :meth:`cancel` that
    physically descheduls the underlying timer, so a race that the timer
    *loses* (the common case: the reply beat the RTO) costs nothing.
    Cancelling after the timer fired is a no-op.
    """

    __slots__ = ("handle",)

    def __init__(self, sim: "Simulator", delay: float,
                 value: Any = None) -> None:
        super().__init__(sim)
        self.handle = sim.call_later(delay, self._expire, value)

    def _expire(self, value: Any) -> None:
        self.succeed(value)

    def cancel(self) -> bool:
        """Cancel the pending timer; ``True`` if it had not fired."""
        return self.handle.cancel()


class Simulator:
    """The event loop (calendar-queue core).

    ``Simulator(scheduler="heap")`` — or ``REPRO_SCHEDULER=heap`` in the
    environment — returns the legacy binary-heap core instead; dispatch
    order is identical between the two.

    >>> sim = Simulator()
    >>> hits = []
    >>> sim.schedule(1.5, hits.append, "a")
    >>> sim.schedule(0.5, hits.append, "b")
    >>> sim.run()
    >>> hits
    ['b', 'a']
    >>> sim.now
    1.5
    """

    #: backend name, for diagnostics and BENCH records.
    scheduler = "calendar"

    #: starting calendar window; :meth:`_refill` adapts it (deterministic
    #: doubling/halving on batch size, so identical runs adapt identically).
    _INITIAL_WIDTH = 1e-3

    def __new__(cls, scheduler: Optional[str] = None) -> "Simulator":
        if cls is Simulator:
            backend = scheduler or default_scheduler()
            if backend == "heap":
                return super().__new__(HeapSimulator)
            if backend != "calendar":
                raise SimulationError(
                    f"unknown scheduler backend {backend!r} "
                    f"(choose 'calendar' or 'heap')")
        return super().__new__(cls)

    def __init__(self, scheduler: Optional[str] = None) -> None:
        self.now: float = 0.0
        self._seq = 0
        self._running = False
        self._init_core()
        #: Structured trace bus (disabled, and nearly free, by default).
        #: An active :func:`repro.obs.trace.tracing` session adopts it.
        self.trace = TraceBus(clock=self)
        session = active_session()
        if session is not None:
            session.adopt(self.trace)

    def _init_core(self) -> None:
        #: per-timestamp FIFO buckets of ``(seq, fn, args)`` entries.
        #: Most simulated timestamps are unique, so a bucket holding a
        #: single entry stores the tuple directly; it is promoted to a
        #: deque on the first same-time collision.  The run loop and the
        #: timer-cancel path dispatch on ``type(q) is deque``.
        self._buckets: dict[float, Any] = {}
        #: heap of the distinct bucket times below the horizon.
        self._near: list[float] = []
        #: unsorted overflow: distinct bucket times at/past the horizon.
        self._far: list[float] = []
        self._width = self._INITIAL_WIDTH
        self._horizon = self._INITIAL_WIDTH

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        # Hot path: a fresh timestamp costs one dict probe and storing
        # the entry tuple itself — no deque, no heap operation.
        when = self.now + delay
        buckets = self._buckets
        q = buckets.get(when)
        seq = self._seq
        self._seq = seq + 1
        if q is None:
            buckets[when] = (seq, fn, args)
            if when < self._horizon:
                heapq.heappush(self._near, when)
            else:
                self._far.append(when)
        elif type(q) is deque:
            q.append((seq, fn, args))
        else:
            buckets[when] = deque((q, (seq, fn, args)))

    def schedule_at(self, when: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at absolute simulated time ``when``."""
        if when < self.now:
            raise SimulationError(f"scheduling into the past: {when} < {self.now}")
        buckets = self._buckets
        q = buckets.get(when)
        seq = self._seq
        self._seq = seq + 1
        if q is None:
            buckets[when] = (seq, fn, args)
            if when < self._horizon:
                heapq.heappush(self._near, when)
            else:
                self._far.append(when)
        elif type(q) is deque:
            q.append((seq, fn, args))
        else:
            buckets[when] = deque((q, (seq, fn, args)))

    def event(self) -> Event:
        """Create a fresh pending :class:`Event` bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that triggers ``delay`` seconds from now."""
        ev = Event(self)
        self.schedule(delay, ev.succeed, value)
        return ev

    # -- timers ----------------------------------------------------------

    def call_later(self, delay: float, fn: Callable,
                   *args: Any) -> TimerHandle:
        """Schedule a cancellable ``fn(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self._schedule_timer(self.now + delay, fn, args)

    def call_at(self, when: float, fn: Callable, *args: Any) -> TimerHandle:
        """Schedule a cancellable ``fn(*args)`` at absolute time ``when``."""
        if when < self.now:
            raise SimulationError(f"scheduling into the past: {when} < {self.now}")
        return self._schedule_timer(when, fn, args)

    def timer(self, delay: float, value: Any = None) -> Timer:
        """A cancellable :meth:`timeout` (see :class:`Timer`)."""
        return Timer(self, delay, value)

    def _schedule_timer(self, when: float, fn: Callable,
                        args: tuple) -> TimerHandle:
        handle = TimerHandle(self, when, fn, args)
        entry = (self._seq, handle._dispatch, ())
        handle._entry = entry
        self._seq += 1
        buckets = self._buckets
        q = buckets.get(when)
        if q is None:
            buckets[when] = entry
            if when < self._horizon:
                heapq.heappush(self._near, when)
            else:
                self._far.append(when)
        elif type(q) is deque:
            q.append(entry)
        else:
            buckets[when] = deque((q, entry))
        return handle

    def _discard_timer(self, handle: TimerHandle) -> None:
        """Physically remove a cancelled timer's entry from its bucket.

        The bucket at one exact timestamp is tiny (usually one entry),
        so ``deque.remove`` is effectively O(1).  An emptied bucket is
        left in place — the run loop discards it without dispatching
        anything or advancing the clock.
        """
        q = self._buckets.get(handle.when)
        if q is None:
            return
        if type(q) is deque:
            try:
                q.remove(handle._entry)
            except ValueError:
                pass  # already popped for dispatch
        elif q is handle._entry:
            # Singleton bucket: drop it outright; the run loop reaps the
            # stale near-heap time without dispatching.
            del self._buckets[handle.when]

    # -- calendar internals ----------------------------------------------

    def _refill(self) -> None:
        """Partition the far list against a new horizon.

        The new horizon is ``min(far) + width``: at least one bucket
        always moves near, and since every far time is >= the old
        horizon, the horizon is strictly monotonic — cross-window
        ordering can never invert.  Width adapts deterministically:
        doubled when the batch comes up thin (events sparse relative to
        the window), halved when a refill sweeps in a huge batch.
        """
        far = self._far
        width = self._width
        horizon = min(far) + width
        near: list[float] = []
        remaining: list[float] = []
        for when in far:
            if when < horizon:
                near.append(when)
            else:
                remaining.append(when)
        if remaining and len(near) < 8:
            self._width = width * 2.0
        elif len(near) > 1024 and width > 2e-9:
            self._width = width * 0.5
        heapq.heapify(near)
        self._near = near
        self._far = remaining
        self._horizon = horizon
        trace = self.trace
        if trace.engine_events:
            trace.emit("engine.bucket_refill", cat="engine", t=self.now,
                       horizon=horizon, moved=len(near),
                       far=len(remaining))
            if self._width != width:
                trace.emit("engine.bucket_resize", cat="engine", t=self.now,
                           width=self._width)

    def _next_time(self) -> Optional[float]:
        """Earliest time with a non-empty bucket, or ``None`` when drained.

        Skips (and reaps) buckets emptied by timer cancellation and
        refills the near heap from the far list as needed.
        """
        near = self._near
        buckets = self._buckets
        while True:
            while near:
                when = near[0]
                q = buckets.get(when)
                if q:
                    return when
                heapq.heappop(near)
                if q is not None:
                    del buckets[when]
            if not self._far:
                return None
            self._refill()
            near = self._near

    # -- execution -------------------------------------------------------

    def step(self) -> bool:
        """Execute the single next scheduled callback.

        Returns ``False`` when nothing is pending.
        """
        global _dispatch_total
        when = self._next_time()
        if when is None:
            return False
        q = self._buckets[when]
        if type(q) is deque:
            seq, fn, args = q.popleft()
            if not q:
                # Consume the bucket *before* dispatching: fn may
                # reschedule at this same time, which must create a
                # fresh bucket.
                del self._buckets[when]
                heapq.heappop(self._near)
        else:
            seq, fn, args = q
            del self._buckets[when]
            heapq.heappop(self._near)
        self.now = when
        trace = self.trace
        if trace.engine_events:
            # Per-dispatch tracing is opt-in: enormous volume, but it makes
            # the engine's interleaving visible in chrome://tracing.
            trace.emit("engine.dispatch", cat="engine", t=when, seq=seq,
                       fn=getattr(fn, "__qualname__", repr(fn)))
        _dispatch_total += 1
        fn(*args)
        return True

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains, or until simulated time ``until``.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fired earlier, so utilization windows that
        end at ``until`` are well-defined.
        """
        global _dispatch_total
        if self._running:
            raise SimulationError("run() re-entered")
        self._running = True
        # Hot loop: one bucket per round.  Events scheduled at the
        # current time during the drain append to the live deque and run
        # in this same round — identical to (time, seq) heap order, since
        # their seq is necessarily larger than everything already here.
        buckets = self._buckets
        trace = self.trace
        heappop = heapq.heappop
        dispatched = 0
        try:
            while True:
                # Inlined _next_time: seek the earliest non-empty bucket,
                # reaping cancelled-out times and refilling from the far
                # list — one dict probe per round instead of two plus a
                # function call.
                q = None
                while True:
                    near = self._near
                    while near:
                        when = near[0]
                        q = buckets.get(when)
                        if q:
                            break
                        # Stale time: cancelled singleton (no bucket) or
                        # a deque emptied by cancellation — reap both.
                        heappop(near)
                        if q is not None:
                            del buckets[when]
                            q = None
                    if q is not None or not self._far:
                        break
                    self._refill()
                if q is None:
                    if until is None:
                        san = _sanitizer.active()
                        if san is not None:
                            # Simulation end: sweep for lifecycle leaks
                            # (dirty chunks evicted but never written
                            # back, chunks pinned forever).
                            san.sim_ended(self)
                    break
                if until is not None and when > until:
                    break
                heappop(near)
                self.now = when
                if type(q) is not deque:
                    # Singleton bucket: consume before dispatching (fn
                    # may reschedule at this same time, which makes a
                    # fresh bucket that the next round picks first).
                    del buckets[when]
                    if trace.engine_events:
                        trace.emit("engine.dispatch", cat="engine", t=when,
                                   seq=q[0],
                                   fn=getattr(q[1], "__qualname__",
                                              repr(q[1])))
                    dispatched += 1
                    q[1](*q[2])
                    continue
                if trace.engine_events:
                    while q:
                        seq, fn, args = q.popleft()
                        trace.emit("engine.dispatch", cat="engine", t=when,
                                   seq=seq,
                                   fn=getattr(fn, "__qualname__", repr(fn)))
                        dispatched += 1
                        fn(*args)
                else:
                    while q:
                        entry = q.popleft()
                        dispatched += 1
                        entry[1](*entry[2])
                del buckets[when]
            if until is not None:
                self.now = max(self.now, until)
        except StopSimulation:
            # A callback stopped the run at the current instant.  If it
            # fired mid-drain of a deque bucket, the bucket is still in
            # the dict but its time is no longer in the near heap —
            # restore the invariant so a later run() resumes cleanly.
            if type(q) is deque and buckets.get(when) is q:
                if q:
                    heapq.heappush(self._near, when)
                else:
                    del buckets[when]
        finally:
            self._running = False
            _dispatch_total += dispatched

    def peek(self) -> Optional[float]:
        """Time of the next scheduled event, or ``None`` if none pending."""
        return self._next_time()

    def pending(self) -> int:
        """Number of scheduled-but-unexecuted callbacks."""
        return sum(len(q) if type(q) is deque else 1
                   for q in self._buckets.values())


class HeapSimulator(Simulator):
    """The legacy binary-heap core, kept behind the backend switch.

    Dispatch order is byte-identical to the calendar core; the engine
    microbenchmarks and the backend-identity tests run both.  Cancelled
    timers are marked and skipped lazily at the top of the queue — no
    dispatch is counted and the clock does not advance for them, matching
    the calendar core's physical removal.
    """

    scheduler = "heap"

    def _init_core(self) -> None:
        self._heap: list[tuple[float, int, Optional[Callable], Any]] = []

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn, args))
        self._seq += 1

    def schedule_at(self, when: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at absolute simulated time ``when``."""
        if when < self.now:
            raise SimulationError(f"scheduling into the past: {when} < {self.now}")
        heapq.heappush(self._heap, (when, self._seq, fn, args))
        self._seq += 1

    def _schedule_timer(self, when: float, fn: Callable,
                        args: tuple) -> TimerHandle:
        # Sentinel entry: fn=None marks a timer so the run loop can skip
        # it for free once cancelled.  seq uniqueness guarantees the
        # handle itself is never compared.
        handle = TimerHandle(self, when, fn, args)
        heapq.heappush(self._heap, (when, self._seq, None, handle))
        self._seq += 1
        return handle

    def _discard_timer(self, handle: TimerHandle) -> None:
        pass  # lazily skipped (handle.cancelled) at pop time

    # -- execution -------------------------------------------------------

    def step(self) -> bool:
        global _dispatch_total
        heap = self._heap
        while heap:
            when, seq, fn, args = heapq.heappop(heap)
            if fn is None:
                if args.cancelled:
                    continue  # no dispatch, no clock advance
                fn, args = args._dispatch, ()
            self.now = when
            trace = self.trace
            if trace.engine_events:
                trace.emit("engine.dispatch", cat="engine", t=when, seq=seq,
                           fn=getattr(fn, "__qualname__", repr(fn)))
            _dispatch_total += 1
            fn(*args)
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        global _dispatch_total
        if self._running:
            raise SimulationError("run() re-entered")
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        trace = self.trace
        dispatched = 0
        try:
            if until is None:
                while heap:
                    when, seq, fn, args = pop(heap)
                    if fn is None:
                        if args.cancelled:
                            continue
                        fn, args = args._dispatch, ()
                    self.now = when
                    if trace.engine_events:
                        trace.emit("engine.dispatch", cat="engine", t=when,
                                   seq=seq,
                                   fn=getattr(fn, "__qualname__", repr(fn)))
                    dispatched += 1
                    fn(*args)
                san = _sanitizer.active()
                if san is not None:
                    san.sim_ended(self)
                return
            while heap and heap[0][0] <= until:
                when, seq, fn, args = pop(heap)
                if fn is None:
                    if args.cancelled:
                        continue
                    fn, args = args._dispatch, ()
                self.now = when
                if trace.engine_events:
                    trace.emit("engine.dispatch", cat="engine", t=when,
                               seq=seq,
                               fn=getattr(fn, "__qualname__", repr(fn)))
                dispatched += 1
                fn(*args)
            self.now = max(self.now, until)
        except StopSimulation:
            pass  # entry was popped before dispatch; heap is consistent
        finally:
            self._running = False
            _dispatch_total += dispatched

    def peek(self) -> Optional[float]:
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[2] is None and entry[3].cancelled:
                heapq.heappop(heap)
                continue
            return entry[0]
        return None

    def pending(self) -> int:
        return sum(1 for entry in self._heap
                   if entry[2] is not None or not entry[3].cancelled)


class AnyOf(Event):
    """Event that triggers when the *first* of ``events`` triggers.

    Its value is the ``(index, value)`` pair of the first event.
    """

    def __init__(self, sim: Simulator, events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._done = False
        for i, ev in enumerate(events):
            ev.add_callback(self._make_cb(i))

    def _make_cb(self, index: int) -> Callable[[Event], None]:
        def cb(ev: Event) -> None:
            if not self._done:
                self._done = True
                self.succeed((index, ev.value))

        return cb


class AllOf(Event):
    """Event that triggers when *all* of ``events`` have triggered.

    Its value is the list of the component events' values, in order.
    """

    def __init__(self, sim: Simulator, events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._events = list(events)
        self._remaining = len(self._events)
        if self._remaining == 0:
            self.succeed([])
            return
        for ev in self._events:
            ev.add_callback(self._one_done)

    def _one_done(self, _ev: Event) -> None:
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e.value for e in self._events])
