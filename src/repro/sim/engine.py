"""Discrete-event simulation engine.

The engine is deliberately small and deterministic: a binary heap of
scheduled callbacks ordered by (time, sequence number), plus a
generator-based process abstraction in :mod:`repro.sim.process`.

Time is a float measured in **seconds** of simulated time.  All model
constants elsewhere in the library are expressed in nanoseconds and
converted through :data:`NS`.

Determinism rules observed throughout the library:

* ties in the event heap break by insertion order (monotonic sequence);
* no wall-clock or global-random access anywhere in the simulation;
  randomness comes from explicitly seeded generators (:mod:`repro.sim.rng`).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Optional

from ..check import sanitizer as _sanitizer
from ..obs.trace import TraceBus, active_session

#: Multiply a nanosecond quantity by this to obtain simulated seconds.
NS = 1e-9

#: Process-wide count of dispatched engine callbacks, updated when a
#: :meth:`Simulator.run` completes (not per event — the run loop counts
#: locally).  ``repro.perf`` reads this to report events/second of
#: wall-clock; inside a pool worker it covers exactly that worker's runs.
_dispatch_total = 0


def dispatch_count() -> int:
    """Total engine callbacks dispatched in this process so far."""
    return _dispatch_total

#: Multiply a microsecond quantity by this to obtain simulated seconds.
US = 1e-6

#: Multiply a millisecond quantity by this to obtain simulated seconds.
MS = 1e-3


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (not for model errors)."""


class Event:
    """A one-shot waitable occurrence.

    An event starts *pending*; calling :meth:`succeed` (or :meth:`fail`)
    triggers it exactly once, delivering ``value`` to every registered
    callback and to every process waiting on it.  Events are multicast:
    any number of processes may wait on the same event.
    """

    __slots__ = ("sim", "_callbacks", "_triggered", "_value", "_is_error")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._callbacks: list[Callable[["Event"], None]] = []
        self._triggered = False
        self._value: Any = None
        self._is_error = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        return self._value

    @property
    def failed(self) -> bool:
        return self._triggered and self._is_error

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn`` to run when the event triggers.

        If the event has already triggered the callback is scheduled to run
        immediately (at the current simulation time) rather than invoked
        synchronously, preserving run-to-completion semantics.
        """
        if self._triggered:
            self.sim.schedule(0.0, fn, self)
        else:
            self._callbacks.append(fn)

    def succeed(self, value: Any = None) -> "Event":
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            self.sim.schedule(0.0, fn, self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._value = exc
        self._is_error = True
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            self.sim.schedule(0.0, fn, self)
        return self


class Simulator:
    """The event loop.

    >>> sim = Simulator()
    >>> hits = []
    >>> sim.schedule(1.5, hits.append, "a")
    >>> sim.schedule(0.5, hits.append, "b")
    >>> sim.run()
    >>> hits
    ['b', 'a']
    >>> sim.now
    1.5
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable, tuple]] = []
        self._seq = 0
        self._running = False
        #: Structured trace bus (disabled, and nearly free, by default).
        #: An active :func:`repro.obs.trace.tracing` session adopts it.
        self.trace = TraceBus(clock=self)
        session = active_session()
        if session is not None:
            session.adopt(self.trace)

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        # Hot path: inlined schedule_at (one call frame per event matters).
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn, args))
        self._seq += 1

    def schedule_at(self, when: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at absolute simulated time ``when``."""
        if when < self.now:
            raise SimulationError(f"scheduling into the past: {when} < {self.now}")
        heapq.heappush(self._heap, (when, self._seq, fn, args))
        self._seq += 1

    def event(self) -> Event:
        """Create a fresh pending :class:`Event` bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that triggers ``delay`` seconds from now."""
        ev = Event(self)
        self.schedule(delay, ev.succeed, value)
        return ev

    # -- execution -------------------------------------------------------

    def step(self) -> bool:
        """Execute the single next scheduled callback.

        Returns ``False`` when the heap is empty.
        """
        global _dispatch_total
        if not self._heap:
            return False
        when, _seq, fn, args = heapq.heappop(self._heap)
        self.now = when
        trace = self.trace
        if trace.engine_events:
            # Per-dispatch tracing is opt-in: enormous volume, but it makes
            # the engine's interleaving visible in chrome://tracing.
            trace.emit("engine.dispatch", cat="engine", t=when, seq=_seq,
                       fn=getattr(fn, "__qualname__", repr(fn)))
        _dispatch_total += 1
        fn(*args)
        return True

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains, or until simulated time ``until``.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fired earlier, so utilization windows that
        end at ``until`` are well-defined.
        """
        global _dispatch_total
        if self._running:
            raise SimulationError("run() re-entered")
        self._running = True
        # Hot loop: step() is inlined (the per-event method call alone is
        # measurable) and everything invariant is bound to locals.  The
        # dispatch order is identical to repeated step() calls.
        heap = self._heap
        pop = heapq.heappop
        trace = self.trace
        dispatched = 0
        try:
            if until is None:
                while heap:
                    when, _seq, fn, args = pop(heap)
                    self.now = when
                    if trace.engine_events:
                        trace.emit("engine.dispatch", cat="engine", t=when,
                                   seq=_seq,
                                   fn=getattr(fn, "__qualname__", repr(fn)))
                    dispatched += 1
                    fn(*args)
                san = _sanitizer.active()
                if san is not None:
                    # Simulation end: sweep for lifecycle leaks (dirty
                    # chunks evicted but never written back, chunks
                    # pinned forever).
                    san.sim_ended(self)
                return
            while heap and heap[0][0] <= until:
                when, _seq, fn, args = pop(heap)
                self.now = when
                if trace.engine_events:
                    trace.emit("engine.dispatch", cat="engine", t=when,
                               seq=_seq,
                               fn=getattr(fn, "__qualname__", repr(fn)))
                dispatched += 1
                fn(*args)
            self.now = max(self.now, until)
        finally:
            self._running = False
            _dispatch_total += dispatched

    def peek(self) -> Optional[float]:
        """Time of the next scheduled event, or ``None`` if none pending."""
        return self._heap[0][0] if self._heap else None

    def pending(self) -> int:
        """Number of scheduled-but-unexecuted callbacks."""
        return len(self._heap)


class AnyOf(Event):
    """Event that triggers when the *first* of ``events`` triggers.

    Its value is the ``(index, value)`` pair of the first event.
    """

    def __init__(self, sim: Simulator, events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._done = False
        for i, ev in enumerate(events):
            ev.add_callback(self._make_cb(i))

    def _make_cb(self, index: int) -> Callable[[Event], None]:
        def cb(ev: Event) -> None:
            if not self._done:
                self._done = True
                self.succeed((index, ev.value))

        return cb


class AllOf(Event):
    """Event that triggers when *all* of ``events`` have triggered.

    Its value is the list of the component events' values, in order.
    """

    def __init__(self, sim: Simulator, events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._events = list(events)
        self._remaining = len(self._events)
        if self._remaining == 0:
            self.succeed([])
            return
        for ev in self._events:
            ev.add_callback(self._one_done)

    def _one_done(self, _ev: Event) -> None:
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e.value for e in self._events])
