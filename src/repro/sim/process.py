"""Generator-based processes on top of the event engine.

A *process* is a Python generator driven by the simulator.  The generator
may yield:

* an :class:`~repro.sim.engine.Event` — the process resumes when the event
  triggers, and the ``yield`` expression evaluates to the event's value;
* a ``float``/``int`` — shorthand for ``sim.timeout(delay)``;
* another :class:`Process` — join: resume when that process returns, the
  ``yield`` evaluates to its return value.

A process is itself an :class:`Event` that triggers with the generator's
return value, so processes compose: ``result = yield some_process``.

Failures: if an awaited event fails, the exception is thrown *into* the
generator (so model code can ``try/except`` around a ``yield``).  If the
generator itself raises, the process event fails, and the exception
propagates to joiners; if nobody is joined, it is re-raised at the event
loop to avoid silently losing errors.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Union

from .engine import Event, SimulationError, Simulator

Yieldable = Union[Event, float, int]


class Process(Event):
    """Drives a generator; triggers (as an Event) with its return value."""

    __slots__ = ("name", "_gen", "_joined", "_starting")

    def __init__(self, sim: Simulator, gen: Generator[Yieldable, Any, Any],
                 name: Optional[str] = None) -> None:
        super().__init__(sim)
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"Process needs a generator, got {type(gen).__name__}; "
                "did you call a plain function instead of a generator function?")
        self.name = name or getattr(gen, "__name__", "process")
        self._gen = gen
        self._joined = False
        # Inline start: run the first segment to its first yield right
        # here instead of scheduling it at +0.0 — one schedule+dispatch
        # saved per process, and the rx path starts one per datagram.
        # Ordering shifts deterministically (the first segment now runs
        # before the starter's next statement, not after its current
        # callback returns); nothing in the tree depends on the old
        # interleaving.
        self._starting = True
        try:
            self._resume(None, False)
        finally:
            self._starting = False

    def add_callback(self, fn) -> None:  # type: ignore[override]
        self._joined = True
        super().add_callback(fn)

    # -- driving ---------------------------------------------------------

    def _resume(self, value: Any, throw: bool) -> None:
        try:
            if throw:
                target = self._gen.throw(value)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self._crash(exc)
            return
        self._wait_on(target)

    def _wait_on(self, target: Yieldable) -> None:
        if isinstance(target, (int, float)):
            # Sleep fast path: schedule the resume directly instead of
            # materializing a timeout Event.  One heap entry and one
            # dispatch instead of two of each — and plain delays are by
            # far the most common yield (every CPU charge and link
            # transmission ends up here via Resource.use).
            try:
                self.sim.schedule(float(target), self._resume, None, False)
            except SimulationError as exc:  # negative delay
                self._crash(exc)
            return
        if not isinstance(target, Event):
            exc = SimulationError(
                f"process {self.name!r} yielded {type(target).__name__}; "
                "expected Event, Process or a delay in seconds")
            self._crash(exc)
            return
        target.add_callback(self._on_event)

    def _on_event(self, ev: Event) -> None:
        if ev.failed:
            self._resume(ev.value, True)
        else:
            self._resume(ev.value, False)

    def _crash(self, exc: BaseException) -> None:
        self.fail(exc)
        if not self._joined:
            if self._starting:
                # Crash in the inline first segment: the caller of
                # start() has not had the chance to join yet.  Re-check
                # once the current instant's callbacks have run, so
                # ``proc = start(...); proc.add_callback(...)`` keeps
                # its pre-inline-start semantics.
                self.sim.schedule(0.0, self._raise_if_unjoined, exc)
                return
            # No joiner will ever observe this failure; surface it loudly.
            raise exc

    def _raise_if_unjoined(self, exc: BaseException) -> None:
        if not self._joined:
            raise exc


def start(sim: Simulator, gen: Generator[Yieldable, Any, Any],
          name: Optional[str] = None) -> Process:
    """Start ``gen`` as a process on ``sim`` and return its handle."""
    return Process(sim, gen, name=name)
