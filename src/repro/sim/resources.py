"""Contended resources: generic FIFO resource, CPUs and links.

All resources account *busy time* so experiments can report utilization,
which is one of the two quantities the paper plots (the other being
throughput).  Accounting counts resource-seconds: a 2-core CPU busy on both
cores for 1s accumulates 2 busy-seconds; utilization over a window divides
by ``capacity * window``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator

from .engine import Event, SimulationError, Simulator


class Resource:
    """A FIFO-served resource with ``capacity`` identical slots."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: deque[Event] = deque()
        # busy accounting
        self._busy_accum = 0.0
        self._last_change = 0.0

    # -- accounting ------------------------------------------------------

    def _note_change(self) -> None:
        now = self.sim.now
        self._busy_accum += self._in_use * (now - self._last_change)
        self._last_change = now

    def busy_time(self) -> float:
        """Cumulative resource-seconds of busy time up to now."""
        return self._busy_accum + self._in_use * (self.sim.now - self._last_change)

    def utilization(self, since_busy: float, since_time: float) -> float:
        """Utilization between a past snapshot and now.

        ``since_busy``/``since_time`` are a prior ``(busy_time(), sim.now)``
        snapshot pair.
        """
        window = self.sim.now - since_time
        if window <= 0:
            return 0.0
        return (self.busy_time() - since_busy) / (self.capacity * window)

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    # -- acquire / release -----------------------------------------------

    def acquire(self) -> Event:
        """Request one slot; the returned event triggers when granted."""
        ev = self.sim.event()
        if self._in_use < self.capacity and not self._waiters:
            self._note_change()
            self._in_use += 1
            ev.succeed(self)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            # Hand the slot directly to the next waiter; _in_use unchanged.
            ev = self._waiters.popleft()
            ev.succeed(self)
        else:
            self._note_change()
            self._in_use -= 1

    def use(self, hold: float) -> Generator[Any, Any, None]:
        """Process helper: acquire, hold for ``hold`` seconds, release.

        When the resource is free this skips the acquire Event entirely
        and yields the hold as a plain delay, which the process driver
        turns into a single heap entry — one dispatch per use instead of
        three.  Busy-time accounting is identical on both paths.
        """
        if self._in_use < self.capacity and not self._waiters:
            self._note_change()
            self._in_use += 1
        else:
            yield self.acquire()
        try:
            yield hold
        finally:
            self.release()


class CPU(Resource):
    """A processor with ``cores`` identical cores.

    Model code charges work through :meth:`execute` (a process helper) or
    accumulates aggregated nanosecond costs through a
    :class:`repro.copymodel.accounting.CopyAccountant` which eventually
    executes them here.
    """

    def __init__(self, sim: Simulator, cores: int = 1, name: str = "cpu") -> None:
        super().__init__(sim, capacity=cores, name=name)

    def execute(self, seconds: float) -> Generator[Event, Any, None]:
        """Occupy one core for ``seconds`` of work (FIFO queueing)."""
        if seconds < 0:
            raise SimulationError(f"negative CPU cost {seconds!r}")
        if seconds == 0.0:
            return
        yield from self.use(seconds)

    def execute_ns(self, nanoseconds: float) -> Generator[Event, Any, None]:
        yield from self.execute(nanoseconds * 1e-9)


class Link:
    """A unidirectional link with fixed bandwidth and propagation latency.

    Transmissions serialize FIFO on the link; propagation latency is added
    after serialization and does not occupy the link (pipelining).
    Full-duplex paths are modelled as two independent ``Link`` objects.
    """

    def __init__(self, sim: Simulator, bandwidth_bps: float,
                 latency_s: float = 10e-6, name: str = "link") -> None:
        if bandwidth_bps <= 0:
            raise SimulationError("bandwidth must be positive")
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.latency_s = latency_s
        self.name = name
        self._resource = Resource(sim, capacity=1, name=name)
        self.bytes_sent = 0

    def serialization_delay(self, nbytes: int) -> float:
        return nbytes * 8.0 / self.bandwidth_bps

    def busy_time(self) -> float:
        return self._resource.busy_time()

    def utilization(self, since_busy: float, since_time: float) -> float:
        return self._resource.utilization(since_busy, since_time)

    def transmit(self, nbytes: int) -> Generator[Event, Any, None]:
        """Occupy the link while ``nbytes`` serialize, then wait latency.

        Returns (as the process value) the time at which the last bit
        arrives at the far end.
        """
        if nbytes < 0:
            raise SimulationError("negative transmit size")
        self.bytes_sent += nbytes
        yield from self._resource.use(self.serialization_delay(nbytes))
        if self.latency_s:
            yield self.latency_s  # plain delay: no Event needed
        return self.sim.now


class Store:
    """An unbounded FIFO queue connecting producer and consumer processes."""

    def __init__(self, sim: Simulator, name: str = "store") -> None:
        self.sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = self.sim.event()
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self._items)
