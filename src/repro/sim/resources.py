"""Contended resources: generic FIFO resource, CPUs and links.

All resources account *busy time* so experiments can report utilization,
which is one of the two quantities the paper plots (the other being
throughput).  Accounting counts resource-seconds: a 2-core CPU busy on both
cores for 1s accumulates 2 busy-seconds; utilization over a window divides
by ``capacity * window``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Generator

from .engine import Event, SimulationError, Simulator


class Resource:
    """A FIFO-served resource with ``capacity`` identical slots."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: deque[Event] = deque()
        # busy accounting
        self._busy_accum = 0.0
        self._last_change = 0.0

    # -- accounting ------------------------------------------------------

    def _note_change(self) -> None:
        now = self.sim.now
        self._busy_accum += self._in_use * (now - self._last_change)
        self._last_change = now

    def busy_time(self) -> float:
        """Cumulative resource-seconds of busy time up to now."""
        return self._busy_accum + self._in_use * (self.sim.now - self._last_change)

    def utilization(self, since_busy: float, since_time: float) -> float:
        """Utilization between a past snapshot and now.

        ``since_busy``/``since_time`` are a prior ``(busy_time(), sim.now)``
        snapshot pair.
        """
        window = self.sim.now - since_time
        if window <= 0:
            return 0.0
        return (self.busy_time() - since_busy) / (self.capacity * window)

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    # -- acquire / release -----------------------------------------------

    def acquire(self) -> Event:
        """Request one slot; the returned event triggers when granted."""
        ev = self.sim.event()
        if self._in_use < self.capacity and not self._waiters:
            self._note_change()
            self._in_use += 1
            ev.succeed(self)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            # Hand the slot directly to the next waiter; _in_use unchanged.
            ev = self._waiters.popleft()
            ev.succeed(self)
        else:
            self._note_change()
            self._in_use -= 1

    def use(self, hold: float) -> Generator[Any, Any, None]:
        """Process helper: acquire, hold for ``hold`` seconds, release.

        When the resource is free this skips the acquire Event entirely
        and yields the hold as a plain delay, which the process driver
        turns into a single heap entry — one dispatch per use instead of
        three.  Busy-time accounting is identical on both paths.
        """
        if self._in_use < self.capacity and not self._waiters:
            self._note_change()
            self._in_use += 1
        else:
            yield self.acquire()
        try:
            yield hold
        finally:
            self.release()


class CPU:
    """A processor with ``cores`` identical cores.

    Model code charges work through :meth:`execute` (a process helper) or
    accumulates aggregated nanosecond costs through a
    :class:`repro.copymodel.accounting.CopyAccountant` which eventually
    executes them here.

    Like :class:`Link`, the CPU is a FIFO queue with deterministic
    service times, so it runs on per-core *virtual clocks* instead of an
    event-driven resource: a charge arriving at ``t`` books the
    earliest-free core and starts at ``max(t, that core's next-free)``
    — exactly the start time FIFO hand-off would produce — and the
    charging process sleeps once, until the work completes.  A CPU
    charge is the single hottest operation in the tree (~10^6 per quick
    experiment), and under saturation (the paper's operating point for
    ORIGINAL mode) the resource version paid an extra grant event plus
    two dispatches per queued charge.
    """

    def __init__(self, sim: Simulator, cores: int = 1, name: str = "cpu") -> None:
        if cores < 1:
            raise SimulationError(f"cores must be >= 1, got {cores}")
        self.sim = sim
        self.capacity = cores
        self.name = name
        #: per-core next-free times (virtual clocks).
        self._free = [0.0] * cores
        self._booked = 0.0

    def _admit(self, seconds: float) -> float:
        """Book ``seconds`` on the earliest-free core; returns the delay
        from now until the work completes."""
        now = self.sim.now
        free = self._free
        if len(free) == 1:
            nf = free[0]
            finish = (nf if nf > now else now) + seconds
            free[0] = finish
        else:
            i = min(range(len(free)), key=free.__getitem__)
            nf = free[i]
            finish = (nf if nf > now else now) + seconds
            free[i] = finish
        self._booked += seconds
        return finish - now

    def busy_time(self) -> float:
        """Cumulative busy core-seconds up to now (in-flight pro rata)."""
        now = self.sim.now
        ahead = 0.0
        for f in self._free:
            if f > now:
                ahead += f - now
        return self._booked - ahead

    def utilization(self, since_busy: float, since_time: float) -> float:
        window = self.sim.now - since_time
        if window <= 0:
            return 0.0
        return (self.busy_time() - since_busy) / (self.capacity * window)

    def execute(self, seconds: float) -> Generator[Event, Any, None]:
        """Occupy one core for ``seconds`` of work (FIFO queueing)."""
        if seconds < 0:
            raise SimulationError(f"negative CPU cost {seconds!r}")
        if seconds == 0.0:
            return
        yield self._admit(seconds)  # queueing delay + hold, one dispatch

    def execute_ns(self, nanoseconds: float) -> Generator[Event, Any, None]:
        # Plain function returning the generator: callers ``yield from``
        # it either way, and this drops one delegation frame per charge.
        return self.execute(nanoseconds * 1e-9)


class Link:
    """A unidirectional link with fixed bandwidth and propagation latency.

    Transmissions serialize FIFO on the link; propagation latency is added
    after serialization and does not occupy the link (pipelining).
    Full-duplex paths are modelled as two independent ``Link`` objects.

    A capacity-1 FIFO queue with deterministic service times needs no
    event-driven resource: the link keeps a *virtual clock*
    (``_next_free``).  A burst arriving at ``t`` starts serializing at
    ``max(t, next_free)`` and finishes ``serialization_delay`` later —
    byte-identical timing to an acquire/hold/release resource, at one
    scheduled callback per transmission instead of two or three.  Busy
    accounting is exact: everything between ``now`` and ``next_free`` is
    a contiguous busy block (queued bursts run back to back and updates
    only happen at arrival times), so the busy time *up to now* is the
    total serialization booked minus the part of that block still ahead.
    """

    def __init__(self, sim: Simulator, bandwidth_bps: float,
                 latency_s: float = 10e-6, name: str = "link") -> None:
        if bandwidth_bps <= 0:
            raise SimulationError("bandwidth must be positive")
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.latency_s = latency_s
        self.name = name
        self.bytes_sent = 0
        self._next_free = 0.0
        self._ser_total = 0.0

    def serialization_delay(self, nbytes: int) -> float:
        return nbytes * 8.0 / self.bandwidth_bps

    def busy_time(self) -> float:
        """Cumulative busy seconds up to now (in-flight bursts pro rata)."""
        ahead = self._next_free - self.sim.now
        return self._ser_total - ahead if ahead > 0.0 else self._ser_total

    def utilization(self, since_busy: float, since_time: float) -> float:
        window = self.sim.now - since_time
        if window <= 0:
            return 0.0
        return (self.busy_time() - since_busy) / window

    def _admit(self, nbytes: int) -> float:
        """Book a burst on the virtual clock; returns the delivery delay."""
        if nbytes < 0:
            raise SimulationError("negative transmit size")
        self.bytes_sent += nbytes
        ser = nbytes * 8.0 / self.bandwidth_bps
        now = self.sim.now
        nf = self._next_free
        finish = (nf if nf > now else now) + ser
        self._next_free = finish
        self._ser_total += ser
        return finish - now + self.latency_s

    def transmit_then(self, nbytes: int, fn: Callable[..., None],
                      *args: Any) -> None:
        """Callback form of :meth:`transmit` for the per-datagram path:
        ``fn(*args)`` runs when the last bit arrives at the far end —
        one scheduled callback, no Process machinery."""
        self.sim.schedule(self._admit(nbytes), fn, *args)

    def transmit(self, nbytes: int) -> Generator[Event, Any, None]:
        """Occupy the link while ``nbytes`` serialize, then wait latency.

        Returns (as the process value) the time at which the last bit
        arrives at the far end.
        """
        yield self._admit(nbytes)  # plain delay: no Event needed
        return self.sim.now


class Store:
    """An unbounded FIFO queue connecting producer and consumer processes."""

    def __init__(self, sim: Simulator, name: str = "store") -> None:
        self.sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = self.sim.event()
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self._items)
