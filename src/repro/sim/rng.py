"""Deterministic randomness for simulations.

Every stochastic component takes an explicit seed and derives independent
streams through :func:`substream`, so adding a new consumer of randomness
never perturbs existing ones — a property the regression tests rely on.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator


def substream(seed: int, *labels: object) -> random.Random:
    """Derive an independent :class:`random.Random` from ``seed`` + labels.

    The derivation hashes the labels, so ``substream(7, "clients", 3)`` is
    stable across runs and across unrelated code changes.
    """
    digest = hashlib.sha256(repr((seed,) + labels).encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def zipf_weights(n: int, alpha: float = 1.0) -> list[float]:
    """Normalized Zipf popularity weights for ranks ``1..n``.

    SPECweb99-style content popularity follows Zipf's law (Breslau et al.);
    ``alpha=1`` is the classic form used in the paper's reference [7].
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    raw = [1.0 / (rank ** alpha) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


class ZipfSampler:
    """Samples ranks ``0..n-1`` from a Zipf(alpha) popularity distribution.

    Uses inverse-CDF binary search over precomputed cumulative weights:
    O(log n) per sample, exact, deterministic for a fixed RNG.
    """

    def __init__(self, n: int, alpha: float, rng: random.Random) -> None:
        self.n = n
        self.alpha = alpha
        self._rng = rng
        weights = zipf_weights(n, alpha)
        self._cdf: list[float] = []
        acc = 0.0
        for w in weights:
            acc += w
            self._cdf.append(acc)
        self._cdf[-1] = 1.0  # guard against float drift

    def sample(self) -> int:
        u = self._rng.random()
        lo, hi = 0, self.n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def __iter__(self) -> Iterator[int]:
        while True:
            yield self.sample()
