"""Measurement helpers: counters, throughput meters, utilization windows.

Experiments follow a warmup/measure protocol: run the workload, call
:meth:`MeterSet.reset` at the end of warmup, read meters at the end of the
measurement window.  Everything is pull-based; nothing samples on a timer,
so the meters add no events to the simulation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:
    from .engine import Simulator


class Counter:
    """A named monotonically increasing counter with reset snapshots."""

    __slots__ = ("name", "_total", "_mark")

    def __init__(self, name: str) -> None:
        self.name = name
        self._total = 0.0
        self._mark = 0.0

    def add(self, amount: float = 1.0) -> None:
        self._total += amount

    def reset(self) -> None:
        self._mark = self._total

    @property
    def total(self) -> float:
        """Grand total since construction."""
        return self._total

    @property
    def value(self) -> float:
        """Total since the last :meth:`reset`."""
        return self._total - self._mark

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class CounterSet:
    """A lazily populated namespace of counters."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}

    def __getitem__(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def add(self, name: str, amount: float = 1.0) -> None:
        self[name].add(amount)

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()

    def snapshot(self) -> Dict[str, float]:
        """Values since last reset, for every counter ever touched."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    def totals(self) -> Dict[str, float]:
        return {name: c.total for name, c in sorted(self._counters.items())}

    def __contains__(self, name: str) -> bool:
        return name in self._counters


class ThroughputMeter:
    """Tracks completed bytes and operations over a measurement window."""

    def __init__(self, sim: "Simulator", name: str = "throughput") -> None:
        self.sim = sim
        self.name = name
        self.bytes = Counter(name + ".bytes")
        self.ops = Counter(name + ".ops")
        self._window_start = sim.now

    def record(self, nbytes: int, ops: int = 1) -> None:
        self.bytes.add(nbytes)
        self.ops.add(ops)

    def reset(self) -> None:
        self.bytes.reset()
        self.ops.reset()
        self._window_start = self.sim.now

    @property
    def window(self) -> float:
        return self.sim.now - self._window_start

    def bytes_per_second(self) -> float:
        return self.bytes.value / self.window if self.window > 0 else 0.0

    def mb_per_second(self) -> float:
        return self.bytes_per_second() / (1024.0 * 1024.0)

    def ops_per_second(self) -> float:
        return self.ops.value / self.window if self.window > 0 else 0.0


class UtilizationWindow:
    """Windowed utilization of a :class:`Resource` or :class:`Link`."""

    def __init__(self, resource, sim: "Simulator") -> None:
        self.resource = resource
        self.sim = sim
        self.reset()

    def reset(self) -> None:
        self._busy0 = self.resource.busy_time()
        self._time0 = self.sim.now

    def utilization(self) -> float:
        return self.resource.utilization(self._busy0, self._time0)


class LatencyStats:
    """Streaming latency statistics with percentile estimation.

    Moments are exact and allocation-free; percentiles come from a
    bounded reservoir (deterministic, seeded by sample count so identical
    runs yield identical reservoirs).
    """

    RESERVOIR_SIZE = 1024

    def __init__(self) -> None:
        self.reset()

    def record(self, sample: float) -> None:
        self.count += 1
        self.total += sample
        self._sumsq += sample * sample
        if sample < self.min:
            self.min = sample
        if sample > self.max:
            self.max = sample
        if len(self._reservoir) < self.RESERVOIR_SIZE:
            self._reservoir.append(sample)
        else:
            # Deterministic reservoir sampling: a multiplicative-hash
            # "random" slot from the sample index alone.
            slot = (self.count * 2654435761) % self.count
            if slot < self.RESERVOIR_SIZE:
                self._reservoir[slot] = sample

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        mean = self.mean
        return max(0.0, self._sumsq / self.count - mean * mean)

    def percentile(self, fraction: float) -> float:
        """Approximate percentile (exact below RESERVOIR_SIZE samples)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction {fraction} outside [0, 1]")
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        self._sumsq = 0.0
        self._reservoir: list = []


class MeterSet:
    """Bundle of all meters an experiment resets at the warmup boundary."""

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.counters = CounterSet()
        self.throughput = ThroughputMeter(sim)
        self.latency = LatencyStats()
        self._utilizations: Dict[str, UtilizationWindow] = {}

    def watch(self, name: str, resource) -> UtilizationWindow:
        window = UtilizationWindow(resource, self.sim)
        self._utilizations[name] = window
        return window

    def utilization(self, name: str) -> float:
        return self._utilizations[name].utilization()

    def reset(self) -> None:
        self.counters.reset()
        self.throughput.reset()
        self.latency.reset()
        for window in self._utilizations.values():
            window.reset()
