"""Measurement helpers: counters, throughput meters, utilization windows.

Experiments follow a warmup/measure protocol: run the workload, call
:meth:`MeterSet.reset` at the end of warmup, read meters at the end of the
measurement window.  Everything is pull-based; nothing samples on a timer,
so the meters add no events to the simulation.

The counter substrate now lives in :mod:`repro.obs.metrics`: a
:class:`MeterSet` owns a :class:`~repro.obs.metrics.MetricsRegistry` of
declared counters and latency/size histograms, and :class:`CounterSet`
remains only as a thin deprecated shim over a registry so existing
``counters["nfs.drc_hit"]`` call sites keep working.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from ..obs.metrics import Counter, Histogram, MetricsRegistry

if TYPE_CHECKING:
    from .engine import Simulator


class CounterSet:
    """A lazily populated namespace of counters.

    .. deprecated::
        Thin shim over :class:`~repro.obs.metrics.MetricsRegistry`;
        new code should declare metrics on a registry directly
        (``registry.counter("nfs.read.bytes", unit="bytes")``).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    def __getitem__(self, name: str) -> Counter:
        return self.registry.counter(name)

    def add(self, name: str, amount: float = 1.0) -> None:
        # Hot path (every copy, checksum and protocol op lands here):
        # bypass the declare-or-get call for the common re-access case.
        metric = self.registry._metrics.get(name)
        if metric is None or metric.__class__ is not Counter:
            metric = self.registry.counter(name)
        metric._total += amount

    def reset(self) -> None:
        for counter in self.registry.counters():
            counter.reset()

    def snapshot(self) -> Dict[str, float]:
        """Values since last reset, for every counter ever touched."""
        return {c.name: c.value
                for c in sorted(self.registry.counters(),
                                key=lambda c: c.name)}

    def totals(self) -> Dict[str, float]:
        return {c.name: c.total
                for c in sorted(self.registry.counters(),
                                key=lambda c: c.name)}

    def __contains__(self, name: str) -> bool:
        metric = self.registry.get(name)
        return metric is not None and metric.__class__ is Counter


class ThroughputMeter:
    """Tracks completed bytes and operations over a measurement window."""

    def __init__(self, sim: "Simulator", name: str = "throughput") -> None:
        self.sim = sim
        self.name = name
        self.bytes = Counter(name + ".bytes")
        self.ops = Counter(name + ".ops")
        self._window_start = sim.now

    def record(self, nbytes: int, ops: int = 1) -> None:
        self.bytes.add(nbytes)
        self.ops.add(ops)

    def reset(self) -> None:
        self.bytes.reset()
        self.ops.reset()
        self._window_start = self.sim.now

    @property
    def window(self) -> float:
        return self.sim.now - self._window_start

    def bytes_per_second(self) -> float:
        return self.bytes.value / self.window if self.window > 0 else 0.0

    def mb_per_second(self) -> float:
        return self.bytes_per_second() / (1024.0 * 1024.0)

    def ops_per_second(self) -> float:
        return self.ops.value / self.window if self.window > 0 else 0.0


class UtilizationWindow:
    """Windowed utilization of a :class:`Resource` or :class:`Link`."""

    def __init__(self, resource, sim: "Simulator") -> None:
        self.resource = resource
        self.sim = sim
        self.reset()

    def reset(self) -> None:
        self._busy0 = self.resource.busy_time()
        self._time0 = self.sim.now

    def utilization(self) -> float:
        return self.resource.utilization(self._busy0, self._time0)


class LatencyStats:
    """Streaming latency statistics with percentile estimation.

    Moments are exact and allocation-free; percentiles come from a
    bounded reservoir (deterministic, seeded by sample count so identical
    runs yield identical reservoirs).
    """

    RESERVOIR_SIZE = 1024

    def __init__(self) -> None:
        self.reset()

    def record(self, sample: float) -> None:
        self.count += 1
        self.total += sample
        self._sumsq += sample * sample
        if sample < self.min:
            self.min = sample
        if sample > self.max:
            self.max = sample
        if len(self._reservoir) < self.RESERVOIR_SIZE:
            self._reservoir.append(sample)
        else:
            # Deterministic reservoir sampling: a multiplicative-hash
            # "random" slot from the sample index alone.
            slot = (self.count * 2654435761) % self.count
            if slot < self.RESERVOIR_SIZE:
                self._reservoir[slot] = sample

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        mean = self.mean
        return max(0.0, self._sumsq / self.count - mean * mean)

    def percentile(self, fraction: float) -> float:
        """Approximate percentile (exact below RESERVOIR_SIZE samples)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction {fraction} outside [0, 1]")
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        self._sumsq = 0.0
        self._reservoir: list = []


class MeterSet:
    """Bundle of all meters an experiment resets at the warmup boundary.

    Owns a :class:`~repro.obs.metrics.MetricsRegistry`; besides the
    legacy pull-based meters it declares per-request latency and size
    histograms (``request.latency``, ``request.bytes``) that workloads
    feed through :meth:`record_request`, giving every experiment
    p50/p95/p99 percentiles over the measurement window for free.
    """

    def __init__(self, sim: "Simulator",
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.sim = sim
        self.registry = registry if registry is not None else MetricsRegistry()
        self.counters = CounterSet(self.registry)
        self.throughput = ThroughputMeter(sim)
        self.latency = LatencyStats()
        self.request_latency: Histogram = self.registry.histogram(
            "request.latency", unit="s")
        self.request_bytes: Histogram = self.registry.histogram(
            "request.bytes", unit="bytes")
        self._utilizations: Dict[str, UtilizationWindow] = {}

    def watch(self, name: str, resource) -> UtilizationWindow:
        window = UtilizationWindow(resource, self.sim)
        self._utilizations[name] = window
        return window

    def utilization(self, name: str) -> float:
        return self._utilizations[name].utilization()

    def utilizations(self) -> Dict[str, float]:
        """Current utilization of every watched resource, by name."""
        return {name: window.utilization()
                for name, window in self._utilizations.items()}

    def record_latency(self, latency_s: float) -> None:
        """Record one request's latency (streaming stats + histogram)."""
        self.latency.record(latency_s)
        self.request_latency.record(latency_s)

    def record_request(self, latency_s: float, nbytes: int,
                       ops: int = 1) -> None:
        """Record one completed request: latency, size, and throughput."""
        self.record_latency(latency_s)
        if nbytes:
            self.request_bytes.record(nbytes)
        self.throughput.record(nbytes, ops)

    def reset(self) -> None:
        self.registry.reset()
        self.throughput.reset()
        self.latency.reset()
        for window in self._utilizations.values():
            window.reset()
