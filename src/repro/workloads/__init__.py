"""Workload generators: micro-benchmarks, SPECsfs/SPECweb analogs, traces.

Every generator implements the :class:`~repro.workloads.base.Workload`
protocol (``bind``/``run``/``describe``); see :mod:`repro.workloads.base`.
"""

from .base import Workload, WorkloadBase, resolve_testbed
from .fleetzipf import FlashCrowd, FleetZipfWorkload, HotKeyStorm
from .microbench import AllHitReadWorkload, SequentialReadWorkload
from .specsfs import DEFAULT_SIZE_DIST, METADATA_MIX, SpecSfsWorkload
from .specweb import (
    SIZE_CLASSES,
    AllHitWebWorkload,
    SpecWebWorkload,
    build_file_set,
)
from .traceplayer import (
    TracePlayer,
    TraceRecord,
    hot_cold_trace,
    mixed_trace,
    sequential_read_trace,
)

__all__ = [
    "AllHitReadWorkload",
    "AllHitWebWorkload",
    "DEFAULT_SIZE_DIST",
    "FlashCrowd",
    "FleetZipfWorkload",
    "HotKeyStorm",
    "METADATA_MIX",
    "SIZE_CLASSES",
    "SequentialReadWorkload",
    "SpecSfsWorkload",
    "SpecWebWorkload",
    "TracePlayer",
    "TraceRecord",
    "Workload",
    "WorkloadBase",
    "build_file_set",
    "hot_cold_trace",
    "mixed_trace",
    "sequential_read_trace",
]
