"""Workload generators: micro-benchmarks, SPECsfs/SPECweb analogs, traces."""

from .microbench import AllHitReadWorkload, SequentialReadWorkload
from .specsfs import DEFAULT_SIZE_DIST, METADATA_MIX, SpecSfsWorkload
from .specweb import (
    SIZE_CLASSES,
    AllHitWebWorkload,
    SpecWebWorkload,
    build_file_set,
)
from .traceplayer import (
    TracePlayer,
    TraceRecord,
    hot_cold_trace,
    mixed_trace,
    sequential_read_trace,
)

__all__ = [
    "AllHitReadWorkload",
    "AllHitWebWorkload",
    "DEFAULT_SIZE_DIST",
    "METADATA_MIX",
    "SIZE_CLASSES",
    "SequentialReadWorkload",
    "SpecSfsWorkload",
    "SpecWebWorkload",
    "TracePlayer",
    "TraceRecord",
    "build_file_set",
    "hot_cold_trace",
    "mixed_trace",
    "sequential_read_trace",
]
