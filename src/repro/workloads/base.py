"""The unified ``Workload`` protocol: bind → run → describe.

Every generator in this package — micro-benchmarks, the SPECweb/SPECsfs
analogs, the trace player, the fleet Zipf driver — speaks the same
three-method protocol, so experiment harnesses (single-node or fleet)
compose them without per-kind special cases::

    wl = SpecWebWorkload(working_set_bytes=64 * MB)
    wl.bind(testbed_or_fleet)      # attach; creates files, picks clients
    wl.run(until=2.0)              # prewarm (if any) + start + sim.run
    wl.describe()                  # {"workload": ..., knobs...}

:class:`WorkloadBase` carries the shared mechanics.  Subclasses keep
their historical ``__init__(testbed, ...)`` signatures — passing a
target at construction binds immediately — and implement ``_bind`` (the
testbed-dependent setup that used to live in ``__init__``) plus
``_params`` (for ``describe``).  Fleet-aware workloads set
``fleet_aware = True`` and are bound to the whole
:class:`~repro.fleet.Fleet`; node-scoped workloads bound to a
single-node fleet are transparently unwrapped to its testbed.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Protocol, runtime_checkable

from ..servers.testbed import BaseTestbed, run_until_complete


@runtime_checkable
class Workload(Protocol):
    """What a workload driver may rely on."""

    def bind(self, target: Any) -> "Workload":
        """Attach to a testbed or fleet; returns self for chaining."""
        ...

    def run(self, until: float) -> None:
        """Prewarm (if the workload has one), start, and advance the
        simulation to ``until`` (absolute simulated seconds)."""
        ...

    def describe(self) -> Dict[str, Any]:
        """The workload's identity and knobs, JSON-serialisable."""
        ...


def resolve_testbed(target: Any) -> BaseTestbed:
    """A node-scoped workload's view of ``target``.

    Testbeds pass through; a single-node fleet unwraps to its one
    testbed; a multi-node fleet needs a fleet-aware workload.
    """
    if isinstance(target, BaseTestbed):
        return target
    nodes = getattr(target, "nodes", None)
    if nodes is not None:
        if len(nodes) == 1:
            return nodes[0].testbed
        raise ValueError(
            f"node-scoped workload cannot bind a {len(nodes)}-server "
            f"fleet; use a fleet-aware workload (e.g. FleetZipfWorkload)")
    raise TypeError(f"cannot bind workload to {target!r}")


class WorkloadBase:
    """Shared bind/run/describe mechanics for every workload kind."""

    #: fleet-aware workloads receive the :class:`~repro.fleet.Fleet`
    #: itself in ``_bind``; everyone else gets a resolved testbed.
    fleet_aware = False

    def __init__(self, target: Any = None) -> None:
        self._target: Any = None
        self._started = False
        self._prewarmed = False
        if target is not None:
            self.bind(target)

    # -- protocol ------------------------------------------------------------

    def bind(self, target: Any) -> "WorkloadBase":
        if self._target is not None:
            raise ValueError(f"{type(self).__name__} is already bound")
        resolved = target if self.fleet_aware else resolve_testbed(target)
        self._target = resolved
        self._bind(resolved)
        return self

    def run(self, until: float) -> None:
        if self._target is None:
            raise ValueError(f"{type(self).__name__} is not bound; "
                             f"call bind(testbed_or_fleet) first")
        sim = self._target.sim
        prewarm = getattr(self, "prewarm", None)
        if prewarm is not None and not self._prewarmed:
            self._prewarmed = True
            run_until_complete(sim, prewarm())
        if not self._started:
            self._started = True
            self.start()
        sim.run(until=until)

    def describe(self) -> Dict[str, Any]:
        return {"workload": type(self).__name__, **self._params()}

    # -- subclass hooks ------------------------------------------------------

    def _bind(self, target: Any) -> None:
        """Testbed-dependent setup (file creation, client selection)."""
        raise NotImplementedError

    def start(self) -> None:
        """Spawn the load-generating processes (idempotence not
        required; :meth:`run` calls it once)."""
        raise NotImplementedError

    def _params(self) -> Dict[str, Any]:
        """The knobs worth reporting in :meth:`describe`."""
        return {}

    # -- conveniences --------------------------------------------------------

    @property
    def bound(self) -> bool:
        return self._target is not None

    def _require_bound(self) -> Any:
        if self._target is None:
            raise ValueError(f"{type(self).__name__} is not bound")
        return self._target
