"""Fleet-scale Zipf workload: millions of logical clients, few processes.

Drives a :class:`~repro.fleet.Fleet` the way a production front end
would: every request belongs to one of ``n_logical_clients`` logical
clients (sampled per request — the clients are a *population*, not
simulated processes), file popularity is Zipf-skewed, and three
time-varying phenomena can be layered on top:

* **hot-key storm** — for a window, a fraction of all requests collapses
  onto one key (:class:`HotKeyStorm`);
* **flash crowd** — for a window, think times shrink fleet-wide, raising
  offered load (:class:`FlashCrowd`);
* **diurnal shift** — the popularity ranking rotates through the file
  set over ``diurnal_period_s``, so "tonight's hot set" differs from
  this morning's.

The load balancer (``fleet.route``) picks the serving node per request
by consistent hash of the touched block group, salted with the logical
client id so replicated groups spread across their owners.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..nfs.client import NfsClient
from ..sim.engine import AnyOf, Event
from ..sim.process import Process, start
from ..sim.rng import ZipfSampler, substream
from .base import WorkloadBase

KB = 1024


@dataclass(frozen=True)
class HotKeyStorm:
    """For ``[start_s, end_s)``, ``fraction`` of requests hit ``rank``."""

    start_s: float
    end_s: float
    fraction: float = 0.5
    rank: int = 0


@dataclass(frozen=True)
class FlashCrowd:
    """For ``[start_s, end_s)``, think times scale by ``think_scale``."""

    start_s: float
    end_s: float
    think_scale: float = 0.25


class FleetZipfWorkload(WorkloadBase):
    """Zipf-skewed reads over a fleet, routed by the load balancer."""

    fleet_aware = True

    def __init__(self, fleet: Any = None,
                 n_files: int = 192,
                 file_size: int = 256 * KB,
                 request_size: int = 32 * KB,
                 zipf_alpha: float = 0.9,
                 n_logical_clients: int = 1_000_000,
                 n_streams: int = 24,
                 think_time_s: float = 0.001,
                 storm: Optional[HotKeyStorm] = None,
                 crowd: Optional[FlashCrowd] = None,
                 diurnal_period_s: float = 0.0,
                 diurnal_drift: float = 0.5,
                 seed: int = 42,
                 prefix: str = "zipf") -> None:
        if file_size % request_size:
            raise ValueError("file_size must be a request_size multiple")
        self.n_files = n_files
        self.file_size = file_size
        self.request_size = request_size
        self.zipf_alpha = zipf_alpha
        self.n_logical_clients = n_logical_clients
        self.n_streams = n_streams
        self.think_time_s = think_time_s
        self.storm = storm
        self.crowd = crowd
        self.diurnal_period_s = diurnal_period_s
        self.diurnal_drift = diurnal_drift
        self.seed = seed
        self.prefix = prefix
        self.paths: List[str] = []
        self._handles: Dict[tuple, Any] = {}
        self._processes: List[Process] = []
        super().__init__(fleet)

    # -- binding -------------------------------------------------------------

    def _bind(self, fleet: Any) -> None:
        self.fleet = fleet
        for i in range(self.n_files):
            path = f"{self.prefix}/{i:06d}"
            fleet.create_file(path, self.file_size)
            self.paths.append(path)

    def _params(self) -> Dict[str, Any]:
        return {"n_files": self.n_files, "file_size": self.file_size,
                "request_size": self.request_size,
                "zipf_alpha": self.zipf_alpha,
                "n_logical_clients": self.n_logical_clients,
                "n_streams": self.n_streams,
                "think_time_s": self.think_time_s,
                "storm": self.storm is not None,
                "crowd": self.crowd is not None,
                "diurnal_period_s": self.diurnal_period_s,
                "seed": self.seed}

    # -- request shaping -----------------------------------------------------

    def _file_index(self, rank: int, now: float, rng: Any) -> int:
        if self.storm is not None \
                and self.storm.start_s <= now < self.storm.end_s \
                and rng.random() < self.storm.fraction:
            return self.storm.rank % self.n_files
        shift = 0
        if self.diurnal_period_s > 0:
            phase = (now % self.diurnal_period_s) / self.diurnal_period_s
            shift = int(self.n_files * self.diurnal_drift * phase)
        return (rank + shift) % self.n_files

    def _think_time(self, now: float) -> float:
        think = self.think_time_s
        if self.crowd is not None \
                and self.crowd.start_s <= now < self.crowd.end_s:
            think *= self.crowd.think_scale
        return think

    # -- load generation -----------------------------------------------------

    def start(self) -> None:
        fleet = self._require_bound()
        for s in range(self.n_streams):
            rng = substream(self.seed, "fleetzipf", s)
            sampler = ZipfSampler(self.n_files, self.zipf_alpha,
                                  substream(self.seed, "fleetzipf-rank", s))
            self._processes.append(
                start(fleet.sim, self._stream(rng, sampler),
                      name=f"fleetzipf-{s}"))

    def _stream(self, rng: Any, sampler: ZipfSampler
                ) -> Any:
        fleet = self.fleet
        slots = self.file_size // self.request_size
        while True:
            now = fleet.sim.now
            logical = rng.randrange(self.n_logical_clients)
            index = self._file_index(sampler.sample(), now, rng)
            path = self.paths[index]
            offset = rng.randrange(slots) * self.request_size
            issued_at = fleet.sim.now
            while True:
                node = fleet.route(path, offset, salt=logical)
                if not fleet.dynamic:
                    nbytes = yield from self._issue(node, path, offset,
                                                    logical)
                    break
                # Under membership dynamics, race the request against
                # the serving node's down event: if the node crashes
                # mid-flight the stream reroutes immediately instead of
                # riding the NFS retransmission schedule.  The stranded
                # sub-process dies quietly when its retries run out.
                sub = start(fleet.sim,
                            self._issue(node, path, offset, logical),
                            name="fleetzipf-issue")
                which, value = yield AnyOf(fleet.sim,
                                           [sub, node.down_event])
                if which != 0:
                    fleet.note_inflight_retry()
                    continue
                if sub.failed:
                    raise value
                nbytes = value
                break
            testbed = node.testbed
            testbed.meters.record_request(fleet.sim.now - issued_at, nbytes)
            testbed.server_host.counters.add("fleet.served")
            think = self._think_time(now)
            if think > 0:
                yield think  # plain delay: no Event, one dispatch

    def _issue(self, node: Any, path: str, offset: int, logical: int
               ) -> Any:
        """One request against ``node``; NFS if it has NFS clients,
        kHTTPd otherwise.  Returns the bytes served."""
        testbed = node.testbed
        clients = getattr(testbed, "clients", None)
        if clients:
            client: NfsClient = clients[logical % len(clients)]
            fh = self._handles.get((node.index, path))
            if fh is None:
                fh = testbed.file_handle(path)
                self._handles[(node.index, path)] = fh
            dgram = yield from client.read(fh, offset, self.request_size)
            return dgram.message.count
        http_clients = testbed.http_clients
        http = http_clients[logical % len(http_clients)]
        response, _dgram = yield from http.get(path)
        return response.content_length
