"""Micro-benchmarks: the all-miss and all-hit workloads of §5.3/§5.4.

* **all-miss** — "sequentially read a big file (2 GB)": each client runs
  sequential read streams over its own large file; the server cache is
  smaller than the footprint, so every request misses and goes to iSCSI.
* **all-hit** — "repetitively access a small file (5 MB)": after one
  warmup pass everything is served from cache.

Both are closed-loop: each stream keeps one request outstanding; load
scales with ``streams_per_client`` (the paper scales nfsd count and client
processes the same way).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from ..nfs.client import NfsClient
from ..nfs.protocol import FileHandle
from ..servers.testbed import NfsTestbed
from ..sim.engine import Event
from ..sim.process import Process, start
from ..sim.rng import substream
from .base import WorkloadBase

GB = 1 << 30
MB = 1 << 20


class SequentialReadWorkload(WorkloadBase):
    """All-miss workload: sequential streams over per-stream large files."""

    def __init__(self, testbed: Optional[NfsTestbed] = None,
                 request_size: int = 32768,
                 file_size: int = 2 * GB,
                 streams_per_client: int = 4) -> None:
        if file_size % request_size:
            file_size -= file_size % request_size
        self.request_size = request_size
        self.file_size = file_size
        self.streams_per_client = streams_per_client
        self._processes: List[Process] = []
        self._handles: List[FileHandle] = []
        super().__init__(testbed)

    def _bind(self, testbed: NfsTestbed) -> None:
        if self.request_size % testbed.image.block_size:
            raise ValueError("request size must be block-aligned")
        self.testbed = testbed
        for c in range(len(testbed.clients)):
            for s in range(self.streams_per_client):
                name = f"seqread-{c}-{s}"
                testbed.image.create_file(name, self.file_size)
                self._handles.append(testbed.file_handle(name))

    def _params(self) -> Dict[str, Any]:
        return {"request_size": self.request_size,
                "file_size": self.file_size,
                "streams_per_client": self.streams_per_client}

    def start(self) -> None:
        total = len(self._handles)
        i = 0
        for c, client in enumerate(self.testbed.clients):
            for s in range(self.streams_per_client):
                fh = self._handles[i]
                # Stagger stream phases across the file so concurrent
                # streams spread over the RAID stripes instead of
                # convoying on one disk.  The extra ``+ 17 * i`` requests
                # shift each stream by a non-multiple of the stripe round
                # so starts land on different disks regardless of request
                # size (file sizes are whole numbers of stripe rounds).
                requests = self.file_size // self.request_size
                first = ((requests * i // total + 17 * i) % requests) \
                    * self.request_size
                i += 1
                self._processes.append(
                    start(self.testbed.sim, self._stream(client, fh, first),
                          name=f"seqread-{c}-{s}"))

    def _stream(self, client: NfsClient, fh: FileHandle, offset: int = 0
                ) -> Generator[Event, Any, None]:
        meters = self.testbed.meters
        while True:
            issued_at = self.testbed.sim.now
            dgram = yield from client.read(fh, offset, self.request_size)
            meters.record_request(self.testbed.sim.now - issued_at,
                                  dgram.message.count)
            offset += self.request_size
            if offset + self.request_size > self.file_size:
                offset = 0


class AllHitReadWorkload(WorkloadBase):
    """All-hit workload: repeated reads over one small shared file."""

    def __init__(self, testbed: Optional[NfsTestbed] = None,
                 request_size: int = 32768,
                 file_size: int = 5 * MB,
                 streams_per_client: int = 4,
                 seed: int = 7) -> None:
        self.request_size = request_size
        # Round the file down to a whole number of requests.
        self.n_slots = max(1, file_size // request_size)
        self.file_size = self.n_slots * request_size
        self.streams_per_client = streams_per_client
        self.seed = seed
        self._processes: List[Process] = []
        super().__init__(testbed)

    def _bind(self, testbed: NfsTestbed) -> None:
        if self.request_size % testbed.image.block_size:
            raise ValueError("request size must be block-aligned")
        self.testbed = testbed
        testbed.image.create_file("hotfile", self.file_size)
        self.fh = testbed.file_handle("hotfile")

    def _params(self) -> Dict[str, Any]:
        return {"request_size": self.request_size,
                "file_size": self.file_size,
                "streams_per_client": self.streams_per_client,
                "seed": self.seed}

    def prewarm(self) -> Process:
        """One sequential pass to populate the caches (run before
        measurement; the paper's warmup)."""
        return start(self.testbed.sim, self._prewarm(), name="prewarm")

    def _prewarm(self) -> Generator[Event, Any, None]:
        client = self.testbed.clients[0]
        for slot in range(self.n_slots):
            yield from client.read(self.fh, slot * self.request_size,
                                   self.request_size)

    def start(self) -> None:
        for c, client in enumerate(self.testbed.clients):
            for s in range(self.streams_per_client):
                rng = substream(self.seed, "allhit", c, s)
                self._processes.append(
                    start(self.testbed.sim, self._stream(client, rng),
                          name=f"allhit-{c}-{s}"))

    def _stream(self, client: NfsClient, rng
                ) -> Generator[Event, Any, None]:
        meters = self.testbed.meters
        while True:
            slot = rng.randrange(self.n_slots)
            issued_at = self.testbed.sim.now
            dgram = yield from client.read(
                self.fh, slot * self.request_size, self.request_size)
            meters.record_request(self.testbed.sim.now - issued_at,
                                  dgram.message.count)
