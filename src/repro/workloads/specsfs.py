"""SPECsfs-like synthetic NFS workload (§5.3, Figure 7).

SPEC SFS97 itself is licensed and unavailable; this generator reproduces
the knobs the paper actually uses:

* total filesystem size 2 GB, accessed file set 10% of it;
* read:write ratio held at the default 5:1 among regular-data ops;
* "default size distribution for regular data requests, in which small
  sized requests (< 16 KB) dominate";
* a sweep over the *percentage of requests that access regular data* (as
  opposed to metadata), which is Figure 7's x-axis.

Throughput is reported in operations/second over all ops, as SPECsfs does.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Generator,
    List,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:
    # Type-only: every worker takes an injected stream derived via
    # repro.sim.rng.substream; the stdlib module is never called here.
    import random

from ..net.buffer import VirtualPayload
from ..nfs.client import NfsClient
from ..nfs.protocol import FileHandle, NfsProc
from ..servers.testbed import NfsTestbed
from ..sim.engine import Event
from ..sim.process import Process, start
from ..sim.rng import substream
from .base import WorkloadBase

GB = 1 << 30

#: Request-size distribution: small (<16 KB) requests dominate.
DEFAULT_SIZE_DIST: Sequence[Tuple[int, float]] = (
    (4096, 0.45), (8192, 0.25), (16384, 0.18), (32768, 0.12))

#: Metadata op mix (relative weights within the metadata fraction).
METADATA_MIX: Sequence[Tuple[NfsProc, float]] = (
    (NfsProc.GETATTR, 0.45), (NfsProc.LOOKUP, 0.35),
    (NfsProc.ACCESS, 0.15), (NfsProc.READDIR, 0.05))


def _weighted_choice(rng: random.Random,
                     items: Sequence[Tuple[Any, float]]) -> Any:
    u = rng.random() * sum(w for _, w in items)
    acc = 0.0
    for value, weight in items:
        acc += weight
        if u <= acc:
            return value
    return items[-1][0]


class SpecSfsWorkload(WorkloadBase):
    """Closed-loop op-mix generator over a pre-created file set."""

    def __init__(self, testbed: Optional[NfsTestbed] = None,
                 pct_regular: float = 0.75,
                 read_write_ratio: float = 5.0,
                 fs_size_bytes: int = 2 * GB,
                 active_fraction: float = 0.10,
                 file_size: int = 256 * 1024,
                 size_dist: Sequence[Tuple[int, float]] = DEFAULT_SIZE_DIST,
                 outstanding_per_client: int = 8,
                 seed: int = 11) -> None:
        if not 0.0 <= pct_regular <= 1.0:
            raise ValueError("pct_regular must be in [0, 1]")
        self.pct_regular = pct_regular
        self.read_write_ratio = read_write_ratio
        self.size_dist = tuple(size_dist)
        self.outstanding_per_client = outstanding_per_client
        self.seed = seed
        active_bytes = int(fs_size_bytes * active_fraction)
        self.n_files = max(1, active_bytes // file_size)
        self.file_size = file_size
        self.handles: List[FileHandle] = []
        self.names: List[str] = []
        self._write_tag = 0x5F5 << 32
        self._processes: List[Process] = []
        super().__init__(testbed)

    def _bind(self, testbed: NfsTestbed) -> None:
        self.testbed = testbed
        for i in range(self.n_files):
            name = f"sfs/{i:06d}"
            testbed.image.create_file(name, self.file_size)
            self.handles.append(testbed.file_handle(name))
            self.names.append(name)

    def _params(self) -> Dict[str, Any]:
        return {"pct_regular": self.pct_regular,
                "read_write_ratio": self.read_write_ratio,
                "n_files": self.n_files, "file_size": self.file_size,
                "outstanding_per_client": self.outstanding_per_client,
                "seed": self.seed}

    def start(self) -> None:
        for c, client in enumerate(self.testbed.clients):
            for s in range(self.outstanding_per_client):
                rng = substream(self.seed, "sfs", c, s)
                self._processes.append(
                    start(self.testbed.sim, self._worker(client, rng),
                          name=f"sfs-{c}-{s}"))

    # -- op generation -------------------------------------------------------

    def _pick_extent(self, rng: random.Random) -> Tuple[int, int]:
        size = _weighted_choice(rng, self.size_dist)
        size = min(size, self.file_size)
        slots = self.file_size // size
        return rng.randrange(slots) * size, size

    def _worker(self, client: NfsClient, rng: random.Random
                ) -> Generator[Event, Any, None]:
        meters = self.testbed.meters
        read_fraction = self.read_write_ratio / (self.read_write_ratio + 1.0)
        while True:
            fidx = rng.randrange(self.n_files)
            fh = self.handles[fidx]
            issued_at = self.testbed.sim.now
            if rng.random() < self.pct_regular:
                offset, size = self._pick_extent(rng)
                if rng.random() < read_fraction:
                    dgram = yield from client.read(fh, offset, size)
                    meters.throughput.record(dgram.message.count)
                else:
                    self._write_tag += 1
                    data = VirtualPayload(self._write_tag, 0, size)
                    dgram = yield from client.write(fh, offset, data)
                    meters.throughput.record(dgram.message.count)
            else:
                proc = _weighted_choice(rng, METADATA_MIX)
                if proc is NfsProc.LOOKUP:
                    yield from client.lookup(self.names[fidx])
                elif proc is NfsProc.READDIR:
                    yield from client.call(proc, name=self.names[fidx])
                else:
                    yield from client.call(proc, fh=fh)
                meters.throughput.record(0)
            meters.record_latency(self.testbed.sim.now - issued_at)
