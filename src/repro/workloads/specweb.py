"""SPECweb99-like static web workload (§5.3, Figure 6).

Models what the paper reports using: static pages only, popularity "in
compliance with Zipf's law", an average accessed page size of ~75 KB, and
a sweep over the working-set size (Figure 6a).  The all-hit variant with a
fixed request size drives Figure 6b.
"""

from __future__ import annotations

from typing import Any, Generator, List, Sequence, Tuple

from ..http.client import HttpClient
from ..servers.testbed import WebTestbed
from ..sim.engine import Event
from ..sim.process import Process, start
from ..sim.rng import ZipfSampler, substream

KB = 1024
MB = 1 << 20

#: Page-size classes chosen so the *accessed* mean lands near the paper's
#: ~75 KB (Zipf weighting shifts the access mean slightly off the static
#: mean; the classes below give ≈70-80 KB accessed).
SIZE_CLASSES: Sequence[Tuple[int, float]] = (
    (16 * KB, 0.35), (64 * KB, 0.40), (128 * KB, 0.20), (256 * KB, 0.05))


def build_file_set(working_set_bytes: int,
                   size_classes: Sequence[Tuple[int, float]] = SIZE_CLASSES,
                   ) -> List[int]:
    """Deterministic list of file sizes summing to ~``working_set_bytes``.

    Sizes are interleaved proportionally to the class weights so any
    prefix of the list has roughly the target mix.
    """
    sizes: List[int] = []
    total = 0
    acc = [0.0] * len(size_classes)
    while total < working_set_bytes:
        # Pick the class most behind its target proportion.
        deficits = [(w - (acc[i] / (sum(acc) or 1.0)), i)
                    for i, (_, w) in enumerate(size_classes)]
        _, idx = max(deficits)
        size = size_classes[idx][0]
        sizes.append(size)
        acc[idx] += 1.0
        total += size
    return sizes


class SpecWebWorkload:
    """Zipf-popularity GETs over a working set of static pages."""

    def __init__(self, testbed: WebTestbed, working_set_bytes: int,
                 zipf_alpha: float = 0.75, seed: int = 23,
                 prefix: str = "web") -> None:
        self.testbed = testbed
        self.seed = seed
        sizes = build_file_set(working_set_bytes)
        rng = substream(seed, "webset")
        # Popularity rank is independent of size: shuffle the assignment.
        rng.shuffle(sizes)
        self.paths: List[str] = []
        self.sizes = sizes
        for i, size in enumerate(sizes):
            path = f"{prefix}/{i:06d}.html"
            testbed.image.create_file(path, size)
            self.paths.append(path)
        self.sampler = ZipfSampler(len(self.paths), zipf_alpha,
                                   substream(seed, "zipf"))
        self._processes: List[Process] = []

    @property
    def mean_page_size(self) -> float:
        return sum(self.sizes) / len(self.sizes)

    def start(self) -> None:
        for i, client in enumerate(self.testbed.http_clients):
            self._processes.append(
                start(self.testbed.sim, self._worker(client),
                      name=f"web-{i}"))

    def _worker(self, client: HttpClient) -> Generator[Event, Any, None]:
        meters = self.testbed.meters
        while True:
            path = self.paths[self.sampler.sample()]
            issued_at = self.testbed.sim.now
            response, _dgram = yield from client.get(path)
            meters.record_request(self.testbed.sim.now - issued_at,
                                  response.content_length)


class AllHitWebWorkload:
    """Fixed-size pages served entirely from cache (Figure 6b)."""

    def __init__(self, testbed: WebTestbed, request_size: int,
                 working_set_bytes: int = 5 * MB, seed: int = 29,
                 prefix: str = "hot") -> None:
        self.testbed = testbed
        self.seed = seed
        n_files = max(1, working_set_bytes // request_size)
        self.paths = []
        for i in range(n_files):
            path = f"{prefix}/{i:04d}.html"
            testbed.image.create_file(path, request_size)
            self.paths.append(path)
        self._processes: List[Process] = []

    def prewarm(self) -> Process:
        return start(self.testbed.sim, self._prewarm(), name="web-prewarm")

    def _prewarm(self) -> Generator[Event, Any, None]:
        client = self.testbed.http_clients[0]
        for path in self.paths:
            yield from client.get(path)

    def start(self) -> None:
        for i, client in enumerate(self.testbed.http_clients):
            rng = substream(self.seed, "allhit-web", i)
            self._processes.append(
                start(self.testbed.sim, self._worker(client, rng),
                      name=f"webhit-{i}"))

    def _worker(self, client: HttpClient, rng
                ) -> Generator[Event, Any, None]:
        meters = self.testbed.meters
        while True:
            path = self.paths[rng.randrange(len(self.paths))]
            issued_at = self.testbed.sim.now
            response, _dgram = yield from client.get(path)
            meters.record_request(self.testbed.sim.now - issued_at,
                                  response.content_length)
