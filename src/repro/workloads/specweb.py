"""SPECweb99-like static web workload (§5.3, Figure 6).

Models what the paper reports using: static pages only, popularity "in
compliance with Zipf's law", an average accessed page size of ~75 KB, and
a sweep over the working-set size (Figure 6a).  The all-hit variant with a
fixed request size drives Figure 6b.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from ..http.client import HttpClient
from ..servers.testbed import WebTestbed
from ..sim.engine import Event
from ..sim.process import Process, start
from ..sim.rng import ZipfSampler, substream
from .base import WorkloadBase

KB = 1024
MB = 1 << 20

#: Page-size classes chosen so the *accessed* mean lands near the paper's
#: ~75 KB (Zipf weighting shifts the access mean slightly off the static
#: mean; the classes below give ≈70-80 KB accessed).
SIZE_CLASSES: Sequence[Tuple[int, float]] = (
    (16 * KB, 0.35), (64 * KB, 0.40), (128 * KB, 0.20), (256 * KB, 0.05))


def build_file_set(working_set_bytes: int,
                   size_classes: Sequence[Tuple[int, float]] = SIZE_CLASSES,
                   ) -> List[int]:
    """Deterministic list of file sizes summing to ~``working_set_bytes``.

    Sizes are interleaved proportionally to the class weights so any
    prefix of the list has roughly the target mix.
    """
    sizes: List[int] = []
    total = 0
    acc = [0.0] * len(size_classes)
    while total < working_set_bytes:
        # Pick the class most behind its target proportion.
        deficits = [(w - (acc[i] / (sum(acc) or 1.0)), i)
                    for i, (_, w) in enumerate(size_classes)]
        _, idx = max(deficits)
        size = size_classes[idx][0]
        sizes.append(size)
        acc[idx] += 1.0
        total += size
    return sizes


class SpecWebWorkload(WorkloadBase):
    """Zipf-popularity GETs over a working set of static pages."""

    def __init__(self, testbed: Optional[WebTestbed] = None,
                 working_set_bytes: int = 64 * MB,
                 zipf_alpha: float = 0.75, seed: int = 23,
                 prefix: str = "web") -> None:
        self.working_set_bytes = working_set_bytes
        self.zipf_alpha = zipf_alpha
        self.seed = seed
        self.prefix = prefix
        sizes = build_file_set(working_set_bytes)
        rng = substream(seed, "webset")
        # Popularity rank is independent of size: shuffle the assignment.
        rng.shuffle(sizes)
        self.paths: List[str] = []
        self.sizes = sizes
        self.sampler = ZipfSampler(len(sizes), zipf_alpha,
                                   substream(seed, "zipf"))
        self._processes: List[Process] = []
        super().__init__(testbed)

    def _bind(self, testbed: WebTestbed) -> None:
        self.testbed = testbed
        for i, size in enumerate(self.sizes):
            path = f"{self.prefix}/{i:06d}.html"
            testbed.image.create_file(path, size)
            self.paths.append(path)

    def _params(self) -> Dict[str, Any]:
        return {"working_set_bytes": self.working_set_bytes,
                "zipf_alpha": self.zipf_alpha, "seed": self.seed}

    @property
    def mean_page_size(self) -> float:
        return sum(self.sizes) / len(self.sizes)

    def start(self) -> None:
        for i, client in enumerate(self.testbed.http_clients):
            self._processes.append(
                start(self.testbed.sim, self._worker(client),
                      name=f"web-{i}"))

    def _worker(self, client: HttpClient) -> Generator[Event, Any, None]:
        meters = self.testbed.meters
        while True:
            path = self.paths[self.sampler.sample()]
            issued_at = self.testbed.sim.now
            response, _dgram = yield from client.get(path)
            meters.record_request(self.testbed.sim.now - issued_at,
                                  response.content_length)


class AllHitWebWorkload(WorkloadBase):
    """Fixed-size pages served entirely from cache (Figure 6b)."""

    def __init__(self, testbed: Optional[WebTestbed] = None,
                 request_size: int = 32 * KB,
                 working_set_bytes: int = 5 * MB, seed: int = 29,
                 prefix: str = "hot") -> None:
        self.request_size = request_size
        self.working_set_bytes = working_set_bytes
        self.seed = seed
        self.prefix = prefix
        self.n_files = max(1, working_set_bytes // request_size)
        self.paths: List[str] = []
        self._processes: List[Process] = []
        super().__init__(testbed)

    def _bind(self, testbed: WebTestbed) -> None:
        self.testbed = testbed
        for i in range(self.n_files):
            path = f"{self.prefix}/{i:04d}.html"
            testbed.image.create_file(path, self.request_size)
            self.paths.append(path)

    def _params(self) -> Dict[str, Any]:
        return {"request_size": self.request_size,
                "working_set_bytes": self.working_set_bytes,
                "seed": self.seed}

    def prewarm(self) -> Process:
        return start(self.testbed.sim, self._prewarm(), name="web-prewarm")

    def _prewarm(self) -> Generator[Event, Any, None]:
        client = self.testbed.http_clients[0]
        for path in self.paths:
            yield from client.get(path)

    def start(self) -> None:
        for i, client in enumerate(self.testbed.http_clients):
            rng = substream(self.seed, "allhit-web", i)
            self._processes.append(
                start(self.testbed.sim, self._worker(client, rng),
                      name=f"webhit-{i}"))

    def _worker(self, client: HttpClient, rng
                ) -> Generator[Event, Any, None]:
        meters = self.testbed.meters
        while True:
            path = self.paths[rng.randrange(len(self.paths))]
            issued_at = self.testbed.sim.now
            response, _dgram = yield from client.get(path)
            meters.record_request(self.testbed.sim.now - issued_at,
                                  response.content_length)
