"""NFS trace player — the Active Trace Player analog ([20], §5.3).

The paper drives its micro-benchmarks "by means of synthetic traces and an
Active Trace Player".  This module provides (a) a trace record format,
(b) a player that replays a trace against a testbed either closed-loop
(as fast as the server allows, with bounded concurrency) or timed (honour
record timestamps), and (c) synthetic trace generators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional

from ..net.buffer import VirtualPayload
from ..nfs.client import NfsClient
from ..nfs.protocol import FileHandle
from ..servers.testbed import NfsTestbed
from ..sim.engine import Event
from ..sim.process import Process, start
from ..sim.resources import Store
from ..sim.rng import substream
from .base import WorkloadBase


@dataclass
class TraceRecord:
    """One operation in a trace."""

    op: str  # "read" | "write" | "getattr" | "lookup"
    path: str
    offset: int = 0
    count: int = 0
    timestamp: Optional[float] = None  # seconds from trace start

    def __post_init__(self) -> None:
        if self.op not in ("read", "write", "getattr", "lookup"):
            raise ValueError(f"unknown trace op {self.op!r}")


class TracePlayer(WorkloadBase):
    """Replays a trace against an NFS testbed."""

    def __init__(self, testbed: Optional[NfsTestbed] = None,
                 trace: Optional[List[TraceRecord]] = None,
                 concurrency: int = 8, timed: bool = False) -> None:
        self.trace = list(trace) if trace is not None else []
        self.concurrency = concurrency
        self.timed = timed
        self.completed = 0
        self._remaining = len(self.trace)
        self._handles: Dict[str, FileHandle] = {}
        self._write_tag = 0x7AC3 << 32
        super().__init__(testbed)

    def _bind(self, testbed: NfsTestbed) -> None:
        self.testbed = testbed
        self.done = testbed.sim.event()
        self._ensure_files()
        self._queue: Store = Store(testbed.sim, name="trace-queue")

    def _params(self) -> Dict[str, Any]:
        return {"n_ops": len(self.trace), "concurrency": self.concurrency,
                "timed": self.timed}

    def _ensure_files(self) -> None:
        """Create every file the trace touches, sized to its max extent."""
        extents = {}
        for rec in self.trace:
            end = rec.offset + rec.count
            extents[rec.path] = max(extents.get(rec.path, 0), end, 4096)
        for path, size in extents.items():
            try:
                self.testbed.image.create_file(path, size)
            except ValueError:
                pass  # pre-existing file
            self._handles[path] = self.testbed.file_handle(path)

    # -- replay ----------------------------------------------------------------

    def start(self) -> "Process":
        """Start replay; returns a process that completes when done."""
        if self.timed:
            driver = start(self.testbed.sim, self._timed_driver(),
                           name="trace-timed")
        else:
            for rec in self.trace:
                self._queue.put(rec)
            for i in range(self.concurrency):
                client = self.testbed.clients[i % len(self.testbed.clients)]
                start(self.testbed.sim, self._worker(client),
                      name=f"trace-worker-{i}")
            driver = start(self.testbed.sim, self._wait_done(),
                           name="trace-wait")
        return driver

    def _wait_done(self) -> Generator[Event, Any, None]:
        yield self.done

    def _timed_driver(self) -> Generator[Event, Any, None]:
        t0 = self.testbed.sim.now
        client = self.testbed.clients[0]
        for rec in self.trace:
            if rec.timestamp is not None:
                delay = t0 + rec.timestamp - self.testbed.sim.now
                if delay > 0:
                    yield delay  # plain delay: no Event, one dispatch
            start(self.testbed.sim, self._play_one(client, rec),
                  name="trace-op")
        yield self.done

    def _worker(self, client: NfsClient) -> Generator[Event, Any, None]:
        while len(self._queue) > 0:
            rec = yield self._queue.get()
            yield from self._play_one(client, rec)

    def _play_one(self, client: NfsClient, rec: TraceRecord
                  ) -> Generator[Event, Any, None]:
        fh: FileHandle = self._handles[rec.path]
        meters = self.testbed.meters
        if rec.op == "read":
            dgram = yield from client.read(fh, rec.offset, rec.count)
            meters.throughput.record(dgram.message.count)
        elif rec.op == "write":
            self._write_tag += 1
            data = VirtualPayload(self._write_tag, 0, rec.count)
            yield from client.write(fh, rec.offset, data)
            meters.throughput.record(rec.count)
        elif rec.op == "getattr":
            yield from client.getattr(fh)
            meters.throughput.record(0)
        else:
            yield from client.lookup(rec.path)
            meters.throughput.record(0)
        self.completed += 1
        self._remaining -= 1
        if self._remaining == 0 and not self.done.triggered:
            self.done.succeed(self.completed)


# -- synthetic trace generators ------------------------------------------------


def sequential_read_trace(path: str, file_size: int, request_size: int
                          ) -> List[TraceRecord]:
    """The all-miss micro-benchmark as a trace."""
    return [TraceRecord("read", path, offset, request_size)
            for offset in range(0, file_size - request_size + 1,
                                request_size)]


def hot_cold_trace(n_ops: int, hot_paths: List[str], cold_paths: List[str],
                   hot_fraction: float, request_size: int,
                   file_size: int, seed: int = 3) -> List[TraceRecord]:
    """Random-access trace with a hot set absorbing ``hot_fraction``."""
    rng = substream(seed, "hotcold")
    slots = max(1, file_size // request_size)
    records = []
    for _ in range(n_ops):
        paths = hot_paths if rng.random() < hot_fraction else cold_paths
        path = paths[rng.randrange(len(paths))]
        offset = rng.randrange(slots) * request_size
        records.append(TraceRecord("read", path, offset, request_size))
    return records


def mixed_trace(n_ops: int, paths: List[str], read_fraction: float,
                request_size: int, file_size: int,
                metadata_fraction: float = 0.2,
                seed: int = 5) -> List[TraceRecord]:
    """Read/write/metadata mix over a file set."""
    rng = substream(seed, "mixed")
    slots = max(1, file_size // request_size)
    records = []
    for _ in range(n_ops):
        path = paths[rng.randrange(len(paths))]
        u = rng.random()
        if u < metadata_fraction:
            op = "getattr" if rng.random() < 0.7 else "lookup"
            records.append(TraceRecord(op, path))
        else:
            offset = rng.randrange(slots) * request_size
            op = "read" if rng.random() < read_fraction else "write"
            records.append(TraceRecord(op, path, offset, request_size))
    return records
