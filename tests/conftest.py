"""Shared fixtures: simulators, hosts, and miniature testbeds."""

from __future__ import annotations

import pytest

from repro.check import sanitizer as _sanitizer
from repro.copymodel import CopyDiscipline
from repro.fs import (
    BufferCache,
    DiskStore,
    FsImage,
    LocalBlockDevice,
    VFS,
    make_paper_raid,
)
from repro.iscsi import IscsiInitiator, IscsiTarget
from repro.net import Endpoint, Host, Network
from repro.servers import ServerMode, TestbedConfig
from repro.sim import Simulator


@pytest.fixture(autouse=True)
def _buffer_sanitizer():
    """Run every test under the buffer-lifecycle sanitizer.

    Hard violations (double substitution, FS/NCache aliasing) are always
    bugs and fail the test.  Soft kinds (leak, use-after-evict) are
    tolerated here because modelled races and fragmentary unit setups can
    legitimately produce them; dedicated tests assert them explicitly.
    """
    if _sanitizer.active() is not None:
        # REPRO_SANITIZE=1 (or an enclosing sanitize()) is already managing
        # a sanitizer; don't stack another one on top of it.
        yield
        return
    with _sanitizer.sanitize(strict=False) as san:
        yield san
    hard = san.hard_violations()
    assert not hard, "buffer sanitizer: " + "; ".join(
        v.format() for v in hard)


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def network(sim) -> Network:
    return Network(sim)


@pytest.fixture
def two_hosts(sim, network):
    a = Host(sim, "a")
    b = Host(sim, "b")
    a.add_nic(network, "a0")
    b.add_nic(network, "b0")
    return a, b


class MiniStack:
    """A server + storage pair with VFS, without NFS/HTTP on top."""

    def __init__(self, sim: Simulator, discipline: CopyDiscipline,
                 cache_bytes: int = 8 << 20,
                 image_blocks: int = 1 << 18) -> None:
        self.sim = sim
        self.network = Network(sim)
        self.server = Host(sim, "server")
        self.storage = Host(sim, "storage")
        self.server.add_nic(self.network, "server-0")
        self.storage.add_nic(self.network, "storage-0")
        self.image = FsImage(capacity_blocks=image_blocks)
        self.store = DiskStore(self.image)
        self.raid = make_paper_raid(sim)
        self.target = IscsiTarget(self.storage,
                                  LocalBlockDevice(self.store, self.raid))
        self.initiator = IscsiInitiator(
            self.server, "server-0", Endpoint("storage-0", 3260),
            discipline=discipline)
        self.cache = BufferCache(cache_bytes,
                                 counters=self.server.counters)
        self.vfs = VFS(self.server, self.image, self.cache, self.initiator,
                       discipline)


@pytest.fixture
def mini_stack(sim):
    return MiniStack(sim, CopyDiscipline.PHYSICAL)


def drive(sim: Simulator, gen, name: str = "test"):
    """Run a generator as a process to completion; return its value."""
    from repro.sim.process import start

    proc = start(sim, gen, name=name)
    while not proc.triggered:
        if not sim.step():
            raise AssertionError("simulation drained before completion")
    if proc.failed:
        raise proc.value
    return proc.value


@pytest.fixture
def quick_config():
    def make(mode: ServerMode, **overrides) -> TestbedConfig:
        return TestbedConfig(mode=mode, **overrides)

    return make
