"""The adaptive-budget experiment: acceptance, determinism, golden lock.

The headline claim of the arbiter work is behavioral — "the controller
beats every static split across the phase-shifting day" — so it is
locked three ways:

* the **invariant** (adaptive ``mean_bpk`` strictly below the best
  static split's) must hold on every run, whatever the numbers;
* the **golden** pins the quick-grid values to ±2% so silent model
  drift fails loudly (``tests/goldens/adaptive_budget_quick.json``);
* the **determinism** check reruns the adaptive point inline and
  requires bit-equal rows against the subprocess grid — worker count
  and process placement must not leak into results.

Regenerate the golden (after an *intentional* model change) with::

    PYTHONPATH=src python tests/test_adaptive_budget.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import adaptive_budget

GOLDEN = Path(__file__).parent / "goldens" / "adaptive_budget_quick.json"


@pytest.fixture(scope="module")
def result():
    return adaptive_budget.run(quick=True, workers=2)


def quick_rows():
    """Measured quick-grid rows, shaped like the golden."""
    result = adaptive_budget.run(quick=True, workers=2)
    return {row["split"]: {col: row[col] for col in
                           ("fs_mb", "read_bpk", "write_bpk", "web_bpk",
                            "mean_bpk")}
            for row in result.rows}


class TestAcceptance:
    def test_grid_is_complete(self, result):
        splits = [row["split"] for row in result.rows]
        assert splits == [str(f) for f in
                          adaptive_budget.STATIC_FRACTIONS] + ["ghost"]

    def test_adaptive_beats_every_static_split(self, result):
        ghost = result.value("mean_bpk", split="ghost")
        for frac in adaptive_budget.STATIC_FRACTIONS:
            static = result.value("mean_bpk", split=str(frac))
            assert ghost < static, \
                f"ghost {ghost} not below static {frac} ({static})"

    def test_controller_actually_moved_bytes(self, result):
        assert result.value("moves", split="ghost") > 0
        assert result.value("moved_mb", split="ghost") > 0
        for frac in adaptive_budget.STATIC_FRACTIONS:
            assert result.value("moves", split=str(frac)) == 0

    def test_total_budget_is_constant_across_points(self, result):
        # fs_mb differs per split but every point runs the same total
        # (quick scale: 56 MB ram - 6 MB carveout = 50 MB); the static
        # fractions must land where they were asked to.
        for frac in adaptive_budget.STATIC_FRACTIONS:
            got = result.value("fs_mb", split=str(frac))
            assert got == pytest.approx(50.0 * float(frac), rel=0.01)


class TestDeterminism:
    def test_inline_rerun_is_bit_equal(self, result):
        """Worker placement must not leak: the grid runs points in
        subprocesses (workers=2); rerunning the adaptive point inline
        must reproduce the row exactly."""
        inline = adaptive_budget.measure_point("ghost", quick=True)
        row = next(r for r in result.rows if r["split"] == "ghost")
        assert inline == row


class TestGoldenPinned:
    def test_quick_grid_within_2pct_of_golden(self, result):
        golden = json.loads(GOLDEN.read_text())
        for split, want in golden.items():
            row = next(r for r in result.rows if r["split"] == split)
            for field, value in want.items():
                assert row[field] == pytest.approx(value, rel=0.02), \
                    f"{split} {field}: measured {row[field]}, " \
                    f"golden {value}"


if __name__ == "__main__":
    GOLDEN.write_text(json.dumps(quick_rows(), indent=1) + "\n")
    print(f"wrote {GOLDEN}")
