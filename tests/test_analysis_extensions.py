"""Percentiles, markdown rendering, the paper-claims registry, the CLI."""

import pytest

from repro.analysis import ExperimentResult, PaperClaim, claims
from repro.analysis.paper import render_report
from repro.sim.stats import LatencyStats


class TestPercentiles:
    def test_exact_below_reservoir(self):
        stats = LatencyStats()
        for v in range(100):
            stats.record(float(v))
        assert stats.p50 == pytest.approx(50.0, abs=1.0)
        assert stats.p95 == pytest.approx(95.0, abs=1.0)
        assert stats.p99 == pytest.approx(99.0, abs=1.0)

    def test_approximate_above_reservoir(self):
        stats = LatencyStats()
        for v in range(10_000):
            stats.record(float(v % 1000))
        assert 400 <= stats.p50 <= 600
        assert stats.p99 >= 900

    def test_empty_is_zero(self):
        assert LatencyStats().p50 == 0.0

    def test_bad_fraction_rejected(self):
        stats = LatencyStats()
        stats.record(1.0)
        with pytest.raises(ValueError):
            stats.percentile(1.5)

    def test_deterministic(self):
        def fill():
            stats = LatencyStats()
            for v in range(5000):
                stats.record(float((v * 7919) % 97))
            return stats.p50, stats.p95, stats.p99

        assert fill() == fill()

    def test_reset_clears_reservoir(self):
        stats = LatencyStats()
        stats.record(100.0)
        stats.reset()
        assert stats.p99 == 0.0


class TestMarkdown:
    def test_markdown_table_structure(self):
        result = ExperimentResult("x", "A Title", ["a", "b"])
        result.add_row(a=1, b="hi")
        result.add_note("important")
        md = result.to_markdown()
        assert md.startswith("### A Title")
        assert "| a | b |" in md
        assert "| 1 | hi |" in md
        assert "*important*" in md


class TestClaimsRegistry:
    def test_registry_covers_all_figures(self):
        registry = claims()
        experiments = {c.experiment for c in registry}
        assert experiments == {"figure4", "figure5", "figure6a",
                               "figure6b", "figure7"}
        assert len(registry) >= 9

    def test_bands_are_sane(self):
        for claim in claims():
            assert claim.low < claim.high
            assert claim.statement
            assert claim.passed is None  # unchecked

    def test_check_against_synthetic_result(self):
        claim = [c for c in claims() if c.claim_id == "fig5-ncache-32k"][0]
        result = ExperimentResult("figure5", "t",
                                  ["mode", "nics", "request_kb",
                                   "throughput_mbps"])
        result.add_row(mode="original", nics=2, request_kb=32,
                       throughput_mbps=100.0)
        result.add_row(mode="NCache", nics=2, request_kb=32,
                       throughput_mbps=185.0)
        claim.check(result)
        assert claim.measured == pytest.approx(85.0)
        assert claim.passed is True

    def test_failing_claim_detected(self):
        claim = [c for c in claims() if c.claim_id == "fig5-ncache-32k"][0]
        result = ExperimentResult("figure5", "t",
                                  ["mode", "nics", "request_kb",
                                   "throughput_mbps"])
        result.add_row(mode="original", nics=2, request_kb=32,
                       throughput_mbps=100.0)
        result.add_row(mode="NCache", nics=2, request_kb=32,
                       throughput_mbps=105.0)
        claim.check(result)
        assert claim.passed is False

    def test_render_report(self):
        checked = claims()
        checked[0].measured = 30.0
        text = render_report(checked)
        assert "PASS" in text
        assert "paper" in text


class TestExperimentsCli:
    def test_cli_runs_subset(self, capsys, tmp_path):
        from repro.experiments.__main__ import main

        code = main(["table1", "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert (tmp_path / "table1.txt").exists()

    def test_cli_rejects_unknown(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["figure99"])


class TestIscsiQueueDepth:
    def test_depth_validation(self, sim, network):
        from repro.iscsi import IscsiInitiator
        from repro.net import Endpoint, Host
        from repro.sim import SimulationError

        host = Host(sim, "h")
        host.add_nic(network, "h0")
        with pytest.raises(SimulationError):
            IscsiInitiator(host, "h0", Endpoint("t", 3260), queue_depth=0)

    def test_window_limits_outstanding_commands(self, sim):
        from repro.copymodel import CopyDiscipline
        from repro.sim import AllOf, start
        from conftest import MiniStack, drive

        stack = MiniStack(sim, CopyDiscipline.PHYSICAL)
        stack.initiator._window.capacity = 2
        drive(sim, stack.initiator.connect())
        inode = stack.image.create_file("f", 1 << 20)
        max_seen = [0]

        original_on_message = stack.target._on_message

        def watching(conn, dgram):
            max_seen[0] = max(max_seen[0],
                              stack.initiator._window.in_use)
            yield from original_on_message(conn, dgram)

        stack.target._on_message = watching
        # Re-register the handler on the live connection.
        for conn in stack.storage.stack._connections.values():
            conn.on_message = watching

        def one(i):
            yield from stack.initiator.read(inode.start_lbn + i, 1)

        def job():
            procs = [start(sim, one(i)) for i in range(8)]
            yield AllOf(sim, procs)

        drive(sim, job())
        assert 1 <= max_seen[0] <= 2
