"""The memory-budget arbiter: specs, leases, and the controller loop."""

import pickle

import pytest

from repro.cache import CacheKernel, CacheStallError
from repro.cache.arbiter import (ArbiterSpec, GhostGradient, MemoryArbiter,
                                 StaticSplit, make_arbiter)
from repro.cache.kernel import BudgetWindow, KernelMetrics
from repro.obs.metrics import MetricsRegistry
from repro.sim import Simulator
from repro.sim.stats import CounterSet


class Lease:
    """A scriptable cache stand-in: metrics the test can bump, a resize
    that records calls and returns scripted victims."""

    def __init__(self, name, registry=None):
        self.name = name
        self.metrics = KernelMetrics.declare(
            registry if registry is not None else MetricsRegistry(), name)
        self.resizes = []
        self.victims = []
        self.written_back = []
        self.raise_stall = False

    def resize(self, new_bytes):
        if self.raise_stall:
            raise CacheStallError(f"{self.name} pinned solid")
        self.resizes.append(new_bytes)
        out, self.victims = self.victims, []
        return out

    def writeback(self, item):
        self.written_back.append(item)
        yield from ()

    def ghosts(self, n):
        self.metrics.ghost_hit._total += n


def ghost_spec(**kw):
    base = dict(kind="ghost", tick_s=0.01, step_fraction=0.05,
                hysteresis=1.5, min_signal=4)
    base.update(kw)
    return ArbiterSpec(**base)


def two_lease_arbiter(spec=None, total=200, floors=(10, 10)):
    arb = make_arbiter(spec if spec is not None else ghost_spec(), total,
                       counters=CounterSet())
    a, b = Lease("a"), Lease("b")
    arb.register("a", total // 2, a.resize, a.metrics,
                 writeback=a.writeback, floor_bytes=floors[0])
    arb.register("b", total - total // 2, b.resize, b.metrics,
                 writeback=b.writeback, floor_bytes=floors[1])
    return arb, a, b


class TestArbiterSpec:
    def test_defaults_are_static(self):
        spec = ArbiterSpec()
        assert spec.kind == "static" and not spec.adaptive

    def test_ghost_kind_is_adaptive(self):
        assert ghost_spec().adaptive

    @pytest.mark.parametrize("bad", [
        dict(kind="fuzzy"), dict(tick_s=0.0), dict(tick_s=-1.0),
        dict(step_fraction=0.0), dict(step_fraction=0.6),
        dict(hysteresis=0.9), dict(min_signal=0),
        dict(floor_fraction=-0.1), dict(floor_fraction=1.0)])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            ArbiterSpec(**bad)

    def test_picklable_and_hashable(self):
        spec = ghost_spec()
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert hash(spec) == hash(ghost_spec())

    def test_make_arbiter_picks_kind(self):
        assert isinstance(make_arbiter(ArbiterSpec(), 100), StaticSplit)
        assert isinstance(make_arbiter(ghost_spec(), 100), GhostGradient)


class TestRegistration:
    def test_overcommit_rejected(self):
        arb = MemoryArbiter(ArbiterSpec(), 100)
        lease = Lease("a")
        arb.register("a", 80, lease.resize, lease.metrics)
        with pytest.raises(ValueError, match="overcommit"):
            arb.register("b", 21, lease.resize, lease.metrics)

    def test_duplicate_name_rejected(self):
        arb = MemoryArbiter(ArbiterSpec(), 100)
        lease = Lease("a")
        arb.register("a", 50, lease.resize, lease.metrics)
        with pytest.raises(ValueError, match="already registered"):
            arb.register("a", 50, lease.resize, lease.metrics)

    def test_partition_must_be_exact(self):
        arb = MemoryArbiter(ArbiterSpec(), 100)
        lease = Lease("a")
        arb.register("a", 60, lease.resize, lease.metrics)
        with pytest.raises(ValueError, match="every byte"):
            arb.start(Simulator())

    def test_unknown_downstream_rejected(self):
        arb = MemoryArbiter(ArbiterSpec(), 100)
        lease = Lease("a")
        arb.register("a", 100, lease.resize, lease.metrics,
                     downstream="nope")
        with pytest.raises(ValueError, match="unknown downstream"):
            arb.start(Simulator())

    def test_register_after_start_rejected(self):
        arb = MemoryArbiter(ArbiterSpec(), 100)
        lease = Lease("a")
        arb.register("a", 100, lease.resize, lease.metrics)
        arb.start(Simulator())
        with pytest.raises(RuntimeError, match="started"):
            arb.register("b", 0, lease.resize, lease.metrics)

    def test_default_floor_from_fraction_and_clamp(self):
        arb = MemoryArbiter(ArbiterSpec(floor_fraction=0.25), 100)
        lease = Lease("a")
        assert arb.register("a", 80, lease.resize, lease.metrics
                            ).floor_bytes == 20
        assert arb.register("b", 20, lease.resize, lease.metrics,
                            floor_bytes=999).floor_bytes == 20

    def test_budget_gauges_installed(self):
        arb, _, _ = two_lease_arbiter()
        assert arb.lease("a").gauge.value == 100
        assert arb.lease("b").gauge.value == 100


class TestStaticSplit:
    def test_schedules_nothing(self):
        sim = Simulator()
        arb, a, b = two_lease_arbiter(spec=ArbiterSpec())
        arb.start(sim)
        sim.run()
        assert sim.now == 0.0
        assert a.resizes == [] and b.resizes == []


class TestGhostGradient:
    def run_ticks(self, arb, n=1):
        sim = Simulator()
        arb.start(sim)
        sim.run(until=n * arb.spec.tick_s + 1e-9)
        return sim

    def test_single_lease_never_ticks(self):
        sim = Simulator()
        arb = make_arbiter(ghost_spec(), 100)
        lease = Lease("a")
        arb.register("a", 100, lease.resize, lease.metrics)
        arb.start(sim)
        sim.run()
        assert sim.now == 0.0

    def test_bytes_move_to_ghost_demand(self):
        arb, a, b = two_lease_arbiter()
        a.ghosts(50)
        self.run_ticks(arb)
        # step = 5% of 200 = 10 bytes, b -> a.
        assert arb.lease("a").budget_bytes == 110
        assert arb.lease("b").budget_bytes == 90
        assert b.resizes == [90]       # donor shrinks...
        assert a.resizes == [110]      # ...recipient re-targets (no evict)
        assert arb.counters["arbiter.moves"].total == 1
        assert arb.counters["arbiter.moved_bytes"].total == 10
        assert arb.lease("a").gauge.value == 110

    def test_budget_conserved_over_many_ticks(self):
        arb, a, b = two_lease_arbiter()
        sim = Simulator()
        arb.start(sim)
        for tick in range(1, 21):
            a.ghosts(30)
            sim.run(until=tick * arb.spec.tick_s + 1e-9)
        total = sum(l.budget_bytes for l in arb.leases)
        assert total == arb.total_bytes
        # a cannot push b below its floor.
        assert arb.lease("b").budget_bytes >= arb.lease("b").floor_bytes

    def test_min_signal_gates_noise(self):
        arb, a, _ = two_lease_arbiter()
        a.ghosts(3)  # below min_signal=4
        self.run_ticks(arb)
        assert arb.lease("a").budget_bytes == 100

    def test_hysteresis_gates_small_gradients(self):
        arb, a, b = two_lease_arbiter()
        a.ghosts(5)
        b.ghosts(4)  # demand ratio 1.25 < hysteresis 1.5
        self.run_ticks(arb)
        assert arb.lease("a").budget_bytes == 100

    def test_equal_demand_moves_nothing(self):
        arb, a, b = two_lease_arbiter()
        a.ghosts(10)
        b.ghosts(10)
        self.run_ticks(arb)
        assert arb.lease("a").budget_bytes == 100

    def test_donor_at_floor_cannot_donate(self):
        arb, a, b = two_lease_arbiter(floors=(10, 100))
        a.ghosts(50)
        self.run_ticks(arb)
        assert arb.lease("b").budget_bytes == 100

    def test_windowed_signal_resets_each_tick(self):
        arb, a, _ = two_lease_arbiter()
        a.ghosts(50)
        self.run_ticks(arb, n=3)  # ghosts seen once, then quiet
        assert arb.counters["arbiter.moves"].total == 1

    def test_dirty_victims_written_back(self):
        arb, a, b = two_lease_arbiter()
        a.ghosts(50)
        b.victims = ["dirty-item"]
        self.run_ticks(arb)
        assert b.written_back == ["dirty-item"]

    def test_missing_writeback_is_an_error(self):
        spec = ghost_spec()
        arb = make_arbiter(spec, 200, counters=CounterSet())
        a, b = Lease("a"), Lease("b")
        arb.register("a", 100, a.resize, a.metrics, floor_bytes=10)
        arb.register("b", 100, b.resize, b.metrics, floor_bytes=10)
        a.ghosts(50)
        b.victims = ["dirty-item"]
        with pytest.raises(RuntimeError, match="no writeback"):
            self.run_ticks(arb)

    def test_stall_aborts_counted_but_move_completes(self):
        arb, a, b = two_lease_arbiter()
        a.ghosts(50)
        b.raise_stall = True
        self.run_ticks(arb)
        assert arb.counters["arbiter.stall_aborts"].total == 1
        assert arb.lease("a").budget_bytes == 110
        assert arb.lease("b").budget_bytes == 90

    def test_downstream_miss_rate_discounts_demand(self):
        spec = ghost_spec()
        arb = make_arbiter(spec, 200, counters=CounterSet())
        a, b = Lease("a"), Lease("b")
        arb.register("a", 100, a.resize, a.metrics,
                     writeback=a.writeback, floor_bytes=10, downstream="b")
        arb.register("b", 100, b.resize, b.metrics,
                     writeback=b.writeback, floor_bytes=10)
        # a's ghosts look hot, but b absorbs every lookup (zero miss
        # rate), so a's demand collapses to zero and nothing moves.
        a.ghosts(50)
        b.metrics.hit._total += 100
        self.run_ticks(arb)
        assert arb.lease("a").budget_bytes == 100


class TestBudgetWindow:
    def test_deltas_and_rearm(self):
        metrics = KernelMetrics.declare(MetricsRegistry(), "w")
        window = BudgetWindow(metrics)
        metrics.ghost_hit._total += 5
        metrics.hit._total += 2
        metrics.miss._total += 7
        assert window.advance() == (5.0, 2.0, 7.0)
        assert window.advance() == (0.0, 0.0, 0.0)

    def test_survives_counter_reset(self):
        metrics = KernelMetrics.declare(MetricsRegistry(), "w")
        window = BudgetWindow(metrics)
        metrics.ghost_hit._total += 5
        window.advance()
        # A measurement-boundary reset moves the mark, not the total —
        # the next window must not see a negative delta.
        metrics.ghost_hit.reset()
        metrics.ghost_hit._total += 3
        assert window.advance()[0] == 3.0


class TestGhostAdmit:
    class Item:
        def __init__(self, admit):
            self.admit = admit
            self.dirty = False
            self.pinned = False

    def test_rejected_victims_leave_no_ghost(self):
        k = CacheKernel("t", 2)
        k.set_ghost_admit(lambda item: item.admit)
        k.insert("keep-out", self.Item(False), 1)
        k.insert("keep-in", self.Item(True), 1)
        k.make_room(2)  # evicts both
        k.record_miss("keep-out")
        assert k.metrics.ghost_hit.total == 0
        k.record_miss("keep-in")
        assert k.metrics.ghost_hit.total == 1

    def test_default_admits_everything(self):
        k = CacheKernel("t", 1)
        k.insert("x", self.Item(False), 1)
        k.make_room(1)
        k.record_miss("x")
        assert k.metrics.ghost_hit.total == 1
