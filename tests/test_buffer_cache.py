"""Buffer cache: LRU order, clean-first eviction, capacity accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fs import BLOCK_SIZE, BufferCache
from repro.net.buffer import JunkPayload


def cache_of(nblocks: int) -> BufferCache:
    return BufferCache(nblocks * BLOCK_SIZE)


def fill(cache: BufferCache, lbns, dirty=False):
    for lbn in lbns:
        cache.make_room(1)
        cache.insert(lbn, JunkPayload(BLOCK_SIZE), dirty=dirty)


class TestBasics:
    def test_insert_lookup(self):
        cache = cache_of(4)
        fill(cache, [1])
        assert cache.lookup(1) is not None
        assert cache.lookup(2) is None

    def test_hit_miss_counters(self):
        cache = cache_of(4)
        fill(cache, [1])
        cache.lookup(1)
        cache.lookup(2)
        assert cache.counters["bcache.hit"].value == 1
        assert cache.counters["bcache.miss"].value == 1
        assert cache.hit_ratio() == 0.5

    def test_peek_has_no_side_effects(self):
        cache = cache_of(4)
        fill(cache, [1])
        cache.peek(1)
        cache.peek(2)
        assert "bcache.hit" not in cache.counters or \
            cache.counters["bcache.hit"].value == 0

    def test_used_bytes(self):
        cache = cache_of(4)
        fill(cache, [1, 2])
        assert cache.used_bytes == 2 * BLOCK_SIZE
        assert len(cache) == 2

    def test_too_small_capacity_rejected(self):
        with pytest.raises(ValueError):
            BufferCache(BLOCK_SIZE - 1)

    def test_insert_without_room_rejected(self):
        cache = cache_of(1)
        fill(cache, [1])
        with pytest.raises(RuntimeError):
            cache.insert(2, JunkPayload(BLOCK_SIZE))

    def test_reinsert_same_lbn_no_room_needed(self):
        cache = cache_of(1)
        fill(cache, [1])
        cache.insert(1, JunkPayload(BLOCK_SIZE), dirty=True)
        assert cache.peek(1).dirty


class TestEviction:
    def test_lru_order(self):
        cache = cache_of(3)
        fill(cache, [1, 2, 3])
        cache.lookup(1)  # 2 is now LRU
        cache.make_room(1)
        assert 2 not in cache
        assert 1 in cache and 3 in cache

    def test_clean_evicted_before_dirty(self):
        cache = cache_of(3)
        fill(cache, [1], dirty=True)
        fill(cache, [2, 3])
        victims = cache.make_room(1)
        assert victims == []  # clean block 2 went silently
        assert 1 in cache and 2 not in cache

    def test_dirty_victims_returned_for_writeback(self):
        cache = cache_of(2)
        fill(cache, [1, 2], dirty=True)
        victims = cache.make_room(1)
        assert [v.lbn for v in victims] == [1]
        assert 1 not in cache

    def test_make_room_multiple_blocks(self):
        cache = cache_of(4)
        fill(cache, [1, 2, 3, 4])
        cache.make_room(3)
        assert len(cache) == 1

    def test_eviction_counters(self):
        cache = cache_of(2)
        fill(cache, [1])
        fill(cache, [2], dirty=True)
        cache.make_room(2)
        assert cache.counters["bcache.evict_clean"].value == 1
        assert cache.counters["bcache.evict_dirty"].value == 1


class TestDirtyTracking:
    def test_dirty_lbns_lru_order(self):
        cache = cache_of(4)
        fill(cache, [1, 2, 3], dirty=True)
        cache.lookup(1)
        assert cache.dirty_lbns() == [2, 3, 1]

    def test_mark_clean(self):
        cache = cache_of(2)
        fill(cache, [1], dirty=True)
        cache.mark_clean(1)
        assert cache.dirty_lbns() == []

    def test_mark_clean_missing_noop(self):
        cache_of(2).mark_clean(42)

    def test_invalidate(self):
        cache = cache_of(2)
        fill(cache, [1])
        cache.invalidate(1)
        assert 1 not in cache

    def test_clear(self):
        cache = cache_of(4)
        fill(cache, [1, 2])
        cache.clear()
        assert len(cache) == 0


class TestPinning:
    def test_pinned_pages_survive_eviction(self):
        cache = cache_of(2)
        fill(cache, [1, 2])
        assert cache.pin(1)
        cache.make_room(1)
        assert 1 in cache and 2 not in cache

    def test_pin_missing_returns_false(self):
        assert cache_of(2).pin(9) is False

    def test_unpin_reenables_eviction(self):
        cache = cache_of(2)
        fill(cache, [1, 2])
        cache.pin(1)
        cache.unpin(1)
        cache.lookup(2)  # 1 becomes LRU
        cache.make_room(1)
        assert 1 not in cache

    def test_pin_counts_nest(self):
        cache = cache_of(2)
        fill(cache, [1, 2])
        cache.pin(1)
        cache.pin(1)
        cache.unpin(1)
        cache.make_room(1)  # still pinned once
        assert 1 in cache

    def test_all_pinned_raises(self):
        cache = cache_of(1)
        fill(cache, [1])
        cache.pin(1)
        with pytest.raises(RuntimeError):
            cache.make_room(1)

    def test_all_pinned_stall_is_typed_and_traced(self):
        from repro.cache import CacheStallError
        from repro.obs.trace import TraceBus

        class Clock:
            now = 0.0

        trace = TraceBus(clock=Clock()).enable()
        cache = BufferCache(2 * BLOCK_SIZE, trace=trace)
        fill(cache, [1, 2])
        cache.pin(1)
        cache.pin(2)
        with pytest.raises(CacheStallError):
            cache.make_room(1)
        stalls = [e for e in trace.events
                  if e.name == "bcache.evict_stalled"]
        assert len(stalls) == 1
        assert stalls[0].args["entries"] == 2
        assert stalls[0].args["capacity_bytes"] == 2 * BLOCK_SIZE

    def test_pinned_dirty_preferred_over_nothing(self):
        cache = cache_of(2)
        fill(cache, [1], dirty=True)
        fill(cache, [2], dirty=True)
        cache.pin(1)
        victims = cache.make_room(1)
        assert [v.lbn for v in victims] == [2]


class TestLruProperty:
    @given(ops=st.lists(st.tuples(st.sampled_from(["insert", "lookup"]),
                                  st.integers(0, 9)), max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_matches_reference_lru(self, ops):
        """The cache must track an ordered-dict reference model."""
        capacity = 4
        cache = cache_of(capacity)
        model: dict = {}
        for op, lbn in ops:
            if op == "insert":
                if lbn not in model and len(model) == capacity:
                    victim = next(iter(model))
                    del model[victim]
                if cache.peek(lbn) is None:
                    cache.make_room(1)
                cache.insert(lbn, JunkPayload(BLOCK_SIZE))
                model.pop(lbn, None)
                model[lbn] = True
            else:
                hit = cache.lookup(lbn) is not None
                assert hit == (lbn in model)
                if hit:
                    model.pop(lbn)
                    model[lbn] = True
        assert set(model) == {e for e in range(10) if e in cache}
