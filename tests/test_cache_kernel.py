"""The eviction kernel: budgets, victim selection, metrics, sharding."""

import pytest

from repro.cache import (CacheKernel, CacheStallError, POLICIES,
                         ShardedKernel, make_policy)
from repro.cache.sharded import default_shard_hash
from repro.obs.trace import TraceBus
from repro.sim.rng import substream


class Item:
    """Minimal kernel item: the two attributes eviction cares about."""

    def __init__(self, dirty=False, pinned=False):
        self.dirty = dirty
        self.pinned = pinned


class FakeClock:
    now = 0.0


def kernel_of(nbytes, **kw):
    return CacheKernel("test", nbytes, **kw)


def fill(kernel, keys, dirty=False):
    out = {}
    for key in keys:
        kernel.make_room(1, key=key)
        out[key] = kernel.insert(key, Item(dirty=dirty), 1)
    return out


class TestBudget:
    def test_accounting(self):
        k = kernel_of(4)
        h = fill(k, "ab")
        assert k.used_bytes == 2 and k.free_bytes == 2 and len(k) == 2
        k.remove(h["a"])
        assert k.used_bytes == 1 and "a" not in [key for key, _ in k.items()]

    def test_make_room_evicts_lru_first(self):
        k = kernel_of(3)
        h = fill(k, "abc")
        k.touch(h["a"])  # b is now coldest
        k.make_room(1)
        assert set(k.key_of(x) for x in (h["a"], h["c"])) == {"a", "c"}
        assert h["b"] not in k

    def test_dirty_victims_returned(self):
        k = kernel_of(2)
        fill(k, "a", dirty=True)
        fill(k, "b")
        victims = k.make_room(2)
        assert [v.dirty for v in victims] == [True]

    def test_insert_tolerates_transient_overshoot(self):
        k = kernel_of(1)
        fill(k, "a")
        k.insert("b", Item(), 1)  # replacement flow: install before reclaim
        assert k.used_bytes == 2
        k.make_room(0)
        assert k.used_bytes == 1

    def test_resize_steal_grant(self):
        k = kernel_of(4)
        fill(k, "abcd")
        victims = k.resize(2)
        assert victims == [] and k.used_bytes == 2 and k.capacity_bytes == 2
        k.grant(3)
        assert k.capacity_bytes == 5
        k.steal(1)
        assert k.capacity_bytes == 4

    def test_capacity_assignment_defers_eviction(self):
        k = kernel_of(4)
        fill(k, "abcd")
        k.capacity_bytes = 2
        assert len(k) == 4  # sheds at the next make_room, not now
        k.make_room(0)
        assert len(k) == 2


class TestVictimSelection:
    def test_pinned_skipped(self):
        k = kernel_of(2)
        k.insert("a", Item(pinned=True), 1)
        fill(k, "b")
        k.make_room(1)
        assert [key for key, _ in k.items()] == ["a"]

    def test_clean_first_prefers_clean_over_older_dirty(self):
        k = kernel_of(2, clean_first=True)
        fill(k, "a", dirty=True)
        fill(k, "b")
        victims = k.make_room(1)
        assert victims == [] and [key for key, _ in k.items()] == ["a"]

    def test_without_clean_first_oldest_goes(self):
        k = kernel_of(2)
        fill(k, "a", dirty=True)
        fill(k, "b")
        victims = k.make_room(1)
        assert [v.dirty for v in victims] == [True]

    def test_all_pinned_stalls(self):
        k = kernel_of(1)
        k.insert("a", Item(pinned=True), 1)
        with pytest.raises(CacheStallError):
            k.make_room(1)

    def test_stall_emits_trace_event(self):
        trace = TraceBus(clock=FakeClock()).enable()
        k = CacheKernel("test", 1, trace=trace,
                        stall_event="test.evict_stalled")
        k.insert("a", Item(pinned=True), 1)
        with pytest.raises(CacheStallError):
            k.make_room(1)
        stalls = [e for e in trace.events if e.name == "test.evict_stalled"]
        assert len(stalls) == 1
        assert stalls[0].args["entries"] == 1
        assert stalls[0].args["used_bytes"] == 1


class TestHandles:
    def test_monotonic_never_reused(self):
        """The id(chunk) regression: drop/insert cycles must never hand
        out a handle that an earlier (freed) entry used."""
        k = kernel_of(4)
        seen = set()
        for i in range(200):
            h = k.insert(i, Item(), 1)
            assert h not in seen
            seen.add(h)
            k.remove(h)

    def test_rekey_in_place_keeps_position(self):
        k = kernel_of(3)
        h = fill(k, "abc")
        assert k.rekey(h["a"], "z") == h["a"]
        assert [key for key, _ in k.items()] == ["z", "b", "c"]

    def test_get_none_and_missing(self):
        k = kernel_of(2)
        h = fill(k, "a")["a"]
        assert k.get(None) is None
        assert k.get(h + 1000) is None
        assert k.get(h) is not None


class TestMetrics:
    def test_hit_miss_ghost(self):
        k = kernel_of(2)
        h = fill(k, "ab")
        k.touch(h["a"])
        k.record_miss("c")
        assert k.counters["cache.test.hit"].value == 1
        assert k.counters["cache.test.miss"].value == 1
        assert k.counters["cache.test.ghost_hit"].value == 0
        k.make_room(1)  # evicts b -> ghost
        k.record_miss("b")
        assert k.counters["cache.test.ghost_hit"].value == 1
        assert k.counters["cache.test.evict_clean"].value == 1

    def test_remove_records_no_ghost(self):
        k = kernel_of(2)
        h = fill(k, "a")
        k.remove(h["a"])
        k.record_miss("a")
        assert k.counters["cache.test.ghost_hit"].value == 0

    def test_dirty_evict_counter(self):
        k = kernel_of(1)
        fill(k, "a", dirty=True)
        k.make_room(1)
        assert k.counters["cache.test.evict_dirty"].value == 1


class TestPolicyRegistry:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make_policy("mru")

    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_every_policy_drives_the_kernel(self, name):
        k = kernel_of(4, policy=name)
        assert k.policy_name == name
        h = fill(k, "abcdef")  # forces evictions through the policy
        assert len(k) == 4 and k.used_bytes == 4
        live = [x for x in h.values() if x in k]
        k.touch(live[0])
        k.make_room(1)
        assert len(k) == 3


class TestShardedKernel:
    def test_budget_split_with_remainder(self):
        s = ShardedKernel("test", 10, shards=4)
        assert [sh.capacity_bytes for sh in s.shards] == [4, 2, 2, 2]
        assert s.capacity_bytes == 10

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            ShardedKernel("test", 8, shards=0)

    def test_handle_routing(self):
        s = ShardedKernel("test", 8, shards=4)
        for key in range(20):
            h = s.insert(key, Item(), 0)
            assert s.shard_for_handle(h) is s.shard_for_key(key)
            assert s.key_of(h) == key

    def test_key_routing_is_deterministic(self):
        assignments = [default_shard_hash(k) % 4 for k in range(64)]
        assert assignments == [default_shard_hash(k) % 4 for k in range(64)]
        assert len(set(assignments)) == 4  # keys actually spread

    def test_make_room_routes_by_key(self):
        s = ShardedKernel("test", 8, shards=2)
        key = 7
        shard = s.shard_for_key(key)
        other = s.shards[1 - s.shards.index(shard)]
        for k in range(40):  # fill both shards
            if s.free_bytes_for(k):
                s.insert(k, Item(), 1)
        before_other = len(other)
        s.make_room(1, key=key)
        assert len(other) == before_other  # only key's shard evicted
        assert shard.free_bytes >= 1

    def test_keyless_make_room_drains_fullest(self):
        s = ShardedKernel("test", 8, shards=2)
        for k in range(40):
            if s.free_bytes_for(k):
                s.insert(k, Item(), 1)
        s.make_room(2)
        assert all(sh.free_bytes >= 2 for sh in s.shards)

    def test_cross_shard_rekey_migrates(self):
        s = ShardedKernel("test", 8, shards=4)
        old_key = 0
        new_key = next(k for k in range(1, 64)
                       if s.shard_for_key(k) is not s.shard_for_key(old_key))
        h = s.insert(old_key, Item(), 1)
        h2 = s.rekey(h, new_key)
        assert s.shard_for_handle(h2) is s.shard_for_key(new_key)
        assert s.key_of(h2) == new_key and len(s) == 1

    def test_shared_metric_family(self):
        s = ShardedKernel("test", 4, shards=2)
        h = [s.insert(k, Item(), 1) for k in range(4)]
        for x in h:
            s.touch(x)
        s.record_miss(99)
        assert s.counters["cache.test.hit"].value == 4
        assert s.counters["cache.test.miss"].value == 1

    def test_capacity_setter_redivides_without_evicting(self):
        s = ShardedKernel("test", 8, shards=2)
        for k in range(40):
            if s.free_bytes_for(k):
                s.insert(k, Item(), 1)
        n = len(s)
        s.capacity_bytes = 4
        assert len(s) == n and s.capacity_bytes == 4
        s.make_room(0, key=0)
        s.make_room(0, key=1)

    def test_resize_evicts_down(self):
        s = ShardedKernel("test", 8, shards=2)
        for k in range(40):
            if s.free_bytes_for(k):
                s.insert(k, Item(), 1)
        s.resize(4)
        assert s.used_bytes <= 4 and s.capacity_bytes == 4

    def test_resize_redivides_base_plus_remainder(self):
        s = ShardedKernel("test", 12, shards=4)
        s.resize(10)
        assert [sh.capacity_bytes for sh in s.shards] == [4, 2, 2, 2]
        assert s.capacity_bytes == 10
        s.resize(16)  # growth re-divides the same way
        assert [sh.capacity_bytes for sh in s.shards] == [4, 4, 4, 4]

    def test_resize_returns_dirty_victims_from_all_shards(self):
        s = ShardedKernel("test", 8, shards=2)
        for k in range(40):
            if s.free_bytes_for(k):
                s.insert(k, Item(dirty=True), 1)
        victims = s.resize(2)
        assert len(victims) == 6 and all(v.dirty for v in victims)
        assert s.used_bytes == 2

    def test_steal_grant_round_trip(self):
        s = ShardedKernel("test", 8, shards=2)
        for k in range(40):
            if s.free_bytes_for(k):
                s.insert(k, Item(), 1)
        s.steal(4)
        assert s.capacity_bytes == 4 and s.used_bytes <= 4
        s.grant(4)
        assert s.capacity_bytes == 8
        assert [sh.capacity_bytes for sh in s.shards] == [4, 4]

    def test_ghost_admit_applies_to_every_shard(self):
        s = ShardedKernel("test", 4, shards=2)
        s.set_ghost_admit(lambda item: False)
        keys = []
        for k in range(40):
            if s.free_bytes_for(k):
                s.insert(k, Item(), 1)
                keys.append(k)
        s.resize(0)  # evicts everything, nothing ghost-records
        for k in keys:
            s.record_miss(k)
        assert s.counters["cache.test.ghost_hit"].value == 0


class TestShardedDeterminism:
    """shards=1 must be bit-identical to the unsharded kernel."""

    @pytest.mark.parametrize("policy", sorted(POLICIES))
    def test_single_shard_matches_unsharded(self, policy):
        rng = substream(7, "cache-shard-determinism")
        flat = CacheKernel("test", 16, policy=policy)
        one = ShardedKernel("test", 16, policy=policy, shards=1)
        handles = {}  # key -> (flat handle, sharded handle)
        for step in range(600):
            op = rng.choice(["insert", "touch", "miss", "remove"])
            key = rng.randrange(32)
            if op == "insert" and key not in handles:
                va = flat.make_room(1, key=key,
                                    on_evict=lambda it: None)
                vb = one.make_room(1, key=key,
                                   on_evict=lambda it: None)
                assert len(va) == len(vb)
                for k in [k for k, (hf, _) in handles.items()
                          if hf not in flat]:
                    del handles[k]
                handles[key] = (flat.insert(key, Item(), 1),
                                one.insert(key, Item(), 1))
            elif op == "touch" and key in handles:
                hf, hs = handles[key]
                flat.touch(hf)
                one.touch(hs)
            elif op == "miss" and key not in handles:
                flat.record_miss(key)
                one.record_miss(key)
            elif op == "remove" and key in handles:
                hf, hs = handles.pop(key)
                flat.remove(hf)
                one.remove(hs)
            assert [k for k, _ in flat.items()] == \
                [k for k, _ in one.items()]
        for name in ("hit", "miss", "ghost_hit", "evict_clean",
                     "evict_dirty"):
            assert flat.counters[f"cache.test.{name}"].value == \
                one.counters[f"cache.test.{name}"].value, name

    def test_single_shard_budget_ops_match_unsharded(self):
        """The arbiter drives resize/steal/grant; a one-shard kernel
        must shed the same victims in the same order as the flat one."""
        rng = substream(7, "cache-shard-budget-determinism")
        flat = CacheKernel("test", 16)
        one = ShardedKernel("test", 16, shards=1)
        for kernel in (flat, one):
            for k in range(16):
                kernel.insert(k, Item(dirty=bool(k % 2)), 1)
        for step in range(60):
            op = rng.choice(["resize", "steal", "grant", "insert"])
            if op == "resize":
                target = rng.randrange(1, 20)
                va, vb = flat.resize(target), one.resize(target)
            elif op == "steal":
                n = rng.randrange(0, max(1, flat.capacity_bytes))
                va, vb = flat.steal(n), one.steal(n)
            elif op == "grant":
                flat.grant(3)
                one.grant(3)
                va = vb = []
            else:
                key = 100 + step
                flat.make_room(1, key=key)
                one.make_room(1, key=key)
                flat.insert(key, Item(dirty=True), 1)
                one.insert(key, Item(dirty=True), 1)
                va = vb = []
            assert len(va) == len(vb)
            assert flat.capacity_bytes == one.capacity_bytes
            assert [k for k, _ in flat.items()] == \
                [k for k, _ in one.items()]
        for name in ("ghost_hit", "evict_clean", "evict_dirty"):
            assert flat.counters[f"cache.test.{name}"].value == \
                one.counters[f"cache.test.{name}"].value, name
