"""Every replacement policy against an executable reference model.

Each policy is driven through the kernel by a deterministic randomized
op stream (:func:`repro.sim.rng.substream`, so failures reproduce
bit-for-bit from the seed) while a plain-list reference model of the
same algorithm shadows it.  After every op the two must agree on the
cold-to-hot handle order, and every eviction must take exactly the
victim the reference predicts.

LRU's reference is the classic recency list — the paper's §3.4
replacement and the behavior the pre-kernel hand-rolled stores had, so
this doubles as the refactor-fidelity lock.  CLOCK, SLRU and ARC are
checked against reference models of their own algorithms.
"""

from __future__ import annotations

import pytest

from repro.cache import CacheKernel
from repro.sim.rng import substream


class Item:
    def __init__(self):
        self.dirty = False
        self.pinned = False


class RefLru:
    """Touch moves to tail; victim is the head."""

    def __init__(self):
        self.order = []  # cold -> hot

    def insert(self, h, key):
        self.order.append(h)

    def touch(self, h):
        self.order.remove(h)
        self.order.append(h)

    def remove(self, h):
        self.order.remove(h)

    def evicted(self, h, key):
        self.remove(h)

    def victim(self):
        return self.order[0]

    def handles(self):
        return list(self.order)


class RefClock:
    """Second-chance FIFO: the hand clears reference bits and rotates."""

    def __init__(self):
        self.ring = []  # [handle, referenced] pairs; head is the hand

    def _find(self, h):
        for pair in self.ring:
            if pair[0] == h:
                return pair
        raise KeyError(h)

    def insert(self, h, key):
        self.ring.append([h, False])

    def touch(self, h):
        self._find(h)[1] = True

    def remove(self, h):
        self.ring.remove(self._find(h))

    def evicted(self, h, key):
        self.remove(h)

    def victim(self):
        while True:
            if self.ring[0][1]:
                pair = self.ring.pop(0)
                pair[1] = False
                self.ring.append(pair)
            else:
                return self.ring[0][0]

    def handles(self):
        return [h for h, _ in self.ring]


class RefSlru:
    """Probation + protected segments; promotion on touch, demotion when
    protected exceeds 80% of the live count."""

    FRACTION = 0.8

    def __init__(self):
        self.probation = []
        self.protected = []

    def insert(self, h, key):
        self.probation.append(h)

    def touch(self, h):
        if h in self.protected:
            self.protected.remove(h)
            self.protected.append(h)
            return
        self.probation.remove(h)
        self.protected.append(h)
        cap = max(1, int(self.FRACTION
                         * (len(self.probation) + len(self.protected))))
        while len(self.protected) > cap:
            self.probation.append(self.protected.pop(0))

    def remove(self, h):
        if h in self.probation:
            self.probation.remove(h)
        else:
            self.protected.remove(h)

    def evicted(self, h, key):
        self.remove(h)

    def victim(self):
        return (self.probation or self.protected)[0]

    def handles(self):
        return self.probation + self.protected


class RefArc:
    """T1/T2 recency/frequency lists, B1/B2 key ghosts steering ``p``."""

    GHOST_FLOOR = 8

    def __init__(self):
        self.t1, self.t2 = [], []
        self.b1, self.b2 = [], []
        self.p = 0.0

    def _live(self):
        return len(self.t1) + len(self.t2)

    def insert(self, h, key):
        if key in self.b1:
            self.p = min(float(self._live() + 1),
                         self.p + max(1.0, len(self.b2)
                                      / max(1, len(self.b1))))
            self.b1.remove(key)
            self.t2.append(h)
        elif key in self.b2:
            self.p = max(0.0, self.p - max(1.0, len(self.b1)
                                           / max(1, len(self.b2))))
            self.b2.remove(key)
            self.t2.append(h)
        else:
            self.t1.append(h)

    def touch(self, h):
        if h in self.t2:
            self.t2.remove(h)
            self.t2.append(h)
        else:
            self.t1.remove(h)
            self.t2.append(h)

    def remove(self, h):
        (self.t1 if h in self.t1 else self.t2).remove(h)

    def evicted(self, h, key):
        ghost = self.b1 if h in self.t1 else self.b2
        self.remove(h)
        if key in ghost:
            ghost.remove(key)
        ghost.append(key)
        cap = max(self.GHOST_FLOOR, self._live())
        for g in (self.b1, self.b2):
            del g[:max(0, len(g) - cap)]

    def victim(self):
        if len(self.t1) > max(1.0, self.p):
            return self.t1[0]
        return (self.t2 or self.t1)[0]

    def handles(self):
        return self.t1 + self.t2


MODELS = {"lru": RefLru, "clock": RefClock, "slru": RefSlru, "arc": RefArc}

CAPACITY = 8
N_KEYS = 24
OPS = 500


@pytest.mark.parametrize("policy", sorted(MODELS))
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_policy_agrees_with_reference_model(policy, seed):
    rng = substream(seed, f"cache-policy-{policy}")
    kernel = CacheKernel("test", CAPACITY, policy=policy)
    ref = MODELS[policy]()
    live = {}  # key -> handle

    def on_evict(item):
        expected = ref.victim()
        assert item.handle == expected, \
            f"{policy}: evicted {item.handle}, reference says {expected}"
        ref.evicted(item.handle, item.key)
        del live[item.key]

    for _ in range(OPS):
        op = rng.choice(["insert", "insert", "touch", "miss", "remove"])
        key = rng.randrange(N_KEYS)
        if op == "insert" and key not in live:
            kernel.make_room(1, on_evict=on_evict)
            h = kernel.insert(key, Item(), 1)
            item = kernel.get(h)
            item.handle, item.key = h, key
            ref.insert(h, key)
            live[key] = h
        elif op == "touch" and key in live:
            kernel.touch(live[key])
            ref.touch(live[key])
        elif op == "miss" and key not in live:
            # Ghost probes must agree (ARC's ghosts also steer p).
            before = kernel.counters["cache.test.ghost_hit"].value
            kernel.record_miss(key)
            after = kernel.counters["cache.test.ghost_hit"].value
            if policy == "arc":
                assert (after - before == 1) == \
                    (key in ref.b1 or key in ref.b2)
        elif op == "remove" and key in live:
            h = live.pop(key)
            kernel.remove(h)
            ref.remove(h)
        assert list(kernel.policy.iter_handles()) == ref.handles(), policy

    assert len(kernel) == len(live)


@pytest.mark.parametrize("seed", [5, 6])
def test_lru_matches_pre_kernel_recency_list(seed):
    """The fidelity lock: under the LRU policy the kernel's eviction
    order is exactly the single recency list the paper's store kept."""
    rng = substream(seed, "cache-policy-lru-fidelity")
    kernel = CacheKernel("test", CAPACITY, policy="lru")
    order = []  # the old hand-rolled structure: one list, cold -> hot
    live = {}
    for i in range(300):
        key = rng.randrange(N_KEYS)
        if key in live:
            kernel.touch(live[key])
            order.remove(key)
            order.append(key)
        else:
            evicted = kernel.make_room(
                1, on_evict=lambda it: live.pop(order.pop(0)))
            assert evicted == []
            live[key] = kernel.insert(key, Item(), 1)
            order.append(key)
        assert [k for k, _ in kernel.items()] == order
