"""Eviction stall under memory pressure: trace event + graceful recovery.

Two concurrent readers on a buffer cache with exactly four page frames.
Each reader's request has a present/missing/present/missing block
pattern, so it page-pins its two resident blocks *before* yielding for
fill I/O.  Together the two readers pin all four frames; whichever
reader needs room first finds no evictable page, and the kernel must
emit ``bcache.evict_stalled`` and raise
:class:`~repro.cache.CacheStallError` rather than spin.  A reader that
backs off and retries after the other completes succeeds — the stall is
a recoverable overload signal, not a wedge.
"""

from repro.cache import CacheStallError
from repro.copymodel import CopyDiscipline
from repro.fs import BLOCK_SIZE, BufferCache, VFS
from repro.sim.process import start
from conftest import MiniStack, drive


class StallStack(MiniStack):
    """MiniStack with a tiny, trace-wired buffer cache."""

    N_FRAMES = 4

    def __init__(self, sim):
        super().__init__(sim, CopyDiscipline.PHYSICAL)
        sim.trace.enable()
        self.cache = BufferCache(self.N_FRAMES * BLOCK_SIZE,
                                 counters=self.server.counters,
                                 trace=sim.trace)
        self.vfs = VFS(self.server, self.image, self.cache, self.initiator,
                       CopyDiscipline.PHYSICAL)


def _make_stack(sim):
    stack = StallStack(sim)
    drive(sim, stack.initiator.connect(), "connect")
    return stack


def _prewarm(stack, inode, blocks):
    """Fault in single blocks so later reads see a P,M,P,M pattern."""
    def job():
        for b in blocks:
            yield from stack.vfs.read(inode, b * BLOCK_SIZE, BLOCK_SIZE)
    drive(stack.sim, job(), "prewarm")


def _resilient_reader(stack, inode, results, key, backoff_s=0.02):
    """Read the whole 4-block file; back off and retry on a stall."""
    stalls = 0
    while True:
        try:
            payload = yield from stack.vfs.read(inode, 0, 4 * BLOCK_SIZE)
        except CacheStallError:
            stalls += 1
            yield stack.sim.timeout(backoff_s)
            continue
        results[key] = (payload.materialize(), stalls)
        return


class TestEvictionStall:
    def test_stall_traced_and_recovered(self, sim):
        stack = _make_stack(sim)
        inode_a = stack.image.create_file("a", 4 * BLOCK_SIZE)
        inode_b = stack.image.create_file("b", 4 * BLOCK_SIZE)
        # Blocks 0 and 2 of each file resident; the cache is now full.
        _prewarm(stack, inode_a, (0, 2))
        _prewarm(stack, inode_b, (0, 2))
        assert len(stack.cache) == StallStack.N_FRAMES

        results = {}
        procs = [
            start(sim, _resilient_reader(stack, inode_a, results, "a"),
                  name="reader-a"),
            start(sim, _resilient_reader(stack, inode_b, results, "b"),
                  name="reader-b"),
        ]
        while not all(p.triggered for p in procs):
            if not sim.step():
                raise AssertionError("simulation drained before completion")
        for proc in procs:
            if proc.failed:
                raise proc.value

        # Both readers completed with the right bytes despite the stall.
        expected_a = stack.image.file_payload(
            inode_a, 0, 4 * BLOCK_SIZE).materialize()
        expected_b = stack.image.file_payload(
            inode_b, 0, 4 * BLOCK_SIZE).materialize()
        assert results["a"][0] == expected_a
        assert results["b"][0] == expected_b

        # At least one reader hit the stall and retried its way out.
        total_stalls = results["a"][1] + results["b"][1]
        assert total_stalls >= 1
        stall_events = [ev for ev in sim.trace.events
                        if ev.name == "bcache.evict_stalled"]
        assert len(stall_events) == total_stalls
        assert stall_events[0].args["entries"] == StallStack.N_FRAMES

    def test_stall_unpins_before_raising(self, sim):
        """After a stall propagates, the failed reader holds no pins —
        the other reader can then evict its pages and make progress."""
        stack = _make_stack(sim)
        inode_a = stack.image.create_file("a", 4 * BLOCK_SIZE)
        inode_b = stack.image.create_file("b", 4 * BLOCK_SIZE)
        _prewarm(stack, inode_a, (0, 2))
        _prewarm(stack, inode_b, (0, 2))

        def bare_reader(inode):
            return (yield from stack.vfs.read(inode, 0, 4 * BLOCK_SIZE))

        pa = start(sim, bare_reader(inode_a), name="a")
        pb = start(sim, bare_reader(inode_b), name="b")
        for proc in (pa, pb):  # join, so a crash is ours to inspect
            proc.add_callback(lambda ev: None)
        while not (pa.triggered and pb.triggered):
            if not sim.step():
                break
        failed = [p for p in (pa, pb) if p.failed]
        assert len(failed) == 1
        assert isinstance(failed[0].value, CacheStallError)
        # Every page frame is unpinned again once the dust settles.
        for entry in stack.cache._entries.values():
            assert not entry.pinned
