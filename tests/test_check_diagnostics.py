"""Diagnostics, suppression parsing, SARIF output, and CLI exit codes."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.check.cli import main as check_main
from repro.check.diagnostics import (
    Diagnostic,
    Suppressions,
    parse_suppressions,
)
from repro.check.sarif import to_sarif

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src" / "repro"


class TestDiagnostic:
    def test_format_plain(self):
        diag = Diagnostic(rule="no-wallclock", path="a.py", line=3, col=7,
                          message="don't")
        assert diag.format() == "a.py:3:7: [no-wallclock] don't"

    def test_format_suppressed(self):
        diag = Diagnostic(rule="r", path="a.py", line=1, col=1,
                          message="m", suppressed=True)
        assert diag.format().endswith("(suppressed)")

    def test_to_json_roundtrip(self):
        diag = Diagnostic(rule="r", path="a.py", line=2, col=4,
                          message="m")
        data = diag.to_json()
        assert data == {"rule": "r", "path": "a.py", "line": 2,
                        "col": 4, "message": "m", "suppressed": False}
        assert json.loads(json.dumps(data)) == data


class TestParseSuppressions:
    def test_single_rule(self):
        sup = parse_suppressions("x = 1  # check: ignore[no-wallclock]\n")
        assert sup.covers("no-wallclock", 1)
        assert not sup.covers("no-wallclock", 2)
        assert not sup.covers("copy-discipline", 1)

    def test_multiple_rules_and_justification(self):
        sup = parse_suppressions(
            "y()  # check: ignore[rule-a, rule-b] -- because reasons\n")
        assert sup.covers("rule-a", 1)
        assert sup.covers("rule-b", 1)
        assert not sup.covers("rule-c", 1)

    def test_star_covers_everything(self):
        sup = parse_suppressions("z()  # check: ignore[*]\n")
        assert sup.covers("anything-at-all", 1)

    def test_line_mapping(self):
        sup = parse_suppressions(
            "a = 1\nb = 2  # check: ignore[rule-x]\nc = 3\n")
        assert not sup.covers("rule-x", 1)
        assert sup.covers("rule-x", 2)
        assert not sup.covers("rule-x", 3)

    def test_unterminated_source_does_not_raise(self):
        sup = parse_suppressions("x = (\n")
        assert sup.by_line == {}

    def test_empty_suppressions_object(self):
        assert not Suppressions().covers("r", 1)


class TestSarif:
    def _diags(self):
        return [
            Diagnostic(rule="no-wallclock", path="src/a.py", line=3,
                       col=7, message="clock"),
            Diagnostic(rule="flow-typestate", path="tests/b.py", line=9,
                       col=1, message="evicted", suppressed=True),
        ]

    def test_document_shape(self):
        doc = to_sarif(self._diags(),
                       [("no-wallclock", "no clocks", "sim time only"),
                        ("flow-typestate", "lifecycle", "state machine")])
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "ncache-lint"
        ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert "no-wallclock" in ids and "flow-typestate" in ids
        # Meta rules always present so every result resolves.
        assert "syntax" in ids and "stale-ignore" in ids

    def test_results_carry_locations(self):
        doc = to_sarif(self._diags(), [])
        result = doc["runs"][0]["results"][0]
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "src/a.py"
        assert loc["region"] == {"startLine": 3, "startColumn": 7}

    def test_suppressed_results_marked_in_source(self):
        doc = to_sarif(self._diags(), [])
        results = doc["runs"][0]["results"]
        assert "suppressions" not in results[0]
        assert results[1]["suppressions"] == [{"kind": "inSource"}]

    def test_unknown_rule_ids_get_descriptors(self):
        doc = to_sarif([Diagnostic(rule="made-up", path="x.py", line=1,
                                   col=1, message="m")], [])
        ids = [r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]]
        assert "made-up" in ids

    def test_document_is_json_serializable(self):
        json.dumps(to_sarif(self._diags(), []))


def write(tmp_path, name, source):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


class TestCliExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = write(tmp_path, "ok.py", "x = 1\n")
        assert check_main([str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_violation_exits_one(self, tmp_path, capsys):
        path = write(tmp_path, "bad.py", """
            import random
            x = random.random()
        """)
        assert check_main([str(path)]) == 1
        assert "no-global-random" in capsys.readouterr().out

    def test_syntax_error_exits_one(self, tmp_path, capsys):
        path = write(tmp_path, "syn.py", "def broken(:\n")
        assert check_main([str(path)]) == 1
        assert "[syntax]" in capsys.readouterr().out

    def test_bad_path_exits_two(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as err:
            check_main([str(tmp_path / "missing")])
        assert err.value.code == 2

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        path = write(tmp_path, "ok.py", "x = 1\n")
        with pytest.raises(SystemExit) as err:
            check_main(["--rules", "nonsense", str(path)])
        assert err.value.code == 2

    def test_flow_rule_without_flow_flag_exits_two(self, tmp_path):
        path = write(tmp_path, "ok.py", "x = 1\n")
        with pytest.raises(SystemExit) as err:
            check_main(["--rules", "flow-engine", str(path)])
        assert err.value.code == 2

    def test_flow_only_option_without_flow_exits_two(self, tmp_path):
        path = write(tmp_path, "ok.py", "x = 1\n")
        with pytest.raises(SystemExit) as err:
            check_main(["--call-graph-out", str(tmp_path / "g.json"),
                        str(path)])
        assert err.value.code == 2

    def test_json_report_shape(self, tmp_path, capsys):
        path = write(tmp_path, "bad.py", """
            import random
            x = random.random()
        """)
        assert check_main(["--json", str(path)]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is False
        assert data["files_checked"] == 1
        assert any(d["rule"] == "no-global-random"
                   for d in data["diagnostics"])

    def test_format_json_equals_json_flag(self, tmp_path, capsys):
        path = write(tmp_path, "ok.py", "x = 1\n")
        assert check_main(["--format", "json", str(path)]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True

    def test_sarif_format(self, tmp_path, capsys):
        path = write(tmp_path, "bad.py", """
            import random
            x = random.random()
        """)
        assert check_main(["--format", "sarif", str(path)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"]

    def test_list_rules_includes_flow_rules(self, capsys):
        assert check_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "no-wallclock" in out
        assert "flow-determinism" in out and "(--flow)" in out

    def test_changed_without_git_warns_and_lints(self, tmp_path, capsys,
                                                 monkeypatch):
        path = write(tmp_path, "ok.py", "x = 1\n")
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("GIT_DIR", str(tmp_path / "nogit"))
        assert check_main(["--changed", str(path)]) == 0
        assert "git unavailable" in capsys.readouterr().err

    def test_changed_with_no_modified_files(self, tmp_path, capsys,
                                            monkeypatch):
        import subprocess
        path = write(tmp_path, "ok.py", "x = 1\n")
        monkeypatch.chdir(tmp_path)
        subprocess.run(["git", "init", "-q"], cwd=tmp_path, check=True)
        subprocess.run(["git", "add", "-A"], cwd=tmp_path, check=True)
        subprocess.run(["git", "-c", "user.email=t@t", "-c",
                        "user.name=t", "commit", "-qm", "x"],
                       cwd=tmp_path, check=True)
        assert check_main(["--changed", str(path)]) == 0
        assert "no changed python files" in capsys.readouterr().out


class TestCliStaleIgnores:
    def test_stale_suppression_fails_the_run(self, tmp_path, capsys):
        path = write(tmp_path, "mod.py",
                     "x = 1  # check: ignore[no-wallclock] -- stale\n")
        assert check_main([str(path)]) == 1
        assert "stale-ignore" in capsys.readouterr().out

    def test_no_stale_ignores_escape_hatch(self, tmp_path):
        path = write(tmp_path, "mod.py",
                     "x = 1  # check: ignore[no-wallclock] -- stale\n")
        assert check_main(["--no-stale-ignores", str(path)]) == 0

    def test_used_suppression_is_not_stale(self, tmp_path):
        path = write(tmp_path, "mod.py", """
            import random  # check: ignore[no-global-random] -- fixture
            x = random.random()  # check: ignore[no-global-random] -- fixture
        """)
        assert check_main([str(path)]) == 0

    def test_star_is_never_stale(self, tmp_path):
        path = write(tmp_path, "mod.py",
                     "x = 1  # check: ignore[*] -- blanket\n")
        assert check_main([str(path)]) == 0

    def test_rules_filter_disables_stale_check(self, tmp_path):
        path = write(tmp_path, "mod.py",
                     "x = 1  # check: ignore[no-wallclock] -- stale\n")
        assert check_main(["--rules", "no-wallclock", str(path)]) == 0


class TestCliFlowMode:
    def test_flow_clean_tree_exits_zero(self, tmp_path, capsys):
        path = write(tmp_path, "src/repro/ok.py", """
            def helper(engine, items):
                for item in sorted(items):
                    engine.schedule(item)
        """)
        assert check_main(["--flow", str(path)]) == 0
        assert "flow-determinism" in capsys.readouterr().out

    def test_flow_violation_exits_one(self, tmp_path, capsys):
        path = write(tmp_path, "src/repro/bad.py", """
            def feed(engine, items):
                for item in set(items):
                    engine.schedule(item)
        """)
        assert check_main(["--flow", str(path)]) == 1
        assert "flow-determinism" in capsys.readouterr().out

    def test_flow_call_graph_out(self, tmp_path, capsys):
        path = write(tmp_path, "src/repro/ok.py", "def f():\n    return 1\n")
        graph = tmp_path / "graph.json"
        assert check_main(["--flow", "--call-graph-out", str(graph),
                           str(path)]) == 0
        data = json.loads(graph.read_text())
        assert "repro.ok.f" in data["functions"]
        # Second run hits the digest-keyed cache and still succeeds.
        capsys.readouterr()
        assert check_main(["--flow", "--call-graph-cache", str(graph),
                           str(path)]) == 0

    def test_flow_sarif_output(self, tmp_path, capsys):
        path = write(tmp_path, "src/repro/bad.py", """
            def feed(engine, items):
                for item in set(items):
                    engine.schedule(item)
        """)
        assert check_main(["--flow", "--format", "sarif", str(path)]) == 1
        doc = json.loads(capsys.readouterr().out)
        ids = [r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]]
        assert "flow-determinism" in ids
